"""System parameters (Section 6 of the paper).

:class:`Parameters` bundles every knob the paper's baseline analysis and
sensitivity sweeps touch.  All rates are internally expressed per hour, all
capacities in bytes; the constructors accept the units the paper quotes
(hours, GB, Gb/s, KB).

Baseline values (Section 6)::

    node MTTF              400,000 h
    drive MTTF             300,000 h
    hard error rate        1 sector per 10^14 bits read
    drive capacity         300 GB
    max drive throughput   150 IO/s
    drive sustained rate   40 MB/s
    node set size N        64
    redundancy set size R  8
    drives per node d      12
    re-stripe command      1 MB
    rebuild command        128 KB
    link speed             10 Gb/s (800 MB/s sustained)
    capacity utilization   75 %
    rebuild bandwidth      10 %
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Parameters", "ParameterError", "GB", "MB", "KB", "HOURS_PER_YEAR"]

KB = 1024
MB = 10**6
GB = 10**9
HOURS_PER_YEAR = 8766.0  # 365.25 days, the convention we use throughout


class ParameterError(ValueError):
    """Raised for physically-meaningless parameter values."""


@dataclass(frozen=True, kw_only=True)
class Parameters:
    """Complete parameterization of a networked-storage-node system.
    Construction is keyword-only (positional construction went through a
    DeprecationWarning cycle and was removed).

    Attributes:
        node_mttf_hours: mean time to failure of a whole node (controller,
            power supply, ... — anything that kills the sealed brick).
        drive_mttf_hours: mean time to failure of one disk drive.
        hard_error_rate_per_bit: probability of an uncorrectable (hard)
            read error per bit read.  The paper's "1 sector in 10^14 bits"
            is ``1e-14``.
        drive_capacity_bytes: raw capacity of one drive.
        drive_max_iops: maximum I/O operations per second per drive.
        drive_sustained_bps: sustained sequential transfer rate of a drive,
            bytes/second.
        node_set_size: N, the number of nodes data is spread across.
        redundancy_set_size: R, nodes per redundancy set (stripe width).
        drives_per_node: d.
        restripe_command_bytes: I/O size used during an internal-RAID
            re-stripe.
        rebuild_command_bytes: I/O size used during cross-node rebuild.
        link_speed_bps: raw speed of one node link, bits/second.
        link_sustained_fraction: fraction of raw link speed achievable
            sustained.  The paper quotes 800 MB/s sustained at 10 Gb/s raw
            (= 1250 MB/s), i.e. 0.64.
        capacity_utilization: fraction of raw capacity holding user data;
            the rest is over-provisioned spare for fail-in-place.
        rebuild_bandwidth_fraction: fraction of disk and network bandwidth
            a rebuild is allowed to consume (the rest serves foreground
            I/O).
    """

    node_mttf_hours: float = 400_000.0
    drive_mttf_hours: float = 300_000.0
    hard_error_rate_per_bit: float = 1e-14
    drive_capacity_bytes: float = 300 * GB
    drive_max_iops: float = 150.0
    drive_sustained_bps: float = 40 * MB
    node_set_size: int = 64
    redundancy_set_size: int = 8
    drives_per_node: int = 12
    restripe_command_bytes: float = 1024 * KB
    rebuild_command_bytes: float = 128 * KB
    link_speed_bps: float = 10e9
    link_sustained_fraction: float = 0.64
    capacity_utilization: float = 0.75
    rebuild_bandwidth_fraction: float = 0.10

    def __post_init__(self) -> None:
        positive = [
            ("node_mttf_hours", self.node_mttf_hours),
            ("drive_mttf_hours", self.drive_mttf_hours),
            ("drive_capacity_bytes", self.drive_capacity_bytes),
            ("drive_max_iops", self.drive_max_iops),
            ("drive_sustained_bps", self.drive_sustained_bps),
            ("restripe_command_bytes", self.restripe_command_bytes),
            ("rebuild_command_bytes", self.rebuild_command_bytes),
            ("link_speed_bps", self.link_speed_bps),
        ]
        for name, value in positive:
            if value <= 0:
                raise ParameterError(f"{name} must be positive, got {value!r}")
        if self.hard_error_rate_per_bit < 0:
            raise ParameterError("hard_error_rate_per_bit must be >= 0")
        for name, value in [
            ("link_sustained_fraction", self.link_sustained_fraction),
            ("capacity_utilization", self.capacity_utilization),
            ("rebuild_bandwidth_fraction", self.rebuild_bandwidth_fraction),
        ]:
            if not 0 < value <= 1:
                raise ParameterError(f"{name} must be in (0, 1], got {value!r}")
        if self.node_set_size < 2:
            raise ParameterError("node_set_size must be at least 2")
        if not 2 <= self.redundancy_set_size <= self.node_set_size:
            raise ParameterError(
                "redundancy_set_size must be between 2 and node_set_size"
            )
        if self.drives_per_node < 1:
            raise ParameterError("drives_per_node must be at least 1")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def baseline(cls) -> "Parameters":
        """The paper's Section 6 baseline."""
        return cls()

    @classmethod
    def with_overrides(cls, **overrides: Any) -> "Parameters":
        """The Section 6 baseline with keyword ``overrides`` applied.

        The preferred way to build a non-baseline parameter set::

            params = Parameters.with_overrides(node_set_size=128)

        Positional construction (``Parameters(400_000.0, ...)``) is
        an error — with fifteen float-heavy fields it is far too easy
        to transpose two values silently.
        """
        return cls(**overrides)

    def replace(self, **changes: Any) -> "Parameters":
        """A copy with ``changes`` applied (validated)."""
        return dataclasses.replace(self, **changes)

    def with_link_speed_gbps(self, gbps: float) -> "Parameters":
        """A copy with the link speed set in Gb/s."""
        return self.replace(link_speed_bps=gbps * 1e9)

    def with_rebuild_command_kb(self, kb: float) -> "Parameters":
        """A copy with the rebuild command size set in KB."""
        return self.replace(rebuild_command_bytes=kb * KB)

    # ------------------------------------------------------------------ #
    # derived rates and quantities
    # ------------------------------------------------------------------ #

    @property
    def node_failure_rate(self) -> float:
        """lambda_N, node failures per hour."""
        return 1.0 / self.node_mttf_hours

    @property
    def drive_failure_rate(self) -> float:
        """lambda_d, drive failures per hour."""
        return 1.0 / self.drive_mttf_hours

    @property
    def hard_error_per_drive_read(self) -> float:
        """``C * HER``: expected hard errors when reading one full drive."""
        return self.drive_capacity_bytes * 8 * self.hard_error_rate_per_bit

    @property
    def drive_data_bytes(self) -> float:
        """User data held by one drive (capacity x utilization)."""
        return self.drive_capacity_bytes * self.capacity_utilization

    @property
    def node_data_bytes(self) -> float:
        """User data held by one node."""
        return self.drives_per_node * self.drive_data_bytes

    @property
    def system_raw_bytes(self) -> float:
        """Raw capacity of the node set."""
        return self.node_set_size * self.drives_per_node * self.drive_capacity_bytes

    @property
    def system_logical_bytes(self) -> float:
        """Logical (user-visible) capacity of the node set.

        The paper normalizes data-loss events by logical petabytes, from a
        manufacturer's field-population point of view.
        """
        return self.system_raw_bytes * self.capacity_utilization

    @property
    def system_logical_pb(self) -> float:
        """Logical capacity in (decimal) petabytes."""
        return self.system_logical_bytes / 1e15

    @property
    def link_sustained_bytes_per_sec(self) -> float:
        """Sustained one-direction byte rate of a node's network attachment."""
        return self.link_speed_bps / 8 * self.link_sustained_fraction

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (useful for reports and parameter sweeps)."""
        # Every field is a scalar, so a direct dict build gives the same
        # result as dataclasses.asdict without its recursive deepcopy
        # (which dominates the serving layer's per-request key cost).
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def cache_key(self) -> str:
        """The canonical value hash of this parameter set.

        A SHA-256 hex digest of the JSON-canonicalized field dict (via the
        engine's :func:`~repro.engine.keys.stable_digest` helper), stable
        across interpreter restarts and bitwise-sensitive: two parameter
        sets share a key if and only if every field is bitwise equal.

        This is **the** parameter identity used everywhere a stable hash
        of a parameter set is needed — the engine's disk-cache keys, the
        serving layer's result cache and the verification report all go
        through it, so the hash is derived in exactly one place.

        Memoized per instance: the fields are frozen scalars, so the
        digest can never change after construction.
        """
        memo = self.__dict__.get("_cache_key_memo")
        if memo is not None:
            return memo
        from ..engine.keys import stable_digest

        digest = stable_digest(self.to_dict())
        object.__setattr__(self, "_cache_key_memo", digest)
        return digest



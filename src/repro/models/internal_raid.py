"""Node-level Markov models for nodes *with* internal RAID (Figures 5-7).

This is the upper half of the paper's hierarchical modeling: the drive-
level chains of :mod:`repro.models.raid` are summarized into an array
failure rate ``lambda_D`` and a re-stripe sector-loss rate ``lambda_S``,
and the node-level chain then tracks how many nodes' worth of data are
simultaneously unavailable.

A node becomes unavailable at rate ``lambda_N + lambda_D`` (the whole node
dies, or its internal array does — either way the node's data must be
rebuilt from the other nodes).  Hard errors during internal re-stripes
(``lambda_S``) only matter when a redundancy set is critical, so the
``lambda_S`` contribution on the final transition is scaled by the
critical-set fraction ``k_t`` of Section 5.2.1 (``k_1 = 1`` for fault
tolerance 1, matching the paper's NFT-1 formula).

The chain shape is declared in :func:`repro.models.specs.internal_raid_spec`
and bound per operating point; the original imperative construction is
kept as :func:`legacy_build_internal_raid_chain`, the equivalence oracle.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..core import CTMC, ChainBuilder
from ..core.spec import ModelSpec
from .critical_sets import critical_fraction
from .parameters import Parameters
from .raid import ArrayRates, InternalRaid, Raid5Model, Raid6Model
from .rebuild import RebuildModel
from .specs import compiled, internal_raid_env, internal_raid_spec

__all__ = [
    "build_internal_raid_chain",
    "InternalRaidNodeModel",
]

LOSS = "loss"


def build_internal_raid_chain(
    fault_tolerance: int,
    n: int,
    node_failure_rate: float,
    array_failure_rate: float,
    restripe_sector_loss_rate: float,
    node_rebuild_rate: float,
    critical_sector_fraction: float,
    parallel_repair: bool = False,
) -> CTMC:
    """Build the Figure 5/6/7 chain for node fault tolerance ``t``.

    States ``0 .. t`` count unavailable nodes; ``loss`` is absorbing.
    Transitions:

    * ``j -> j+1`` at ``(N - j)(lambda_N + lambda_D)`` for ``j < t``,
    * ``t -> loss`` at ``(N - t)(lambda_N + lambda_D + k_t lambda_S)``,
    * ``j -> j-1`` at ``mu_N`` (the most recent failed node's data is
      reconstructed onto the survivors' spare space).

    Args:
        fault_tolerance: t, node failures tolerated by the erasure code.
        n: node set size N.
        node_failure_rate: lambda_N.
        array_failure_rate: lambda_D of the internal array.
        restripe_sector_loss_rate: lambda_S of the internal array.
        node_rebuild_rate: mu_N.
        critical_sector_fraction: ``k_t`` (1 for t=1, (R-1)/(N-1) for t=2,
            ...), the fraction of re-striping data that belongs to critical
            redundancy sets.
        parallel_repair: the paper's model (False) repairs one node at a
            time (repair rate ``mu_N`` in every degraded state).  With
            True, all ``j`` outstanding rebuilds proceed concurrently on
            disjoint survivors (rate ``j * mu_N``) — an ablation for the
            distributed-rebuild scheduling choice, not from the paper.
    """
    env = internal_raid_env(
        fault_tolerance,
        n,
        node_failure_rate,
        array_failure_rate,
        restripe_sector_loss_rate,
        node_rebuild_rate,
        critical_sector_fraction,
    )
    return compiled(internal_raid_spec(fault_tolerance, parallel_repair)).bind(env)


def legacy_build_internal_raid_chain(
    fault_tolerance: int,
    n: int,
    node_failure_rate: float,
    array_failure_rate: float,
    restripe_sector_loss_rate: float,
    node_rebuild_rate: float,
    critical_sector_fraction: float,
    parallel_repair: bool = False,
) -> CTMC:
    """The original imperative Figure 5/6/7 construction (equivalence
    oracle for the spec path)."""
    if fault_tolerance < 1:
        raise ValueError("fault_tolerance must be >= 1")
    if n <= fault_tolerance:
        raise ValueError("node set must be larger than the fault tolerance")
    lam = node_failure_rate + array_failure_rate
    builder = ChainBuilder()
    for j in range(fault_tolerance):
        builder.add_rate(j, j + 1, (n - j) * lam)
        repair = node_rebuild_rate * (j + 1 if parallel_repair else 1)
        builder.add_rate(j + 1, j, repair)
    final_rate = lam + critical_sector_fraction * restripe_sector_loss_rate
    builder.add_rate(fault_tolerance, LOSS, (n - fault_tolerance) * final_rate)
    return builder.build(initial_state=0)


class InternalRaidNodeModel:
    """MTTDL model for [internal RAID x node fault tolerance t].

    Args:
        params: system parameters.
        raid_level: :attr:`InternalRaid.RAID5` or :attr:`InternalRaid.RAID6`.
        fault_tolerance: cross-node erasure-code tolerance t >= 1.

    Example:
        >>> from repro.models import Parameters
        >>> model = InternalRaidNodeModel(Parameters.baseline(),
        ...                               InternalRaid.RAID5, fault_tolerance=2)
        >>> mttdl = model.mttdl_exact()
        >>> approx = model.mttdl_approx()
        >>> abs(mttdl - approx) / mttdl < 0.05
        True
    """

    def __init__(
        self,
        params: Parameters,
        raid_level: InternalRaid,
        fault_tolerance: int,
        rebuild: Optional[RebuildModel] = None,
        rates_method: str = "approx",
        array_rates: Optional[ArrayRates] = None,
    ) -> None:
        if fault_tolerance < 1:
            raise ValueError("fault_tolerance must be >= 1")
        if raid_level is InternalRaid.NONE:
            raise ValueError(
                "use repro.models.no_raid / repro.models.recursive for nodes "
                "without internal RAID"
            )
        if rates_method not in ("approx", "exact"):
            raise ValueError("rates_method must be 'approx' or 'exact'")
        self._params = params
        self._level = raid_level
        self._t = fault_tolerance
        self._rates_method = rates_method
        self._rebuild = rebuild if rebuild is not None else RebuildModel(params)
        self._array_rates_override = array_rates
        if raid_level is InternalRaid.RAID5:
            self._array = Raid5Model(params, self._rebuild)
        else:
            self._array = Raid6Model(params, self._rebuild)

    # ------------------------------------------------------------------ #

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def raid_level(self) -> InternalRaid:
        return self._level

    @property
    def fault_tolerance(self) -> int:
        return self._t

    @property
    def array_rates(self) -> ArrayRates:
        """lambda_D / lambda_S exported by the internal array model (using
        the ``rates_method`` chosen at construction), or the precomputed
        ``array_rates`` override passed to the constructor — the sweep
        engine computes them once per distinct array operating point and
        shares them across sweep points."""
        if self._array_rates_override is not None:
            return self._array_rates_override
        return self._array.rates(self._rates_method)

    @property
    def node_rebuild_rate(self) -> float:
        """mu_N from the Section 5.1 transfer model."""
        return self._rebuild.node_rebuild_rate(self._t)

    @property
    def critical_sector_fraction(self) -> float:
        """``k_t``: 1 for t = 1 (the paper's bare lambda_S), else the
        Section 5.2.1 combinatorial fraction."""
        if self._t == 1:
            return 1.0
        return critical_fraction(
            self._params.node_set_size, self._params.redundancy_set_size, self._t
        )

    def spec(self) -> ModelSpec:
        """The declarative form of the Figure 5/6/7 chain."""
        return internal_raid_spec(self._t)

    def chain_env(self) -> Dict[str, Union[int, float]]:
        """The binding environment for :meth:`spec` at this operating point."""
        rates = self.array_rates
        return internal_raid_env(
            self._t,
            self._params.node_set_size,
            self._params.node_failure_rate,
            rates.array_failure_rate,
            rates.restripe_sector_loss_rate,
            self.node_rebuild_rate,
            self.critical_sector_fraction,
        )

    def chain(self) -> CTMC:
        """The node-level CTMC (Figure 5, 6 or 7), bound through the
        compiled spec."""
        return compiled(self.spec()).bind(self.chain_env())

    def legacy_chain(self) -> CTMC:
        """The same chain through the original imperative builder — the
        oracle the spec path is checked against (bitwise)."""
        rates = self.array_rates
        return legacy_build_internal_raid_chain(
            self._t,
            self._params.node_set_size,
            self._params.node_failure_rate,
            rates.array_failure_rate,
            rates.restripe_sector_loss_rate,
            self.node_rebuild_rate,
            self.critical_sector_fraction,
        )

    def mttdl_exact(self) -> float:
        """MTTDL in hours from the numeric CTMC solve."""
        return self.chain().mean_time_to_absorption()

    def mttdl_approx(self) -> float:
        """The paper's approximation for this configuration:

        ``mu_N^t / (N (N-1) ... (N-t) (lambda_N + lambda_D)^t
        (lambda_N + lambda_D + k_t lambda_S))``.
        """
        rates = self.array_rates
        n = self._params.node_set_size
        lam = self._params.node_failure_rate + rates.array_failure_rate
        mu = self.node_rebuild_rate
        k_t = self.critical_sector_fraction
        falling = 1.0
        for j in range(self._t + 1):
            falling *= n - j
        return mu**self._t / (
            falling * lam**self._t * (lam + k_t * rates.restripe_sector_loss_rate)
        )

"""Availability and mission-survival analysis (extension beyond MTTDL).

The paper's target is phrased as a *mission* statement — "a field
population of 100 systems each with a petabyte of logical capacity will
experience less than one data loss event in 5 years" — but evaluated via
MTTDL.  This module closes the loop:

* :func:`mission_survival_probability` — P(no data loss within a mission
  time) from the chain's transient solution, not the exponential
  approximation;
* :func:`fleet_loss_probability` — P(at least one loss across a fleet)
  and the expected number of fleet events;
* :class:`AvailabilityModel` — long-run fraction of time spent degraded
  (rebuilds in flight) for a configuration, from the renewal-closed
  chain's stationary distribution.  Degraded time matters operationally:
  rebuilds consume the reserved 10% of bandwidth and erode performance
  headroom even when no data is ever lost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..core import CTMC
from .configurations import Configuration
from .parameters import HOURS_PER_YEAR, Parameters

__all__ = [
    "mission_survival_probability",
    "fleet_loss_probability",
    "fleet_expected_events",
    "AvailabilityModel",
    "AvailabilityResult",
]


def mission_survival_probability(
    chain: CTMC, mission_hours: float
) -> float:
    """P(no absorption within ``mission_hours``), via uniformization.

    For reliability chains this is the exact mission reliability; the
    popular ``exp(-t / MTTDL)`` is its first-order approximation and the
    two agree when ``t << MTTDL``.
    """
    if mission_hours < 0:
        raise ValueError("mission time must be non-negative")
    absorbing = set(chain.absorbing_states())
    if not absorbing:
        raise ValueError("chain has no absorbing (loss) states")
    dist = chain.transient_distribution_uniformized(mission_hours)
    return float(sum(p for s, p in dist.items() if s not in absorbing))


def fleet_loss_probability(
    per_system_survival: float, fleet_size: int
) -> float:
    """P(at least one system of an independent fleet loses data)."""
    if not 0.0 <= per_system_survival <= 1.0:
        raise ValueError("survival probability must be in [0, 1]")
    if fleet_size < 1:
        raise ValueError("fleet must have at least one system")
    return 1.0 - per_system_survival**fleet_size


def fleet_expected_events(
    mttdl_hours: float, fleet_size: int, mission_hours: float
) -> float:
    """Expected data-loss events across a fleet over a mission (renewal
    approximation: each system contributes mission/MTTDL events)."""
    if mttdl_hours <= 0 or mission_hours < 0 or fleet_size < 1:
        raise ValueError("invalid fleet parameters")
    return fleet_size * mission_hours / mttdl_hours


@dataclass(frozen=True)
class AvailabilityResult:
    """Long-run operational profile of a configuration.

    Attributes:
        fully_operational_fraction: time share with zero rebuilds in
            flight.
        degraded_fraction: time share with at least one failure being
            rebuilt (redundancy reduced, rebuild bandwidth in use).
        post_loss_fraction: time share spent in post-data-loss recovery
            (restoring from an external tier), given the assumed recovery
            rate.
        degraded_hours_per_year: expected annual hours of degraded
            operation.
    """

    fully_operational_fraction: float
    degraded_fraction: float
    post_loss_fraction: float

    @property
    def degraded_hours_per_year(self) -> float:
        return self.degraded_fraction * HOURS_PER_YEAR


class AvailabilityModel:
    """Steady-state availability of a redundancy configuration.

    The reliability chain is closed with a renewal transition out of the
    loss state (modeling restore-from-backup at ``recovery_rate``), and
    the stationary distribution of the closed chain gives long-run time
    shares.

    Args:
        config: redundancy configuration.
        params: system parameters.
        recovery_hours: mean time to restore service after a data-loss
            event (default: one week — an external-restore assumption,
            not from the paper).
    """

    def __init__(
        self,
        config: Configuration,
        params: Parameters,
        recovery_hours: float = 168.0,
    ) -> None:
        if recovery_hours <= 0:
            raise ValueError("recovery_hours must be positive")
        self._config = config
        self._params = params
        self._recovery_rate = 1.0 / recovery_hours

    def closed_chain(self) -> CTMC:
        """The renewal-closed chain."""
        return self._config.chain(self._params).with_renewal(self._recovery_rate)

    def evaluate(self) -> AvailabilityResult:
        """Long-run time shares from the stationary distribution."""
        chain = self._config.chain(self._params)
        closed = chain.with_renewal(self._recovery_rate)
        pi = closed.stationary_distribution()
        absorbing = set(chain.absorbing_states())
        initial = chain.initial_state
        fully = pi.get(initial, 0.0)
        post_loss = sum(p for s, p in pi.items() if s in absorbing)
        degraded = max(0.0, 1.0 - fully - post_loss)
        return AvailabilityResult(
            fully_operational_fraction=fully,
            degraded_fraction=degraded,
            post_loss_fraction=post_loss,
        )

"""Critical-redundancy-set combinatorics (Section 5.2).

With data spread evenly over all :math:`\\binom{N}{R}` redundancy sets,
a redundancy set only loses data to an uncorrectable read error when it is
*critical* — it has already used up its fault tolerance.  This module
computes:

* the fraction of a surviving node's redundancy sets that are critical
  after ``j`` node failures (the paper's ``k2`` and ``k3`` factors), and
* the ``h``-with-subscript probabilities of hitting a hard error during a
  critical rebuild for nodes *without* internal RAID, for every
  node/drive failure combination (Sections 5.2.2) and, via the appendix's
  dot-operation, for arbitrary fault tolerance ``k``.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Tuple

from .parameters import Parameters

__all__ = [
    "critical_fraction",
    "k2_factor",
    "k3_factor",
    "redundancy_sets_total",
    "redundancy_sets_per_node",
    "hard_error_probability_full_drive",
    "h_parameters",
    "h_parameter",
]


def redundancy_sets_total(n: int, r: int) -> int:
    """Number of distinct redundancy sets, :math:`\\binom{N}{R}`."""
    _check_sizes(n, r)
    return math.comb(n, r)


def redundancy_sets_per_node(n: int, r: int) -> int:
    """Redundancy sets containing a given node, :math:`\\binom{N-1}{R-1}`."""
    _check_sizes(n, r)
    return math.comb(n - 1, r - 1)


def critical_fraction(n: int, r: int, failures: int) -> float:
    """Fraction of one failed node's redundancy sets shared with all the
    other ``failures - 1`` failed nodes.

    This is the paper's
    :math:`\\binom{N-j}{R-j} / \\binom{N-1}{R-1}` with ``j = failures``:
    of all the redundancy sets a particular failed node belongs to, the
    fraction that also contain every one of the other failed nodes — i.e.
    the fraction that is *critical* when the erasure code tolerates exactly
    ``failures`` losses.

    ``failures = 1`` gives 1.0 (every set containing the failed node is
    critical under fault tolerance 1), matching the bare ``lambda_S`` in
    the paper's NFT-1 formula.

    Args:
        n: node set size N.
        r: redundancy set size R.
        failures: number of concurrent failed nodes (>= 1).
    """
    _check_sizes(n, r)
    if failures < 1:
        raise ValueError("failures must be >= 1")
    if failures > r:
        return 0.0
    if failures > n:
        return 0.0
    numerator = math.comb(n - failures, r - failures)
    return numerator / math.comb(n - 1, r - 1)


def k2_factor(n: int, r: int) -> float:
    """``k2 = (R-1)/(N-1)``, the critical fraction with two node failures."""
    return critical_fraction(n, r, 2)


def k3_factor(n: int, r: int) -> float:
    """``k3 = (R-1)(R-2)/((N-1)(N-2))``, critical fraction with three failures."""
    return critical_fraction(n, r, 3)


def hard_error_probability_full_drive(params: Parameters, fault_tolerance: int) -> float:
    """Probability of a hard error while rebuilding one *fully critical* drive.

    During a critical rebuild with fault tolerance ``t``, regenerating a
    drive's worth of data requires reading the ``R - t`` surviving elements
    of each stripe, i.e. ``(R - t) * C`` bytes; the paper writes the per-
    drive probability as ``(R - t) * C * HER``.
    """
    r = params.redundancy_set_size
    if fault_tolerance < 1:
        raise ValueError("fault_tolerance must be >= 1")
    surviving_reads = max(r - fault_tolerance, 0)
    return surviving_reads * params.hard_error_per_drive_read


def h_parameter(params: Parameters, word: str) -> float:
    """The paper's ``h`` with subscript ``word`` for no-internal-RAID chains.

    ``word`` is a string over the letters ``"N"`` (node failure) and
    ``"d"`` (drive failure); its length is the erasure code's fault
    tolerance ``k``.  The value is the probability of encountering an
    uncorrectable error during the *last* rebuild when the preceding
    failures are as listed.

    Construction (Section 5.2.2 generalized): let

    .. math::

        h = \\frac{(R-1)(R-2)\\cdots(R-k)}{(N-1)(N-2)\\cdots(N-k+1)}
            \\cdot C \\cdot HER

    then ``h_word = h * d^(1 - #d)`` where ``#d`` counts the letter ``d``
    in ``word``.  For k = 1: ``h_N = d*(R-1)*C*HER`` and
    ``h_d = (R-1)*C*HER``; for k = 2 and 3 this reproduces the paper's
    tables exactly (``h_NN = d h``, ``h_Nd = h_dN = h``, ``h_dd = h/d``,
    etc.).

    Args:
        params: system parameters.
        word: failure word, e.g. ``"Nd"``.

    Raises:
        ValueError: on an empty word or letters outside {N, d}.
    """
    if not word:
        raise ValueError("failure word must be non-empty")
    if any(c not in "Nd" for c in word):
        raise ValueError(f"failure word may only contain 'N' and 'd': {word!r}")
    k = len(word)
    n = params.node_set_size
    r = params.redundancy_set_size
    d = params.drives_per_node
    base = params.hard_error_per_drive_read
    for i in range(1, k + 1):
        base *= max(r - i, 0)
    for i in range(1, k):
        base /= (n - i)
    num_drive_failures = word.count("d")
    return base * d ** (1 - num_drive_failures)


def h_parameters(params: Parameters, fault_tolerance: int) -> Dict[str, float]:
    """All ``2^k`` h-parameters for fault tolerance ``k``.

    Returned in the appendix's reverse-lexicographic convention: keys are
    all words of length ``k`` over {N, d}, values per :func:`h_parameter`.
    """
    if fault_tolerance < 1:
        raise ValueError("fault_tolerance must be >= 1")
    words = (
        "".join(letters)
        for letters in itertools.product("Nd", repeat=fault_tolerance)
    )
    return {w: h_parameter(params, w) for w in words}


def _check_sizes(n: int, r: int) -> None:
    if n < 2:
        raise ValueError("node set size must be >= 2")
    if not 2 <= r <= n:
        raise ValueError("redundancy set size must satisfy 2 <= R <= N")

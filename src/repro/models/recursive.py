"""Recursive construction of no-internal-RAID chains (paper appendix).

The appendix observes that the fault-tolerance-``k`` chain contains two
copies of the fault-tolerance-``k-1`` chain (one entered by a node
failure, one by a drive failure) plus a new root, giving ``2^(k+1) - 1``
non-absorbing states.  This module implements:

* :func:`build_recursive_chain` — the literal recursive construction
  (merge the absorbing states, prefix the labels, decrement N, prefix the
  h-subscripts, wire the new root);
* :class:`RecursiveNoRaidModel` — the user-facing model for arbitrary
  fault tolerance, exact (numeric solve) and approximate (Figure A1);
* :func:`l_value` / :func:`l_k` — the appendix's ``L`` and ``L_k``
  recursions; and
* :func:`mttdl_general_approx` — Figure A1's closed form

  .. math::

     MTTDL \\approx \\frac{(\\mu_N \\mu_d)^k}
       {N (N-1) \\cdots (N-k+1)\\bigl((N-k)(\\lambda_N + d \\lambda_d)
        L(\\mu_d, \\mu_N)^k + \\mu_N \\mu_d L_k(h^{(k)})\\bigr)}
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from ..core import CTMC, ChainBuilder
from ..core.spec import ModelSpec
from .critical_sets import h_parameters
from .parameters import Parameters
from .rebuild import RebuildModel
from .specs import compiled, recursive_env, recursive_spec

__all__ = [
    "build_recursive_chain",
    "RecursiveNoRaidModel",
    "l_value",
    "l_k",
    "mttdl_general_approx",
]

LOSS = "loss"


def _build_level(
    builder: ChainBuilder,
    prefix: str,
    k: int,
    remaining: int,
    n_eff: int,
    d: int,
    lam_n: float,
    lam_d: float,
    mu_n: float,
    mu_d: float,
    h: Mapping[str, float],
    n_total: int,
) -> None:
    """Recursively add the sub-chain rooted at ``prefix + "0" * remaining``.

    Args:
        prefix: failure word so far (letters over {N, d}).
        k: total fault tolerance of the whole chain.
        remaining: how many more failures are tolerated below this root.
        n_eff: effective node count at this level (N minus failures so far).
        n_total: the original N (for the absorbing rates ``(N-k)(...)``).
    """
    root = prefix + "0" * remaining
    if remaining == 0:
        # Innermost: a (k+1)-th failure anywhere loses data.
        builder.add_rate(root, LOSS, (n_total - k) * (lam_n + d * lam_d))
        return

    mu = {"N": mu_n, "d": mu_d}
    for letter, rate in (("N", lam_n), ("d", d * lam_d)):
        child_prefix = prefix + letter
        child = child_prefix + "0" * (remaining - 1)
        if remaining == 1:
            # Transition into a critical state: the h-split applies.
            h_split = min(max(h[child_prefix], 0.0), 1.0)
            builder.add_rate(root, child, n_eff * rate * (1.0 - h_split))
            builder.add_rate(root, LOSS, n_eff * rate * h_split)
        else:
            builder.add_rate(root, child, n_eff * rate)
        builder.add_rate(child, root, mu[letter])
        _build_level(
            builder,
            child_prefix,
            k,
            remaining - 1,
            n_eff - 1,
            d,
            lam_n,
            lam_d,
            mu_n,
            mu_d,
            h,
            n_total,
        )


def build_recursive_chain(
    fault_tolerance: int,
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Mapping[str, float],
) -> CTMC:
    """The appendix's no-internal-RAID chain for arbitrary fault tolerance.

    Produces ``2^(k+1) - 1`` non-absorbing states labeled by failure words
    (prefix of letters over {N, d} padded with "0"s) plus one absorbing
    ``"loss"`` state.  For k = 1, 2, 3 the result is generator-identical
    to the hand-transcribed Figures 8-10.

    Args:
        fault_tolerance: k >= 1.
        n: node set size (must exceed k).
        d: drives per node.
        node_failure_rate: lambda_N.
        drive_failure_rate: lambda_d.
        node_rebuild_rate: mu_N.
        drive_rebuild_rate: mu_d.
        h: mapping from every failure word of length k to its hard-error
            probability (see :func:`repro.models.critical_sets.h_parameters`).
    """
    env = recursive_env(
        fault_tolerance,
        n,
        d,
        node_failure_rate,
        drive_failure_rate,
        node_rebuild_rate,
        drive_rebuild_rate,
        h,
    )
    return compiled(recursive_spec(fault_tolerance)).bind(env)


def legacy_build_recursive_chain(
    fault_tolerance: int,
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Mapping[str, float],
) -> CTMC:
    """The original imperative appendix construction (equivalence oracle)."""
    k = fault_tolerance
    if k < 1:
        raise ValueError("fault_tolerance must be >= 1")
    if n <= k:
        raise ValueError("node set must be larger than the fault tolerance")
    if d < 1:
        raise ValueError("need at least one drive per node")
    missing = [w for w in _words(k) if w not in h]
    if missing:
        raise ValueError(f"missing h-parameters for words: {missing[:4]}...")

    builder = ChainBuilder().add_state("0" * k)
    _build_level(
        builder,
        prefix="",
        k=k,
        remaining=k,
        n_eff=n,
        d=d,
        lam_n=node_failure_rate,
        lam_d=drive_failure_rate,
        mu_n=node_rebuild_rate,
        mu_d=drive_rebuild_rate,
        h=h,
        n_total=n,
    )
    return builder.build(initial_state="0" * k)


# --------------------------------------------------------------------- #
# the appendix's L / L_k recursion and Figure A1 closed form
# --------------------------------------------------------------------- #


def l_value(x: float, y: float, node_failure_rate: float, drive_failure_rate: float, d: int) -> float:
    """``L(x, y) = x lambda_N + y d lambda_d``."""
    return x * node_failure_rate + y * d * drive_failure_rate


def l_k(
    h_ordered: Sequence[float],
    node_failure_rate: float,
    drive_failure_rate: float,
    d: int,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
) -> float:
    """The appendix's ``L_k`` recursion on an ordered h-set of size ``2^k``.

    ``L_1(H) = L(H_1, H_2)``; for k > 1 split H into halves (N-prefixed
    first, d-prefixed second) and
    ``L_k(H) = L(mu_d L_{k-1}(H_N), mu_N L_{k-1}(H_d))``.
    """
    size = len(h_ordered)
    if size < 2 or size & (size - 1):
        raise ValueError("h-set size must be a power of two, >= 2")
    if size == 2:
        return l_value(
            h_ordered[0], h_ordered[1], node_failure_rate, drive_failure_rate, d
        )
    half = size // 2
    first = l_k(
        h_ordered[:half],
        node_failure_rate,
        drive_failure_rate,
        d,
        node_rebuild_rate,
        drive_rebuild_rate,
    )
    second = l_k(
        h_ordered[half:],
        node_failure_rate,
        drive_failure_rate,
        d,
        node_rebuild_rate,
        drive_rebuild_rate,
    )
    return l_value(
        drive_rebuild_rate * first,
        node_rebuild_rate * second,
        node_failure_rate,
        drive_failure_rate,
        d,
    )


def mttdl_general_approx(
    fault_tolerance: int,
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Mapping[str, float],
) -> float:
    """Figure A1's general closed-form MTTDL approximation.

    Valid when ``N (lambda_N + d lambda_d)`` is at least an order of
    magnitude below both rebuild rates (the appendix theorem's hypothesis).
    """
    k = fault_tolerance
    if k < 1:
        raise ValueError("fault_tolerance must be >= 1")
    if n <= k:
        raise ValueError("node set must be larger than the fault tolerance")
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    h_ordered = [h[w] for w in _words(k)]
    l_mu = l_value(mu_d, mu_n, lam_n, lam_d, d)
    lk = (
        l_k(h_ordered, lam_n, lam_d, d, mu_n, mu_d)
        if k > 1
        else l_value(h_ordered[0], h_ordered[1], lam_n, lam_d, d)
    )
    falling = 1.0
    for j in range(k):
        falling *= n - j
    denominator = falling * (
        (n - k) * (lam_n + d * lam_d) * l_mu**k + (mu_n * mu_d) * lk
    )
    return (mu_n * mu_d) ** k / denominator


def _words(k: int) -> List[str]:
    """All length-k failure words in the appendix's order (N before d)."""
    words = [""]
    for _ in range(k):
        words = [w + letter for w in words for letter in "Nd"]
    # Build in prefix-major order: ["NN", "Nd", "dN", "dd"] for k = 2.
    return sorted(words, key=lambda w: [0 if c == "N" else 1 for c in w])


class RecursiveNoRaidModel:
    """No-internal-RAID model for arbitrary cross-node fault tolerance.

    Args:
        params: system parameters.
        fault_tolerance: k >= 1 (the chain has ``2^(k+1) - 1`` states, so
            stay modest; k = 10 is ~2000 states and solves in milliseconds).
        rebuild: optional shared rebuild model.
    """

    def __init__(
        self,
        params: Parameters,
        fault_tolerance: int,
        rebuild: Optional[RebuildModel] = None,
    ) -> None:
        if fault_tolerance < 1:
            raise ValueError("fault_tolerance must be >= 1")
        if params.node_set_size <= fault_tolerance:
            raise ValueError("node set must be larger than the fault tolerance")
        self._params = params
        self._t = fault_tolerance
        self._rebuild = rebuild if rebuild is not None else RebuildModel(params)

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def fault_tolerance(self) -> int:
        return self._t

    @property
    def node_rebuild_rate(self) -> float:
        return self._rebuild.node_rebuild_rate(self._t)

    @property
    def drive_rebuild_rate(self) -> float:
        return self._rebuild.drive_rebuild_rate(self._t)

    def hard_error_parameters(self) -> Dict[str, float]:
        """All ``2^k`` h-parameters (Section 5.2.2 generalized)."""
        return h_parameters(self._params, self._t)

    def spec(self) -> ModelSpec:
        """The declarative form of the appendix chain."""
        return recursive_spec(self._t)

    def chain_env(self) -> Dict[str, float]:
        """The binding environment for :meth:`spec` at this operating point."""
        p = self._params
        return recursive_env(
            self._t,
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            self.node_rebuild_rate,
            self.drive_rebuild_rate,
            self.hard_error_parameters(),
        )

    def chain(self) -> CTMC:
        """The recursively-constructed CTMC, bound through the compiled
        spec."""
        return compiled(self.spec()).bind(self.chain_env())

    def legacy_chain(self) -> CTMC:
        """The same chain through the original recursive builder — the
        oracle the spec path is checked against (bitwise)."""
        p = self._params
        return legacy_build_recursive_chain(
            self._t,
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            self.node_rebuild_rate,
            self.drive_rebuild_rate,
            self.hard_error_parameters(),
        )

    def mttdl_exact(self) -> float:
        """MTTDL in hours from the numeric CTMC solve."""
        return self.chain().mean_time_to_absorption()

    def mttdl_approx(self) -> float:
        """Figure A1's closed-form approximation."""
        p = self._params
        return mttdl_general_approx(
            self._t,
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            self.node_rebuild_rate,
            self.drive_rebuild_rate,
            self.hard_error_parameters(),
        )

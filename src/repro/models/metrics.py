"""Reliability metrics (Section 4 and Section 6).

The paper argues that *expected data-loss events per unit time* is easier
to reason about than the traditional MTTDL, and normalizes it per petabyte
of logical capacity so a manufacturer can track a field population.  This
module converts between the representations and encodes the paper's
reliability target:

    "a field population of 100 systems each with a petabyte of logical
    capacity will experience less than one data loss event in 5 years"
    ==> fewer than 2e-3 data loss events per PB-year.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import HOURS_PER_YEAR, Parameters

__all__ = [
    "PAPER_TARGET_EVENTS_PER_PB_YEAR",
    "ReliabilityResult",
    "mttdl_hours_to_events_per_year",
    "events_per_year_to_mttdl_hours",
    "events_per_pb_year",
    "mttdl_hours_for_target",
]

#: Section 6's target: < 1 loss event across 100 PB-scale systems in 5 years.
PAPER_TARGET_EVENTS_PER_PB_YEAR = 1.0 / (100 * 1.0 * 5)


def mttdl_hours_to_events_per_year(mttdl_hours: float) -> float:
    """Expected data-loss events per system-year given an MTTDL in hours."""
    if mttdl_hours <= 0:
        raise ValueError("MTTDL must be positive")
    return HOURS_PER_YEAR / mttdl_hours


def events_per_year_to_mttdl_hours(events_per_year: float) -> float:
    """Inverse of :func:`mttdl_hours_to_events_per_year`."""
    if events_per_year <= 0:
        raise ValueError("event rate must be positive")
    return HOURS_PER_YEAR / events_per_year


def events_per_pb_year(mttdl_hours: float, params: Parameters) -> float:
    """Data-loss events per petabyte-year for a system with ``params``.

    Normalizes the per-system event rate by the system's *logical*
    capacity, per Section 6.
    """
    return mttdl_hours_to_events_per_year(mttdl_hours) / params.system_logical_pb


def mttdl_hours_for_target(
    params: Parameters, target_events_per_pb_year: float = PAPER_TARGET_EVENTS_PER_PB_YEAR
) -> float:
    """Minimum MTTDL (hours) a system with ``params`` needs to meet a target."""
    if target_events_per_pb_year <= 0:
        raise ValueError("target must be positive")
    return HOURS_PER_YEAR / (target_events_per_pb_year * params.system_logical_pb)


@dataclass(frozen=True)
class ReliabilityResult:
    """A configuration's reliability in every representation the paper uses.

    Attributes:
        mttdl_hours: mean time to data loss.
        events_per_pb_year: the paper's headline metric.
        meets_target: whether the paper's 2e-3 events/PB-year target holds.
    """

    mttdl_hours: float
    events_per_pb_year: float

    @classmethod
    def from_mttdl(cls, mttdl_hours: float, params: Parameters) -> "ReliabilityResult":
        return cls(
            mttdl_hours=mttdl_hours,
            events_per_pb_year=events_per_pb_year(mttdl_hours, params),
        )

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / HOURS_PER_YEAR

    @property
    def meets_target(self) -> bool:
        return self.events_per_pb_year < PAPER_TARGET_EVENTS_PER_PB_YEAR

    def margin_orders_of_magnitude(self) -> float:
        """How many orders of magnitude below (positive) or above (negative)
        the target this configuration sits."""
        import math

        return math.log10(PAPER_TARGET_EVENTS_PER_PB_YEAR / self.events_per_pb_year)

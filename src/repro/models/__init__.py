"""Reliability models for networked storage nodes.

Everything in the paper's Sections 3-6: the nine redundancy
configurations, the drive-level and node-level Markov chains, the
rebuild-time model, the critical-redundancy-set combinatorics and the
closed-form MTTDL approximations.

The supported public surface is exactly ``__all__`` below.  The
pre-spec imperative chain builders live in :mod:`repro.models.legacy`
as equivalence oracles and are deliberately not re-exported here.
"""

from . import legacy
from .availability import (
    AvailabilityModel,
    AvailabilityResult,
    fleet_expected_events,
    fleet_loss_probability,
    mission_survival_probability,
)
from .closed_form import (
    mttdl_general_approx,
    mttdl_internal_raid_nft1,
    mttdl_internal_raid_nft2,
    mttdl_internal_raid_nft3,
    mttdl_no_raid_nft1,
    mttdl_no_raid_nft2,
    mttdl_no_raid_nft3,
)
from .configurations import (
    ALL_CONFIGURATIONS,
    Configuration,
    all_configurations,
    evaluate,
    evaluate_all,
    sensitivity_configurations,
)
from .detection import DetectionLatencyModel, build_detection_chain
from .critical_sets import (
    critical_fraction,
    h_parameter,
    h_parameters,
    hard_error_probability_full_drive,
    k2_factor,
    k3_factor,
    redundancy_sets_per_node,
    redundancy_sets_total,
)
from .internal_raid import InternalRaidNodeModel, build_internal_raid_chain
from .metrics import (
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    ReliabilityResult,
    events_per_pb_year,
    events_per_year_to_mttdl_hours,
    mttdl_hours_for_target,
    mttdl_hours_to_events_per_year,
)
from .monolithic import MonolithicSystem
from .no_raid import (
    NoRaidNodeModel,
    build_no_raid_chain_ft1,
    build_no_raid_chain_ft2,
    build_no_raid_chain_ft3,
)
from .parameters import GB, HOURS_PER_YEAR, KB, MB, ParameterError, Parameters
from .performance import PerformanceImpact, PerformanceImpactModel
from .raid import (
    ArrayRates,
    InternalRaid,
    Raid5Model,
    Raid6Model,
    array_model,
    build_raid5_chain,
    build_raid6_chain,
    raid5_mttdl_approx,
    raid5_mttdl_exact_formula,
    raid6_mttdl_approx,
)
from .rebuild import RebuildModel, TransferBreakdown
from .scrubbing import SECTOR_BYTES, ScrubbingModel
from .space import (
    DERIVED_AXES,
    ConfigSpace,
    ParamAxis,
    SearchSpace,
    SpaceError,
    SpacePoint,
    storage_overhead,
)
from .recursive import (
    RecursiveNoRaidModel,
    build_recursive_chain,
    l_k,
    l_value,
)

__all__ = [
    "ALL_CONFIGURATIONS",
    "ArrayRates",
    "AvailabilityModel",
    "AvailabilityResult",
    "fleet_expected_events",
    "fleet_loss_probability",
    "mission_survival_probability",
    "ConfigSpace",
    "Configuration",
    "DERIVED_AXES",
    "DetectionLatencyModel",
    "GB",
    "build_detection_chain",
    "HOURS_PER_YEAR",
    "InternalRaid",
    "InternalRaidNodeModel",
    "KB",
    "MB",
    "MonolithicSystem",
    "NoRaidNodeModel",
    "PAPER_TARGET_EVENTS_PER_PB_YEAR",
    "ParamAxis",
    "ParameterError",
    "Parameters",
    "PerformanceImpact",
    "PerformanceImpactModel",
    "Raid5Model",
    "Raid6Model",
    "RebuildModel",
    "RecursiveNoRaidModel",
    "ReliabilityResult",
    "SECTOR_BYTES",
    "ScrubbingModel",
    "SearchSpace",
    "SpaceError",
    "SpacePoint",
    "TransferBreakdown",
    "all_configurations",
    "array_model",
    "build_internal_raid_chain",
    "build_no_raid_chain_ft1",
    "build_no_raid_chain_ft2",
    "build_no_raid_chain_ft3",
    "build_raid5_chain",
    "build_raid6_chain",
    "build_recursive_chain",
    "critical_fraction",
    "evaluate",
    "evaluate_all",
    "events_per_pb_year",
    "events_per_year_to_mttdl_hours",
    "h_parameter",
    "h_parameters",
    "hard_error_probability_full_drive",
    "k2_factor",
    "k3_factor",
    "l_k",
    "l_value",
    "legacy",
    "mttdl_general_approx",
    "mttdl_hours_for_target",
    "mttdl_hours_to_events_per_year",
    "mttdl_internal_raid_nft1",
    "mttdl_internal_raid_nft2",
    "mttdl_internal_raid_nft3",
    "mttdl_no_raid_nft1",
    "mttdl_no_raid_nft2",
    "mttdl_no_raid_nft3",
    "raid5_mttdl_approx",
    "raid5_mttdl_exact_formula",
    "raid6_mttdl_approx",
    "redundancy_sets_per_node",
    "redundancy_sets_total",
    "sensitivity_configurations",
    "storage_overhead",
]

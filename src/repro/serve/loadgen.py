"""``repro-loadgen`` — an open-loop HTTP load generator for repro-serve.

Open-loop means send times are fixed by the target rate before any
response arrives: request *i* departs at ``t0 + i / rps`` whether or not
earlier requests have finished.  That is the arrival model that actually
stresses admission control — a closed loop slows itself down exactly
when the server struggles, hiding overload — so shed rates and tail
latencies measured here mean what they appear to mean.

The request mix is seeded and reproducible: a :class:`RequestMix` draws
(configuration, method, one parameter override) per request from a
``random.Random(seed)``, so two runs against the same server hit the
same key sequence (and therefore the same cache behavior).

The report carries p50/p95/p99 latency, achieved throughput, and a
status histogram; :func:`run_loadgen` returns it for in-process callers
(tests, the smoke check, benchmarks) and ``main`` prints it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LoadReport",
    "RequestMix",
    "main",
    "percentile",
    "run_loadgen",
]

#: The nine standard configuration keys (3 internal-RAID levels x 3
#: node fault tolerances), spelled out so the load generator does not
#: import model code — it is a pure HTTP client.
DEFAULT_CONFIGS = (
    "ft1_noraid",
    "ft2_noraid",
    "ft3_noraid",
    "ft1_raid5",
    "ft2_raid5",
    "ft3_raid5",
    "ft1_raid6",
    "ft2_raid6",
    "ft3_raid6",
)

#: Method draw: mostly the batched analytic path, some closed form.
DEFAULT_METHODS = ("analytic", "analytic", "analytic", "closed_form")

#: Default swept override axis and its values — enough distinct values
#: to generate cache misses, few enough to also exercise hits.
DEFAULT_AXIS = "drive_mttf_hours"
DEFAULT_VALUES = (100_000.0, 200_000.0, 300_000.0, 461_386.0, 750_000.0)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        return float("nan")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


class RequestMix:
    """A seeded stream of ``/v1/evaluate`` request bodies."""

    def __init__(
        self,
        seed: int = 0,
        *,
        configs: Sequence[str] = DEFAULT_CONFIGS,
        methods: Sequence[str] = DEFAULT_METHODS,
        axis: str = DEFAULT_AXIS,
        values: Sequence[float] = DEFAULT_VALUES,
    ) -> None:
        self.seed = seed
        self.configs = tuple(configs)
        self.methods = tuple(methods)
        self.axis = axis
        self.values = tuple(values)
        self._rng = random.Random(seed)

    def body(self) -> Dict[str, Any]:
        """The next request body in the stream."""
        rng = self._rng
        return {
            "config": rng.choice(self.configs),
            "method": rng.choice(self.methods),
            "params": {self.axis: rng.choice(self.values)},
        }


@dataclass
class LoadReport:
    """Everything one load-generation run measured."""

    target_rps: float
    duration_s: float
    sent: int = 0
    statuses: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    transport_errors: int = 0
    elapsed_s: float = 0.0
    #: Per-request log: (status, latency_s) in send order; status -1
    #: marks a transport failure.  Tests reconcile this against the
    #: server's admission metrics.
    log: List[Tuple[int, float]] = field(default_factory=list)

    def record(self, status: int, latency_s: float) -> None:
        self.sent += 1
        self.log.append((status, latency_s))
        if status < 0:
            self.transport_errors += 1
            return
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies_s.append(latency_s)

    @property
    def completed(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0)

    @property
    def server_errors(self) -> int:
        return sum(n for s, n in self.statuses.items() if s >= 500)

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_percentiles_ms(self) -> Dict[str, float]:
        ordered = sorted(self.latencies_s)
        return {
            "p50": 1e3 * percentile(ordered, 50),
            "p95": 1e3 * percentile(ordered, 95),
            "p99": 1e3 * percentile(ordered, 99),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target_rps": self.target_rps,
            "duration_s": self.duration_s,
            "elapsed_s": round(self.elapsed_s, 3),
            "sent": self.sent,
            "completed": self.completed,
            "shed": self.shed,
            "server_errors": self.server_errors,
            "transport_errors": self.transport_errors,
            "achieved_rps": round(self.achieved_rps, 2),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "latency_ms": {
                k: round(v, 3)
                for k, v in self.latency_percentiles_ms().items()
            },
        }

    def format(self) -> str:
        pct = self.latency_percentiles_ms()
        lines = [
            "loadgen report",
            f"  target rate     {self.target_rps:g} req/s "
            f"for {self.duration_s:g}s (open loop)",
            f"  sent/completed  {self.sent}/{self.completed} "
            f"(shed {self.shed}, 5xx {self.server_errors}, "
            f"transport {self.transport_errors})",
            f"  achieved        {self.achieved_rps:.1f} req/s",
            f"  latency ms      p50 {pct['p50']:.2f}   "
            f"p95 {pct['p95']:.2f}   p99 {pct['p99']:.2f}",
        ]
        return "\n".join(lines)


async def _one_request(
    host: str,
    port: int,
    path: str,
    body: Dict[str, Any],
    report: LoadReport,
    timeout_s: float,
) -> None:
    payload = json.dumps(body).encode("utf-8")
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1") + payload
    t0 = time.monotonic()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
        try:
            writer.write(request)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        status = int(raw.split(b" ", 2)[1])
    except (OSError, asyncio.TimeoutError, ValueError, IndexError):
        report.record(-1, time.monotonic() - t0)
        return
    report.record(status, time.monotonic() - t0)


async def run_loadgen(
    host: str,
    port: int,
    *,
    rps: float = 50.0,
    duration_s: float = 5.0,
    seed: int = 0,
    mix: Optional[RequestMix] = None,
    path: str = "/v1/evaluate",
    timeout_s: float = 30.0,
) -> LoadReport:
    """Drive open-loop traffic at ``rps`` for ``duration_s`` seconds."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    mix = mix if mix is not None else RequestMix(seed)
    report = LoadReport(target_rps=rps, duration_s=duration_s)
    total = max(1, int(rps * duration_s))
    t0 = time.monotonic()
    tasks = []
    for i in range(total):
        delay = t0 + i / rps - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                _one_request(host, port, path, mix.body(), report, timeout_s)
            )
        )
    await asyncio.gather(*tasks)
    report.elapsed_s = time.monotonic() - t0
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Open-loop load generator for repro-serve.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--rps", type=float, default=50.0, help="target request rate"
    )
    parser.add_argument(
        "--seconds", type=float, default=5.0, help="run duration"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="request-mix seed"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report as JSON to PATH",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            rps=args.rps,
            duration_s=args.seconds,
            seed=args.seed,
        )
    )
    print(report.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    return 1 if report.server_errors or report.transport_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

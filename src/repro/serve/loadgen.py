"""``repro-loadgen`` — an open-loop HTTP load generator for repro-serve.

Open-loop means send times are fixed by the target rate before any
response arrives: request *i* departs at ``t0 + offset[i]`` whether or
not earlier requests have finished.  That is the arrival model that
actually stresses admission control — a closed loop slows itself down
exactly when the server struggles, hiding overload — so shed rates and
tail latencies measured here mean what they appear to mean.

The request mix is seeded and reproducible: a :class:`RequestMix` draws
(configuration, method, one parameter override) per request from a
``random.Random(seed)``, so two runs against the same server hit the
same key sequence (and therefore the same cache behavior).

Traffic shapes generalize the arrival process and the key skew beyond
the uniform default.  A :class:`TrafficShape` owns both the arrival
offsets and the request-mix factory, so a shape is one seeded object:

* ``uniform`` — evenly spaced arrivals, uniform key mix (the default);
* ``diurnal`` — a sinusoidal rate ramp (a day/night cycle compressed
  into the run), arrivals placed by inverting the cumulative rate;
* ``bursty`` — on/off square-wave bursts with the on-rate scaled up so
  the average rate still matches the target;
* ``hotkey`` — uniform arrivals but a Zipf-skewed key mix, the shape
  that rewards shard-local caching.

The report carries p50/p95/p99 latency, achieved throughput, a status
histogram and the shape name; :func:`run_loadgen` returns it for
in-process callers (tests, the smoke check, benchmarks) and ``main``
prints it.  Client-side quantiles are computed twice: exactly (sorted
samples) and through the same :class:`~repro.obs.metrics.LogLinearHistogram`
the server's windowed instruments use, so a loadgen report and a
``/metricsz`` scrape of the same run are directly comparable —
identical bucketing, identical upper-edge bias.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import _QUANTILE_LABELS, LogLinearHistogram

__all__ = [
    "BurstyShape",
    "DiurnalShape",
    "HotKeyShape",
    "LoadReport",
    "RequestMix",
    "TrafficShape",
    "ZipfRequestMix",
    "main",
    "percentile",
    "run_loadgen",
    "shape_by_name",
]

#: The nine standard configuration keys (3 internal-RAID levels x 3
#: node fault tolerances), spelled out so the load generator does not
#: import model code — it is a pure HTTP client.
DEFAULT_CONFIGS = (
    "ft1_noraid",
    "ft2_noraid",
    "ft3_noraid",
    "ft1_raid5",
    "ft2_raid5",
    "ft3_raid5",
    "ft1_raid6",
    "ft2_raid6",
    "ft3_raid6",
)

#: Method draw: mostly the batched analytic path, some closed form.
DEFAULT_METHODS = ("analytic", "analytic", "analytic", "closed_form")

#: Default swept override axis and its values — enough distinct values
#: to generate cache misses, few enough to also exercise hits.
DEFAULT_AXIS = "drive_mttf_hours"
DEFAULT_VALUES = (100_000.0, 200_000.0, 300_000.0, 461_386.0, 750_000.0)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        return float("nan")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


class RequestMix:
    """A seeded stream of ``/v1/evaluate`` request bodies."""

    def __init__(
        self,
        seed: int = 0,
        *,
        configs: Sequence[str] = DEFAULT_CONFIGS,
        methods: Sequence[str] = DEFAULT_METHODS,
        axis: str = DEFAULT_AXIS,
        values: Sequence[float] = DEFAULT_VALUES,
    ) -> None:
        self.seed = seed
        self.configs = tuple(configs)
        self.methods = tuple(methods)
        self.axis = axis
        self.values = tuple(values)
        self._rng = random.Random(seed)

    def body(self) -> Dict[str, Any]:
        """The next request body in the stream."""
        rng = self._rng
        return {
            "config": rng.choice(self.configs),
            "method": rng.choice(self.methods),
            "params": {self.axis: rng.choice(self.values)},
        }


class ZipfRequestMix(RequestMix):
    """A request mix whose (config, value) popularity follows a Zipf law.

    Rank *r* (0-based) of the ``configs x values`` key space carries
    weight ``1 / (r + 1) ** skew``, so a handful of hot keys dominate —
    the access pattern real caches live under.  Methods stay uniform.
    The hot-key order is itself a seeded shuffle, so the hottest key is
    not always ``configs[0]`` but is stable for a given seed.
    """

    def __init__(self, seed: int = 0, *, skew: float = 1.2, **kwargs: Any) -> None:
        super().__init__(seed, **kwargs)
        if skew <= 0:
            raise ValueError("skew must be positive")
        self.skew = skew
        keys = [(c, v) for c in self.configs for v in self.values]
        order_rng = random.Random(seed ^ 0x5A1F)
        order_rng.shuffle(keys)
        self._keys = keys
        self._weights = [1.0 / (r + 1) ** skew for r in range(len(keys))]

    def body(self) -> Dict[str, Any]:
        rng = self._rng
        config, value = rng.choices(self._keys, weights=self._weights, k=1)[0]
        return {
            "config": config,
            "method": rng.choice(self.methods),
            "params": {self.axis: value},
        }


class TrafficShape:
    """A named, seeded traffic pattern: arrival times plus key mix.

    The base class is the ``uniform`` shape — evenly spaced arrivals and
    the plain :class:`RequestMix`.  Subclasses override
    :meth:`arrival_offsets` (when the *rate* varies over the run) or
    :meth:`request_mix` (when the *keys* are skewed), or both.  All
    shapes send ``max(1, int(rps * duration_s))`` requests total, so the
    average rate always matches the target.
    """

    name = "uniform"

    def arrival_offsets(self, rps: float, duration_s: float) -> List[float]:
        """Send offsets (seconds from start), sorted ascending."""
        total = max(1, int(rps * duration_s))
        return [i / rps for i in range(total)]

    def request_mix(self, seed: int) -> RequestMix:
        return RequestMix(seed)


class DiurnalShape(TrafficShape):
    """A sinusoidal rate ramp: ``rate(t) = rps * (1 - amp * cos(w t))``.

    One full period spans ``duration_s / periods`` — a day/night cycle
    compressed into the run, starting at the trough.  Arrival *k* is
    placed where the cumulative rate
    ``R(t) = rps * (t - amp * sin(w t) / w)`` reaches *k*, found by
    bisection (R is strictly increasing for amp < 1).
    """

    name = "diurnal"

    def __init__(self, *, amplitude: float = 0.8, periods: int = 1) -> None:
        if not 0 < amplitude < 1:
            raise ValueError("amplitude must be in (0, 1)")
        if periods < 1:
            raise ValueError("periods must be >= 1")
        self.amplitude = amplitude
        self.periods = periods

    def arrival_offsets(self, rps: float, duration_s: float) -> List[float]:
        total = max(1, int(rps * duration_s))
        amp = self.amplitude
        omega = 2.0 * math.pi * self.periods / duration_s

        def cumulative(t: float) -> float:
            return rps * (t - amp * math.sin(omega * t) / omega)

        offsets: List[float] = []
        lo = 0.0
        for k in range(total):
            target = float(k)
            a, b = lo, duration_s
            for _ in range(48):  # ~fs resolution over a seconds-long run
                mid = 0.5 * (a + b)
                if cumulative(mid) < target:
                    a = mid
                else:
                    b = mid
            offsets.append(b)
            lo = b  # arrivals are monotone; resume bisection from here
        return offsets


class BurstyShape(TrafficShape):
    """An on/off square wave: bursts at an elevated rate, then silence.

    The on-rate is scaled by ``(on + off) / on`` so the run still sends
    ``rps * duration_s`` requests on average — the bursts are a pure
    redistribution of the same load into pulses.
    """

    name = "bursty"

    def __init__(self, *, on_s: float = 0.5, off_s: float = 0.5) -> None:
        if on_s <= 0 or off_s < 0:
            raise ValueError("on_s must be positive and off_s non-negative")
        self.on_s = on_s
        self.off_s = off_s

    def arrival_offsets(self, rps: float, duration_s: float) -> List[float]:
        total = max(1, int(rps * duration_s))
        cycle = self.on_s + self.off_s
        burst_rate = rps * cycle / self.on_s
        offsets: List[float] = []
        window_start = 0.0
        while len(offsets) < total and window_start < duration_s:
            per_window = max(1, int(burst_rate * self.on_s))
            for j in range(per_window):
                if len(offsets) >= total:
                    break
                t = window_start + j / burst_rate
                if t >= duration_s:
                    break
                offsets.append(t)
            window_start += cycle
        # Rounding can undershoot; top up at the tail inside the run.
        while len(offsets) < total:
            offsets.append(offsets[-1] if offsets else 0.0)
        return offsets


class HotKeyShape(TrafficShape):
    """Uniform arrivals, Zipf-skewed keys — the cache-locality shape."""

    name = "hotkey"

    def __init__(self, *, skew: float = 1.2) -> None:
        if skew <= 0:
            raise ValueError("skew must be positive")
        self.skew = skew

    def request_mix(self, seed: int) -> RequestMix:
        return ZipfRequestMix(seed, skew=self.skew)


_SHAPES = {
    "uniform": TrafficShape,
    "diurnal": DiurnalShape,
    "bursty": BurstyShape,
    "hotkey": HotKeyShape,
}


def shape_by_name(name: str) -> TrafficShape:
    """Instantiate a traffic shape by its registered name."""
    try:
        cls = _SHAPES[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic shape {name!r}; choose from {sorted(_SHAPES)}"
        ) from None
    return cls()


@dataclass
class LoadReport:
    """Everything one load-generation run measured."""

    target_rps: float
    duration_s: float
    shape: str = "uniform"
    sent: int = 0
    statuses: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    transport_errors: int = 0
    elapsed_s: float = 0.0
    #: Per-request log: (status, latency_s) in send order; status -1
    #: marks a transport failure.  Tests reconcile this against the
    #: server's admission metrics.
    log: List[Tuple[int, float]] = field(default_factory=list)
    #: Response bodies indexed by *send order*, populated only when
    #: ``run_loadgen(capture_bodies=True)``: ``bodies[i]`` is the raw
    #: body of the i-th request sent, or ``None`` on transport failure.
    #: Send-indexed (``log`` is completion-ordered) so two runs with the
    #: same seed can be compared request-by-request.
    bodies: List[Optional[bytes]] = field(default_factory=list)
    #: The same log-linear histogram the server's windowed instruments
    #: use, fed every successful latency — so this report's quantiles
    #: and a ``/metricsz`` scrape share one bucketing scheme.
    hist: LogLinearHistogram = field(default_factory=LogLinearHistogram)

    def record(self, status: int, latency_s: float) -> None:
        self.sent += 1
        self.log.append((status, latency_s))
        if status < 0:
            self.transport_errors += 1
            return
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies_s.append(latency_s)
        self.hist.observe(latency_s)

    @property
    def completed(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0)

    @property
    def server_errors(self) -> int:
        return sum(n for s, n in self.statuses.items() if s >= 500)

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_percentiles_ms(self) -> Dict[str, float]:
        ordered = sorted(self.latencies_s)
        return {
            "p50": 1e3 * percentile(ordered, 50),
            "p95": 1e3 * percentile(ordered, 95),
            "p99": 1e3 * percentile(ordered, 99),
        }

    def latency_quantiles_ms(self) -> Dict[str, float]:
        """Histogram-derived quantiles (server code path), in ms."""
        return {
            label: 1e3 * self.hist.quantile(q)
            for q, label in _QUANTILE_LABELS.items()
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target_rps": self.target_rps,
            "duration_s": self.duration_s,
            "shape": self.shape,
            "elapsed_s": round(self.elapsed_s, 3),
            "sent": self.sent,
            "completed": self.completed,
            "shed": self.shed,
            "server_errors": self.server_errors,
            "transport_errors": self.transport_errors,
            "achieved_rps": round(self.achieved_rps, 2),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "latency_ms": {
                k: round(v, 3)
                for k, v in self.latency_percentiles_ms().items()
            },
            "latency_hist_ms": {
                k: round(v, 3)
                for k, v in self.latency_quantiles_ms().items()
            },
        }

    def format(self) -> str:
        pct = self.latency_percentiles_ms()
        lines = [
            "loadgen report",
            f"  target rate     {self.target_rps:g} req/s "
            f"for {self.duration_s:g}s (open loop, shape {self.shape})",
            f"  sent/completed  {self.sent}/{self.completed} "
            f"(shed {self.shed}, 5xx {self.server_errors}, "
            f"transport {self.transport_errors})",
            f"  achieved        {self.achieved_rps:.1f} req/s",
            f"  latency ms      p50 {pct['p50']:.2f}   "
            f"p95 {pct['p95']:.2f}   p99 {pct['p99']:.2f}",
        ]
        if self.hist.count:
            q = self.latency_quantiles_ms()
            lines.append(
                f"  histogram ms    p50 {q['p50']:.2f}   "
                f"p95 {q['p95']:.2f}   p99 {q['p99']:.2f}   "
                f"p999 {q['p999']:.2f}  (server bucketing)"
            )
        return "\n".join(lines)


async def _one_request(
    host: str,
    port: int,
    path: str,
    body: Dict[str, Any],
    report: LoadReport,
    timeout_s: float,
    body_slot: Optional[int] = None,
) -> None:
    payload = json.dumps(body).encode("utf-8")
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1") + payload
    t0 = time.monotonic()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
        try:
            writer.write(request)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        status = int(raw.split(b" ", 2)[1])
    except (OSError, asyncio.TimeoutError, ValueError, IndexError):
        report.record(-1, time.monotonic() - t0)
        return
    if body_slot is not None:
        parts = raw.split(b"\r\n\r\n", 1)
        report.bodies[body_slot] = parts[1] if len(parts) == 2 else b""
    report.record(status, time.monotonic() - t0)


async def run_loadgen(
    host: str,
    port: int,
    *,
    rps: float = 50.0,
    duration_s: float = 5.0,
    seed: int = 0,
    mix: Optional[RequestMix] = None,
    shape: Optional[TrafficShape] = None,
    path: str = "/v1/evaluate",
    timeout_s: float = 30.0,
    capture_bodies: bool = False,
) -> LoadReport:
    """Drive open-loop traffic at ``rps`` for ``duration_s`` seconds.

    ``shape`` selects the arrival process and the default key mix; an
    explicit ``mix`` overrides the shape's mix (arrivals still follow
    the shape).  ``capture_bodies`` stores each response body in
    ``report.bodies`` indexed by send order, for request-by-request
    comparison of two seeded runs.
    """
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    shape = shape if shape is not None else TrafficShape()
    mix = mix if mix is not None else shape.request_mix(seed)
    offsets = shape.arrival_offsets(rps, duration_s)
    report = LoadReport(
        target_rps=rps, duration_s=duration_s, shape=shape.name
    )
    if capture_bodies:
        report.bodies = [None] * len(offsets)
    t0 = time.monotonic()
    tasks = []
    for i, offset in enumerate(offsets):
        delay = t0 + offset - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                _one_request(
                    host,
                    port,
                    path,
                    mix.body(),
                    report,
                    timeout_s,
                    body_slot=i if capture_bodies else None,
                )
            )
        )
    await asyncio.gather(*tasks)
    report.elapsed_s = time.monotonic() - t0
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Open-loop load generator for repro-serve.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--rps", type=float, default=50.0, help="target request rate"
    )
    parser.add_argument(
        "--seconds", type=float, default=5.0, help="run duration"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="request-mix seed"
    )
    parser.add_argument(
        "--shape",
        choices=sorted(_SHAPES),
        default="uniform",
        help="traffic shape: arrival process and key skew",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report as JSON to PATH",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            rps=args.rps,
            duration_s=args.seconds,
            seed=args.seed,
            shape=shape_by_name(args.shape),
        )
    )
    print(report.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
    return 1 if report.server_errors or report.transport_errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

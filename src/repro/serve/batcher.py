"""The coalescing request batcher — continuous batching for chain solves.

Concurrent in-flight queries land on one bounded queue; a single
consumer assembles them into batches under a close policy (full at
``max_batch_size`` points, ``max_wait_us`` after the first point
arrived, or *earlier* when the tightest per-request deadline is at
risk), and hands every batch to the runtime: a
:class:`repro.runtime.ThreadTopology` solver thread in single-process
mode, or a shard of a :class:`repro.runtime.ProcessTopology` in sharded
mode.  The solve itself — grouping by spec hash, one stacked
``bind_batch`` plus one batched GTH elimination per group — lives in
:mod:`repro.serve.solvecore` and is identical everywhere.  This is the
continuous-batching shape inference servers use: while one batch solves,
the next accumulates on the queue, so batch sizes grow with load and
per-point cost falls exactly when it matters.

Admission control is the queue bound: :meth:`CoalescingBatcher.submit`
raises :class:`Overloaded` instead of queueing unboundedly, and the HTTP
layer turns that into ``429 Retry-After``.  Shedding at the door keeps
tail latency flat for the requests that are admitted.

Deadline-aware closing: a request may carry a deadline; the batcher
closes the batch early when waiting longer would push the oldest
waiter past ``deadline - margin``, where the margin covers the solve
itself (an EWMA of recent batch solve times plus a configured safety
margin).  Without deadlines the policy degenerates to the original
two-knob close.

Observability: the batcher owns the ``serve.queue.*`` / ``serve.batch.*``
metrics (plus ``serve.shard.<i>.*`` when it fronts a shard), and when
tracing is enabled each solved batch emits a ``serve.batch`` span tree
with per-point queue-wait spans, the batch-assembly span, and the
engine's own ``solve.bind`` / ``solve.gth`` children — shipped home
automatically by the runtime when the solve ran in a shard worker.
"""

from __future__ import annotations

import asyncio
import functools
import time
from typing import Any, Iterable, List, Optional

from .. import obs
from ..core.solvers import DEFAULT_SOLVE_OPTIONS, SolveOptions
from ..models.configurations import Configuration
from ..models.parameters import Parameters
from ..models.specs import spec_for_key
from ..runtime import WorkerTopology, ThreadTopology
from .solvecore import PointTask, make_state, solve_handler, synth_span

__all__ = ["CoalescingBatcher", "Overloaded", "batch_close_at", "synth_span"]

#: Fraction of the previous solve-time EWMA kept per update.
_EWMA_KEEP = 0.8


class Overloaded(Exception):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue full; retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s


def batch_close_at(
    assemble_t0: float,
    max_wait_s: float,
    deadlines: Iterable[Optional[float]],
    margin_s: float,
) -> float:
    """When the batch being assembled must stop waiting for more points.

    The nominal close is ``assemble_t0 + max_wait_s``; any member with a
    deadline pulls it in to ``deadline - margin_s`` so the solve (whose
    expected cost is inside the margin) still lands within budget.  Never
    before ``assemble_t0`` itself — a batch always accepts the point that
    opened it.
    """
    close_at = assemble_t0 + max_wait_s
    for deadline in deadlines:
        if deadline is not None and deadline - margin_s < close_at:
            close_at = deadline - margin_s
    return max(assemble_t0, close_at)


class _Pending:
    """One admitted point: its task, its future, and its deadline."""

    __slots__ = ("task", "future", "deadline_mono")

    def __init__(
        self,
        task: PointTask,
        future: "asyncio.Future[float]",
        deadline_mono: Optional[float],
    ) -> None:
        self.task = task
        self.future = future
        self.deadline_mono = deadline_mono


_STOP = object()


class CoalescingBatcher:
    """Batches concurrent chain-solve queries into grouped stacked solves.

    Args:
        max_batch_size: close a batch at this many points.
        max_wait_us: close a batch this long (microseconds) after its
            first point arrived, even if not full — the latency the
            service is willing to trade for throughput.
        queue_depth: admission bound; :meth:`submit` raises
            :class:`Overloaded` when this many points are already queued.
        retry_after_s: the hint carried by :class:`Overloaded`.
        metrics: registry for ``serve.queue.*`` / ``serve.batch.*``
            instruments (a private one when omitted).
        runtime: the worker topology that solves batches.  When omitted
            the batcher owns a single-thread
            :class:`~repro.runtime.ThreadTopology` (the classic
            single-process solver thread) and manages its lifecycle;
            when provided (sharded mode) the caller owns it.
        shard: pin every batch to this topology slot and emit
            ``serve.shard.<shard>.*`` metrics (sharded mode).
        deadline_margin_us: safety margin subtracted from request
            deadlines on top of the solve-time EWMA when computing the
            early close.
        live: the server's :class:`~repro.obs.live.LiveTelemetry`
            bundle; the batcher feeds it windowed queue-wait and
            per-shard batch observations and deposits the worker spans
            sampled requests shipped back (defaults to the no-op).
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 64,
        max_wait_us: int = 2_000,
        queue_depth: int = 1024,
        retry_after_s: float = 1.0,
        metrics: Optional[obs.Metrics] = None,
        runtime: Optional[WorkerTopology] = None,
        shard: Optional[int] = None,
        deadline_margin_us: int = 500,
        live: Optional[Any] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if deadline_margin_us < 0:
            raise ValueError("deadline_margin_us must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_us / 1e6
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self.deadline_margin_s = deadline_margin_us / 1e6
        self.metrics = metrics if metrics is not None else obs.Metrics()
        self._owns_runtime = runtime is None
        if runtime is None:
            runtime = ThreadTopology(
                solve_handler,
                size=1,
                worker_state=functools.partial(make_state, 0, None, False),
                name="repro-serve-solver",
            )
        self._runtime = runtime
        self._shard = shard
        self._live = live if live is not None else obs.NULL_LIVE
        self._solve_ewma: Optional[float] = None
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=queue_depth)
        self._consumer: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        self._depth_gauge = self.metrics.gauge("serve.queue.depth")
        self._shed = self.metrics.counter("serve.queue.shed")
        self._admitted = self.metrics.counter("serve.queue.admitted")
        self._queue_wait = self.metrics.histogram("serve.queue.wait_s")
        self._batch_size = self.metrics.histogram("serve.batch.size")
        self._batch_groups = self.metrics.histogram("serve.batch.groups")
        self._batch_assemble = self.metrics.histogram("serve.batch.assemble_s")
        self._batch_solve = self.metrics.histogram("serve.batch.solve_s")
        self._batches = self.metrics.counter("serve.batches")
        self._points = self.metrics.counter("serve.points")
        self._closed_early = self.metrics.counter("serve.batch.closed_early")
        self._worker_cache_hits = self.metrics.counter("serve.worker.cache.hits")
        self._worker_cache_misses = self.metrics.counter(
            "serve.worker.cache.misses"
        )
        if shard is not None:
            self._shard_batches = self.metrics.counter(
                f"serve.shard.{shard}.batches"
            )
            self._shard_batch_size = self.metrics.histogram(
                f"serve.shard.{shard}.batch.size"
            )
        else:
            self._shard_batches = None
            self._shard_batch_size = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the consumer task on the running event loop."""
        if self._consumer is None:
            if self._owns_runtime:
                self._runtime.start()
            self._stopping = False
            self._consumer = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-batcher"
            )

    async def stop(self) -> None:
        """Drain the queue, solve what is in flight, stop the consumer.

        Admission closes immediately (further :meth:`submit` calls raise
        :class:`Overloaded`); everything already admitted is answered.
        A shared (caller-owned) runtime is left running.
        """
        if self._consumer is None:
            return
        self._stopping = True
        await self._queue.put(_STOP)
        await self._consumer
        self._consumer = None
        if self._owns_runtime:
            self._runtime.stop(drain=True)

    @property
    def depth(self) -> int:
        """Points currently queued (excluding the batch being solved)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        config: Configuration,
        params: Parameters,
        method: str,
        options: Optional[SolveOptions] = None,
        *,
        deadline_s: Optional[float] = None,
        cache_key: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> "asyncio.Future[float]":
        """Admit one point; returns the future of its MTTDL (hours).

        Args:
            deadline_s: the requester's latency budget from now; the
                batcher closes batches early rather than blow it.
            cache_key: stable result key enabling the worker-local TTL
                cache for this point (None bypasses it).
            trace_id: the sampled-request trace id (None when the
                request was not sampled); rides the task to the worker,
                which captures and ships its spans back.

        Raises:
            Overloaded: the queue is at ``queue_depth`` (or the batcher
                is draining); the caller answers 429 / 503.
        """
        if self._stopping or self._consumer is None:
            raise Overloaded(self.retry_after_s)
        future: "asyncio.Future[float]" = (
            asyncio.get_running_loop().create_future()
        )
        if options is None:
            options = DEFAULT_SOLVE_OPTIONS
        # The spec hash depends only on the configuration family, so the
        # grouping key is known at admission time, before any model or
        # binding environment exists.
        spec_hash = (
            spec_for_key(config.key).spec_hash if method == "analytic" else ""
        )
        task = PointTask(
            config, params, method, options, spec_hash, cache_key, trace_id
        )
        deadline_mono = (
            task.enqueued_mono + deadline_s if deadline_s is not None else None
        )
        pending = _Pending(task, future, deadline_mono)
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self._shed.inc()
            raise Overloaded(self.retry_after_s) from None
        self._admitted.inc()
        self._depth_gauge.set(self._queue.qsize())
        return future

    # ------------------------------------------------------------------ #
    # the consumer
    # ------------------------------------------------------------------ #

    def _margin_s(self) -> float:
        """Early-close margin: expected solve cost plus the safety knob."""
        ewma = self._solve_ewma if self._solve_ewma is not None else 0.0
        return self.deadline_margin_s + ewma

    async def _run(self) -> None:
        while True:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch = [first]
            assemble_t0 = time.monotonic()
            assemble_unix = time.time()
            margin_s = self._margin_s()
            min_deadline = first.deadline_mono
            nominal_close = assemble_t0 + self.max_wait_s
            close_at = batch_close_at(
                assemble_t0, self.max_wait_s, (min_deadline,), margin_s
            )
            saw_stop = False
            timed_out = False
            while len(batch) < self.max_batch_size:
                # Drain synchronously first: under load the queue refills
                # in bursts, and a per-item ``wait_for`` (a Task plus a
                # timer handle each) would dominate the per-point cost.
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = close_at - time.monotonic()
                    if remaining <= 0:
                        timed_out = True
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        timed_out = True
                        break
                if item is _STOP:
                    saw_stop = True
                    break
                batch.append(item)
                if item.deadline_mono is not None and (
                    min_deadline is None or item.deadline_mono < min_deadline
                ):
                    min_deadline = item.deadline_mono
                    close_at = batch_close_at(
                        assemble_t0, self.max_wait_s, (min_deadline,), margin_s
                    )
            self._depth_gauge.set(self._queue.qsize())
            assembled_s = time.monotonic() - assemble_t0
            closed_early = timed_out and close_at < nominal_close
            await self._dispatch(batch, assemble_unix, assembled_s, closed_early)
            if saw_stop:
                break
        # Drain-on-stop: everything admitted before the stop sentinel is
        # still answered, in arrival order.
        leftovers: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                leftovers.append(item)
        for chunk_start in range(0, len(leftovers), self.max_batch_size):
            chunk = leftovers[chunk_start : chunk_start + self.max_batch_size]
            await self._dispatch(chunk, time.time(), 0.0, False)
        self._depth_gauge.set(self._queue.qsize())

    # ------------------------------------------------------------------ #
    # dispatch to the runtime
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self,
        batch: List[_Pending],
        assemble_unix: float,
        assembled_s: float,
        closed_early: bool,
    ) -> None:
        """Hand one assembled batch to the runtime and fan results out."""
        tasks = [pending.task for pending in batch]
        solve_t0 = time.monotonic()
        for pending in batch:
            wait_s = solve_t0 - pending.task.enqueued_mono
            self._queue_wait.observe(wait_s)
            self._live.record_queue_wait(wait_s)
        try:
            outcomes, stats = await self._runtime.asubmit(
                (tasks, assemble_unix, assembled_s), shard=self._shard
            )
        except BaseException as exc:  # noqa: BLE001 - fanned out below
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        solve_wall = time.monotonic() - solve_t0
        if self._solve_ewma is None:
            self._solve_ewma = solve_wall
        else:
            self._solve_ewma = (
                _EWMA_KEEP * self._solve_ewma + (1.0 - _EWMA_KEEP) * solve_wall
            )
        groups = len({(t.method, t.spec_hash, t.options) for t in tasks})
        self._batches.inc()
        self._points.inc(len(batch))
        self._batch_size.observe(len(batch))
        self._batch_groups.observe(groups)
        self._batch_assemble.observe(assembled_s)
        self._batch_solve.observe(solve_wall)
        if closed_early:
            self._closed_early.inc()
        hits = stats.get("cache_hits", 0)
        misses = stats.get("cache_misses", 0)
        if hits:
            self._worker_cache_hits.inc(hits)
        if misses:
            self._worker_cache_misses.inc(misses)
        if self._shard_batches is not None:
            self._shard_batches.inc()
            self._shard_batch_size.observe(len(batch))
        self._live.record_batch(self._shard, len(batch), solve_wall)
        spans = stats.get("spans")
        if spans:
            # Deposit the shipped worker spans once per sampled trace in
            # this batch; the HTTP layer stitches them when the request
            # finishes (the collector clones, so sharing is safe).
            for trace_id in {t.trace_id for t in tasks if t.trace_id}:
                self._live.collect(trace_id, spans)
        for pending, outcome in zip(batch, outcomes):
            if pending.future.done():
                continue
            if isinstance(outcome, BaseException):
                pending.future.set_exception(outcome)
            else:
                pending.future.set_result(outcome)

"""The coalescing request batcher — continuous batching for chain solves.

Concurrent in-flight queries land on one bounded queue; a single
consumer assembles them into batches under a two-knob policy (close the
batch at ``max_batch_size`` points, or ``max_wait_us`` after its first
point arrived, whichever comes first), groups each batch by spec hash,
and hands every group to :func:`repro.engine.solve_grouped` — one
stacked ``bind_batch`` plus one batched GTH elimination per group.  This
is the continuous-batching shape inference servers use: while one batch
solves on the solver thread, the next accumulates on the queue, so batch
sizes grow with load and per-point cost falls exactly when it matters.

Admission control is the queue bound: :meth:`CoalescingBatcher.submit`
raises :class:`Overloaded` instead of queueing unboundedly, and the HTTP
layer turns that into ``429 Retry-After``.  Shedding at the door keeps
tail latency flat for the requests that are admitted.

Observability: the batcher owns the ``serve.queue.*`` / ``serve.batch.*``
metrics, and when tracing is enabled each solved batch emits a
``serve.batch`` span tree with per-point queue-wait spans (synthesized
from enqueue/dequeue stamps, since a span cannot stay open across the
event loop's task switches), the batch-assembly span, and the engine's
own ``solve.bind`` / ``solve.gth`` children.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.solvers import (
    DEFAULT_SOLVE_OPTIONS,
    SolveOptions,
    SolveRequest,
)
from ..core.solvers import solve as _core_solve
from ..engine.solver import (
    SolveContext,
    closed_form_mttdl,
    prepare_point,
    solve_grouped,
)
from ..models.configurations import Configuration
from ..models.parameters import Parameters
from ..models.specs import spec_for_key

__all__ = ["CoalescingBatcher", "Overloaded", "synth_span"]

#: Synthetic-span id sequence.  Real tracer ids are ``"<pid hex>-<int>"``;
#: the ``q`` infix keeps these from ever colliding with them.
_SYNTH_SEQ = itertools.count(1)


def synth_span(
    name: str,
    start_unix: float,
    wall_s: float,
    parent_id: Optional[str] = None,
    **attrs: Any,
) -> Dict[str, Any]:
    """A finished-span dict for a phase that cannot hold a live span
    open (it crosses task switches or the event loop's task switches);
    feed the result to :func:`repro.obs.adopt_spans`, which grafts
    parentless spans under the adopting thread's current span."""
    return {
        "type": "span",
        "span_id": f"{os.getpid():x}-q{next(_SYNTH_SEQ)}",
        "parent_id": parent_id,
        "name": name,
        "start_unix": start_unix,
        "wall_s": max(0.0, wall_s),
        "cpu_s": 0.0,
        "pid": os.getpid(),
        "attrs": attrs,
    }


class Overloaded(Exception):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue full; retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s


class _Pending:
    """One admitted point: its task, its future, and its queue stamps."""

    __slots__ = (
        "config",
        "params",
        "method",
        "options",
        "spec_hash",
        "future",
        "enqueued_mono",
        "enqueued_unix",
    )

    def __init__(
        self,
        config: Configuration,
        params: Parameters,
        method: str,
        options: SolveOptions,
        future: "asyncio.Future[float]",
    ) -> None:
        self.config = config
        self.params = params
        self.method = method
        self.options = options
        # The spec hash depends only on the configuration family, so the
        # grouping key is known at admission time, before any model or
        # binding environment exists.
        self.spec_hash = (
            spec_for_key(config.key).spec_hash if method == "analytic" else ""
        )
        self.future = future
        self.enqueued_mono = time.monotonic()
        self.enqueued_unix = time.time()


_STOP = object()


class CoalescingBatcher:
    """Batches concurrent chain-solve queries into grouped stacked solves.

    Args:
        max_batch_size: close a batch at this many points.
        max_wait_us: close a batch this long (microseconds) after its
            first point arrived, even if not full — the latency the
            service is willing to trade for throughput.
        queue_depth: admission bound; :meth:`submit` raises
            :class:`Overloaded` when this many points are already queued.
        retry_after_s: the hint carried by :class:`Overloaded`.
        metrics: registry for ``serve.queue.*`` / ``serve.batch.*``
            instruments (a private one when omitted).

    The solver runs on a dedicated single worker thread: chain solves
    are milliseconds, so one thread keeps the math off the event loop
    without cross-thread contention on the solve context.
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 64,
        max_wait_us: int = 2_000,
        queue_depth: int = 1024,
        retry_after_s: float = 1.0,
        metrics: Optional[obs.Metrics] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_us / 1e6
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self.ctx = SolveContext()
        self.metrics = metrics if metrics is not None else obs.Metrics()
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-solver"
        )
        self._consumer: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        self._depth_gauge = self.metrics.gauge("serve.queue.depth")
        self._shed = self.metrics.counter("serve.queue.shed")
        self._admitted = self.metrics.counter("serve.queue.admitted")
        self._queue_wait = self.metrics.histogram("serve.queue.wait_s")
        self._batch_size = self.metrics.histogram("serve.batch.size")
        self._batch_groups = self.metrics.histogram("serve.batch.groups")
        self._batch_assemble = self.metrics.histogram("serve.batch.assemble_s")
        self._batch_solve = self.metrics.histogram("serve.batch.solve_s")
        self._batches = self.metrics.counter("serve.batches")
        self._points = self.metrics.counter("serve.points")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the consumer task on the running event loop."""
        if self._consumer is None:
            self._stopping = False
            self._consumer = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-batcher"
            )

    async def stop(self) -> None:
        """Drain the queue, solve what is in flight, stop the consumer.

        Admission closes immediately (further :meth:`submit` calls raise
        :class:`Overloaded`); everything already admitted is answered.
        """
        if self._consumer is None:
            return
        self._stopping = True
        await self._queue.put(_STOP)
        await self._consumer
        self._consumer = None
        self._executor.shutdown(wait=True)

    @property
    def depth(self) -> int:
        """Points currently queued (excluding the batch being solved)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        config: Configuration,
        params: Parameters,
        method: str,
        options: Optional[SolveOptions] = None,
    ) -> "asyncio.Future[float]":
        """Admit one point; returns the future of its MTTDL (hours).

        Raises:
            Overloaded: the queue is at ``queue_depth`` (or the batcher
                is draining); the caller answers 429 / 503.
        """
        if self._stopping or self._consumer is None:
            raise Overloaded(self.retry_after_s)
        future: "asyncio.Future[float]" = (
            asyncio.get_running_loop().create_future()
        )
        if options is None:
            options = DEFAULT_SOLVE_OPTIONS
        pending = _Pending(config, params, method, options, future)
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self._shed.inc()
            raise Overloaded(self.retry_after_s) from None
        self._admitted.inc()
        self._depth_gauge.set(self._queue.qsize())
        return future

    # ------------------------------------------------------------------ #
    # the consumer
    # ------------------------------------------------------------------ #

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch = [first]
            assemble_t0 = time.monotonic()
            assemble_unix = time.time()
            deadline = assemble_t0 + self.max_wait_s
            saw_stop = False
            while len(batch) < self.max_batch_size:
                # Drain synchronously first: under load the queue refills
                # in bursts, and a per-item ``wait_for`` (a Task plus a
                # timer handle each) would dominate the per-point cost.
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if item is _STOP:
                    saw_stop = True
                    break
                batch.append(item)
            self._depth_gauge.set(self._queue.qsize())
            assembled_s = time.monotonic() - assemble_t0
            try:
                results = await loop.run_in_executor(
                    self._executor,
                    self._solve_batch,
                    batch,
                    assemble_unix,
                    assembled_s,
                )
            except BaseException as exc:  # noqa: BLE001 - fanned out below
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            else:
                for pending, outcome in zip(batch, results):
                    if pending.future.done():
                        continue
                    if isinstance(outcome, BaseException):
                        pending.future.set_exception(outcome)
                    else:
                        pending.future.set_result(outcome)
            if saw_stop:
                break
        # Drain-on-stop: everything admitted before the stop sentinel is
        # still answered, in arrival order.
        leftovers: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                leftovers.append(item)
        for chunk_start in range(0, len(leftovers), self.max_batch_size):
            chunk = leftovers[chunk_start : chunk_start + self.max_batch_size]
            try:
                results = await loop.run_in_executor(
                    self._executor, self._solve_batch, chunk, time.time(), 0.0
                )
            except BaseException as exc:  # noqa: BLE001
                for pending in chunk:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            else:
                for pending, outcome in zip(chunk, results):
                    if pending.future.done():
                        continue
                    if isinstance(outcome, BaseException):
                        pending.future.set_exception(outcome)
                    else:
                        pending.future.set_result(outcome)
        self._depth_gauge.set(self._queue.qsize())

    # ------------------------------------------------------------------ #
    # the solver (runs on the dedicated worker thread)
    # ------------------------------------------------------------------ #

    def _solve_batch(
        self,
        batch: Sequence[_Pending],
        assemble_unix: float,
        assembled_s: float,
    ) -> List[Any]:
        """Solve one assembled batch; returns per-point floats (or the
        exception that point's group raised, position-matched)."""
        solve_t0 = time.monotonic()
        # Grouping includes the (hashable, frozen) solve options: points
        # asking for different backends or tolerances never share a
        # stacked solve.
        groups: Dict[Tuple[str, str, SolveOptions], List[int]] = {}
        for i, pending in enumerate(batch):
            groups.setdefault(
                (pending.method, pending.spec_hash, pending.options), []
            ).append(i)
        results: List[Any] = [None] * len(batch)
        with obs.span(
            "serve.batch", size=len(batch), groups=len(groups)
        ) as batch_span:
            if obs.tracing_active():
                dequeued = time.time()
                synthetic = [
                    synth_span(
                        "serve.batch.assemble",
                        assemble_unix,
                        assembled_s,
                        points=len(batch),
                    )
                ]
                synthetic.extend(
                    synth_span(
                        "serve.queue.wait",
                        p.enqueued_unix,
                        dequeued - p.enqueued_unix,
                        config=p.config.key,
                    )
                    for p in batch
                )
                obs.adopt_spans(synthetic, batch_span.span_id)
            for (method, spec_hash, options), members in groups.items():
                try:
                    if method == "analytic":
                        compiled = None
                        envs = []
                        for i in members:
                            c, env = prepare_point(
                                batch[i].config,
                                batch[i].params,
                                self.ctx,
                                options.rates_method,
                            )
                            compiled = c
                            envs.append(env)
                        with obs.span(
                            "serve.batch.solve",
                            method=method,
                            spec=spec_hash[:12],
                            points=len(members),
                        ):
                            solved = solve_grouped(compiled, envs, options)
                    else:
                        cf_options = (
                            options
                            if options.backend == "closed_form"
                            else options.replace(backend="closed_form")
                        )
                        with obs.span(
                            "serve.batch.solve",
                            method=method,
                            points=len(members),
                        ):
                            solved = list(
                                _core_solve(
                                    SolveRequest(
                                        closed_form=lambda members=members: [
                                            closed_form_mttdl(
                                                batch[i].config,
                                                batch[i].params,
                                                self.ctx,
                                            )
                                            for i in members
                                        ],
                                        query="mttdl",
                                        options=cf_options,
                                    )
                                ).values
                            )
                except Exception as exc:  # noqa: BLE001 - per-group isolation
                    for i in members:
                        results[i] = exc
                else:
                    for i, mttdl in zip(members, solved):
                        results[i] = mttdl
        now = time.monotonic()
        for pending in batch:
            self._queue_wait.observe(solve_t0 - pending.enqueued_mono)
        self._batches.inc()
        self._points.inc(len(batch))
        self._batch_size.observe(len(batch))
        self._batch_groups.observe(len(groups))
        self._batch_assemble.observe(assembled_s)
        self._batch_solve.observe(now - solve_t0)
        return results

"""Request/response schemas for the serving endpoints.

Everything the HTTP layer accepts is validated here, eagerly, into typed
query objects — a request that parses is a request the solver can
answer, so admission control and batching never see malformed work.
Validation failures raise :class:`ProtocolError`, which the HTTP layer
maps to a 400 with the message in the body.

The JSON shapes are documented in ``docs/serving.md``; briefly::

    POST /v1/evaluate
    {"config": "ft2_raid5", "method": "analytic",
     "params": {"node_set_size": 128}}

    POST /v1/evaluate          # multi-point
    {"points": [{"config": "ft1_noraid"}, {"config": "ft3_raid6"}]}

    POST /v1/sweep
    {"configs": ["ft1_raid5", "ft2_raid5"],
     "axis": {"name": "drive_mttf_hours", "values": [1e5, 3e5, 7.5e5]},
     "method": "analytic"}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.solvers import DEFAULT_SOLVE_OPTIONS, SolveOptions, SolverError
from ..engine.keys import point_key
from ..engine.solver import normalize_method
from ..models.configurations import Configuration
from ..models.metrics import ReliabilityResult
from ..models.parameters import ParameterError, Parameters

__all__ = [
    "MAX_ADVISE_CANDIDATES_PER_REQUEST",
    "MAX_POINTS_PER_REQUEST",
    "AdviseQuery",
    "PointQuery",
    "ProtocolError",
    "SweepQuery",
    "params_with_overrides",
    "parse_advise_body",
    "parse_evaluate_body",
    "parse_sweep_body",
    "point_response",
]

#: Cap on points per /v1/evaluate call — a single request must not be
#: able to monopolize the batcher for seconds.
MAX_POINTS_PER_REQUEST = 256

#: Cap on Monte-Carlo replicas per served point (simulation is the one
#: method whose cost the client controls directly).
MAX_REPLICAS_PER_POINT = 10_000

#: Cap on axis values per /v1/sweep call.
MAX_SWEEP_VALUES = 512

#: Cap on a /v1/advise search's grid cardinality — tighter than the
#: library's own :data:`repro.advise.MAX_ADVISE_CANDIDATES` because an
#: online search holds the aux lane for its whole duration.
MAX_ADVISE_CANDIDATES_PER_REQUEST = 2048


class ProtocolError(ValueError):
    """A malformed request body; the HTTP layer answers 400."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def params_with_overrides(
    base: Parameters, overrides: Optional[Mapping[str, Any]]
) -> Parameters:
    """``base`` with a JSON object of field overrides applied.

    Values coerce to the field's current type (ints stay ints), matching
    the CLIs' ``--set FIELD=VALUE`` semantics; unknown fields and
    physically-meaningless values raise :class:`ProtocolError`.
    """
    if overrides is None:
        return base
    _require(isinstance(overrides, Mapping), '"params" must be an object')
    changes: Dict[str, Any] = {}
    for field, raw in overrides.items():
        try:
            current = getattr(base, field)
        except AttributeError:
            raise ProtocolError(f"unknown parameter field {field!r}") from None
        if isinstance(current, (int, float)) and not isinstance(current, bool):
            _require(
                isinstance(raw, (int, float)) and not isinstance(raw, bool),
                f"parameter {field!r} must be a number, got {raw!r}",
            )
            changes[field] = type(current)(raw)
        else:  # pragma: no cover - Parameters is all-numeric today
            changes[field] = raw
    try:
        return base.replace(**changes)
    except (ParameterError, TypeError) as exc:
        raise ProtocolError(str(exc)) from None


@dataclass(frozen=True)
class PointQuery:
    """One validated reliability query.

    Attributes:
        config: the parsed configuration.
        params: the full parameter set (baseline + request overrides).
        method: normalized method name.
        options: solver options (:class:`~repro.core.solvers.SolveOptions`)
            applied to the chain solve; defaults add no cache-key
            material, so pre-options clients keep their keys.
        replicas / seed: Monte-Carlo controls (``monte_carlo`` only).
        recovery_hours: when set, the response also carries the
            steady-state availability profile at this restore time.
        deadline_ms: the requester's latency budget; the batcher closes
            batches early rather than blow it.  Excluded from the cache
            key — a deadline changes scheduling, never the answer.
        trace: force this request into the trace sampler (head-based
            sampling normally decides; ``"trace": true`` pins the
            decision for debugging).  Excluded from the cache key —
            sampling changes what is recorded, never the answer.
    """

    config: Configuration
    params: Parameters
    method: str = "analytic"
    options: SolveOptions = field(default=DEFAULT_SOLVE_OPTIONS)
    replicas: int = 200
    seed: int = 0
    recovery_hours: Optional[float] = None
    deadline_ms: Optional[float] = None
    trace: bool = False

    def cache_key(self) -> str:
        """The stable result-cache key for this query — the engine's
        config+params point key, extended with the served extras."""
        extra: Dict[str, Any] = {}
        if self.method == "monte_carlo":
            extra["replicas"] = self.replicas
            extra["seed"] = self.seed
        if self.recovery_hours is not None:
            extra["recovery_hours"] = self.recovery_hours
        if not self.options.is_default():
            extra["solve_options"] = self.options.cache_key()
        return point_key(self.config, self.params, self.method, extra or None)


def _parse_point(obj: Any, base: Parameters) -> PointQuery:
    _require(isinstance(obj, Mapping), "each point must be an object")
    unknown = set(obj) - {
        "config",
        "method",
        "options",
        "params",
        "replicas",
        "seed",
        "availability",
        "deadline_ms",
        "trace",
    }
    _require(not unknown, f"unknown point field(s): {sorted(unknown)}")
    key = obj.get("config")
    _require(
        isinstance(key, str), 'each point needs a "config" key, e.g. "ft2_raid5"'
    )
    try:
        config = Configuration.from_key(key)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    method = obj.get("method", "analytic")
    _require(isinstance(method, str), '"method" must be a string')
    try:
        method = normalize_method(method)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    params = params_with_overrides(base, obj.get("params"))
    raw_options = obj.get("options")
    options = DEFAULT_SOLVE_OPTIONS
    if raw_options is not None:
        _require(
            isinstance(raw_options, Mapping), '"options" must be an object'
        )
        try:
            options = SolveOptions.from_dict(raw_options)
        except (SolverError, ValueError) as exc:
            raise ProtocolError(f'bad "options": {exc}') from None
        _require(
            options.backend != "monte_carlo",
            'select monte_carlo with "method", not "options.backend"',
        )
    replicas = obj.get("replicas", 200)
    seed = obj.get("seed", 0)
    _require(
        isinstance(replicas, int)
        and not isinstance(replicas, bool)
        and 1 <= replicas <= MAX_REPLICAS_PER_POINT,
        f'"replicas" must be an integer in [1, {MAX_REPLICAS_PER_POINT}]',
    )
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        '"seed" must be an integer',
    )
    recovery_hours: Optional[float] = None
    availability = obj.get("availability")
    if availability is not None and availability is not False:
        if availability is True:
            availability = {}
        _require(
            isinstance(availability, Mapping),
            '"availability" must be true or an object',
        )
        raw = availability.get("recovery_hours", 168.0)
        _require(
            isinstance(raw, (int, float))
            and not isinstance(raw, bool)
            and raw > 0,
            '"availability.recovery_hours" must be a positive number',
        )
        recovery_hours = float(raw)
        _require(
            method != "monte_carlo",
            "availability is defined for the chain methods, not monte_carlo",
        )
    deadline_ms: Optional[float] = None
    raw_deadline = obj.get("deadline_ms")
    if raw_deadline is not None:
        _require(
            isinstance(raw_deadline, (int, float))
            and not isinstance(raw_deadline, bool)
            and raw_deadline > 0,
            '"deadline_ms" must be a positive number',
        )
        deadline_ms = float(raw_deadline)
    trace = obj.get("trace", False)
    _require(isinstance(trace, bool), '"trace" must be a boolean')
    return PointQuery(
        config=config,
        params=params,
        method=method,
        options=options,
        replicas=replicas,
        seed=seed,
        recovery_hours=recovery_hours,
        deadline_ms=deadline_ms,
        trace=trace,
    )


def parse_evaluate_body(body: Any, base: Parameters) -> List[PointQuery]:
    """Validate a ``/v1/evaluate`` body into point queries.

    Accepts a single point object or ``{"points": [...]}``.
    """
    _require(isinstance(body, Mapping), "request body must be a JSON object")
    if "points" in body:
        points = body["points"]
        _require(
            isinstance(points, list) and points,
            '"points" must be a non-empty array',
        )
        _require(
            len(points) <= MAX_POINTS_PER_REQUEST,
            f"at most {MAX_POINTS_PER_REQUEST} points per request",
        )
        extra = set(body) - {"points"}
        _require(not extra, f"unknown field(s): {sorted(extra)}")
        return [_parse_point(p, base) for p in points]
    return [_parse_point(body, base)]


@dataclass(frozen=True)
class SweepQuery:
    """A validated ``/v1/sweep`` request: one axis over many configs."""

    configs: Tuple[Configuration, ...]
    axis_name: str
    values: Tuple[float, ...]
    method: str = "analytic"


def parse_sweep_body(body: Any, base: Parameters) -> SweepQuery:
    """Validate a ``/v1/sweep`` body."""
    _require(isinstance(body, Mapping), "request body must be a JSON object")
    unknown = set(body) - {"configs", "axis", "method"}
    _require(not unknown, f"unknown field(s): {sorted(unknown)}")
    raw_configs = body.get("configs")
    _require(
        isinstance(raw_configs, list) and raw_configs,
        '"configs" must be a non-empty array of configuration keys',
    )
    configs = []
    for key in raw_configs:
        _require(isinstance(key, str), "configuration keys must be strings")
        try:
            configs.append(Configuration.from_key(key))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
    axis = body.get("axis")
    _require(isinstance(axis, Mapping), '"axis" must be an object')
    _require(
        set(axis) <= {"name", "values"},
        f'unknown axis field(s): {sorted(set(axis) - {"name", "values"})}',
    )
    name = axis.get("name")
    _require(isinstance(name, str), '"axis.name" must be a parameter field')
    current = getattr(base, name, None)
    _require(
        isinstance(current, (int, float)) and not isinstance(current, bool),
        f"unknown sweep axis {name!r}",
    )
    values = axis.get("values")
    _require(
        isinstance(values, list)
        and values
        and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ),
        '"axis.values" must be a non-empty array of numbers',
    )
    _require(
        len(values) <= MAX_SWEEP_VALUES,
        f"at most {MAX_SWEEP_VALUES} axis values per sweep",
    )
    method = body.get("method", "analytic")
    _require(isinstance(method, str), '"method" must be a string')
    try:
        method = normalize_method(method)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    _require(
        method != "monte_carlo",
        "sweeps run the chain methods; use /v1/evaluate for monte_carlo",
    )
    # Validate every swept parameter set now: a sweep must be fully
    # admissible before any of it is evaluated.
    for v in values:
        params_with_overrides(base, {name: v})
    return SweepQuery(
        configs=tuple(configs),
        axis_name=name,
        values=tuple(float(v) for v in values),
        method=method,
    )


@dataclass(frozen=True)
class AdviseQuery:
    """A validated ``/v1/advise`` request."""

    request: "AdviseRequest"  # noqa: F821 - imported lazily below


def parse_advise_body(body: Any, base: Parameters) -> AdviseQuery:
    """Validate a ``/v1/advise`` body into an
    :class:`repro.advise.AdviseRequest`.

    The body is the request's JSON form (see ``docs/advise.md``)::

        {"space": {"internal": ["none", "raid5"], "fault_tolerance": [1, 2],
                   "axes": {"redundancy_set_size": [6, 8, 12]}},
         "cost_model": {"drive_cost_per_year": 120},
         "max_annual_cost": 2.5e6, "seed": 0}

    Validation failures — including a space axis that does not resolve
    against the server's base parameters — raise :class:`ProtocolError`
    with the offending axis or field named.
    """
    from ..advise import AdviseError, AdviseRequest
    from ..advise.cost import CostError
    from ..models.space import SpaceError

    _require(isinstance(body, Mapping), "request body must be a JSON object")
    try:
        request = AdviseRequest.from_dict(body)
        request.space.validate(base)
    except (AdviseError, CostError, SpaceError) as exc:
        raise ProtocolError(str(exc)) from None
    _require(
        request.space.size() <= MAX_ADVISE_CANDIDATES_PER_REQUEST,
        f"search space has {request.space.size()} candidates; "
        f"at most {MAX_ADVISE_CANDIDATES_PER_REQUEST} per online request "
        "(use the repro-advise CLI for larger searches)",
    )
    return AdviseQuery(request=request)


def point_response(
    query: PointQuery,
    result: ReliabilityResult,
    *,
    cached: bool,
    availability: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """The JSON-ready response object for one answered point."""
    out: Dict[str, Any] = {
        "config": query.config.key,
        "method": query.method,
        "mttdl_hours": result.mttdl_hours,
        "mttdl_years": result.mttdl_years,
        "events_per_pb_year": result.events_per_pb_year,
        "meets_target": result.meets_target,
        "params_key": query.params.cache_key(),
        "cached": cached,
    }
    if query.method == "monte_carlo":
        out["replicas"] = query.replicas
        out["seed"] = query.seed
    if availability is not None:
        out["availability"] = availability
    return out

"""repro.serve — the online reliability-query service.

The batch pipeline answers "what does the whole design space look
like?"; this package answers "what is the MTTDL of *this* configuration
at *these* parameters, right now?" at interactive latency, over plain
JSON-over-HTTP with nothing beyond the standard library.

The moving parts:

* :class:`~repro.serve.service.ReliabilityService` — the front door:
  TTL'd LRU result cache (keyed by the engine's stable config+params
  hash), in-flight request coalescing, and admission control.
* :class:`~repro.serve.batcher.CoalescingBatcher` — the continuous
  batcher: concurrent in-flight points group by spec hash, bind in one
  :meth:`CompiledChain.bind_batch` pass and solve in one stacked GTH
  elimination, exactly the shape inference servers use.
* :class:`~repro.serve.http.HttpServer` — a stdlib-asyncio HTTP/1.1
  front end exposing ``/v1/evaluate``, ``/v1/sweep``, ``/healthz`` and
  ``/metricsz``.
* :mod:`repro.serve.shard` + ``ServeConfig(workers=N)`` — the sharded
  topology: N forked solver workers on :mod:`repro.runtime`, requests
  routed by spec hash so each worker owns its shard's compiled chains
  and TTL cache, with crash-restart and 503-retry semantics.
* :mod:`repro.serve.loadgen` — an open-loop load generator with
  realistic traffic shapes (diurnal, bursty, hot-key skew) reporting
  p50/p95/p99 latency and achieved throughput.

Every answer is bitwise identical to the corresponding direct
:func:`repro.evaluate` call; ``docs/serving.md`` documents the endpoint
schemas, the batching policy knobs and the overload semantics.
"""

from .batcher import CoalescingBatcher, Overloaded
from .http import HttpServer, run_server, serving
from .loadgen import LoadReport, RequestMix, TrafficShape, run_loadgen, shape_by_name
from .protocol import PointQuery, ProtocolError, SweepQuery
from .service import ReliabilityService, ServeConfig
from .shard import shard_index
from .ttl_cache import TTLCache

__all__ = [
    "CoalescingBatcher",
    "HttpServer",
    "LoadReport",
    "Overloaded",
    "PointQuery",
    "ProtocolError",
    "ReliabilityService",
    "RequestMix",
    "ServeConfig",
    "SweepQuery",
    "TTLCache",
    "TrafficShape",
    "run_loadgen",
    "run_server",
    "serving",
    "shape_by_name",
    "shard_index",
]

"""``python -m repro.serve`` — same entry point as ``repro-serve``."""

import sys

from .app import main

sys.exit(main())

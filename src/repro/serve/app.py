"""The ``repro-serve`` console entry point.

Binds the asyncio HTTP front end over a :class:`ReliabilityService` and
runs until SIGTERM/SIGINT, draining gracefully.  All batching,
admission-control and caching knobs are flags; the observability flags
(``--trace`` / ``--metrics`` / ``--report``) are the same ones every
other CLI takes and capture the full ``serve.*`` span taxonomy plus the
metrics registry (see ``docs/serving.md`` and ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Optional, Sequence

from ..cli_common import (
    add_observability_arguments,
    apply_param_overrides,
    observed_session,
)
from ..models.parameters import Parameters
from .http import run_server
from .service import ServeConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve online reliability queries (MTTDL, availability, "
            "sweeps) over JSON-over-HTTP with coalesced batched solves."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    batching = parser.add_argument_group("batching policy")
    batching.add_argument(
        "--max-batch-size",
        type=int,
        default=64,
        metavar="N",
        help="close a solve batch at N points (default 64)",
    )
    batching.add_argument(
        "--max-wait-us",
        type=int,
        default=2_000,
        metavar="US",
        help="close a solve batch US microseconds after its first point "
        "(default 2000)",
    )
    batching.add_argument(
        "--deadline-margin-us",
        type=int,
        default=500,
        metavar="US",
        help="close a batch early when a member's deadline is within this "
        "margin plus the solve-time estimate (default 500)",
    )
    batching.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline applied to requests that do not declare one "
        "(default: none)",
    )
    topology = parser.add_argument_group("worker topology")
    topology.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard solves across N forked worker processes routed by "
        "spec hash (0 = single-process; default 0)",
    )
    admission = parser.add_argument_group("admission control")
    admission.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        metavar="N",
        help="shed with 429 beyond N queued points (default 1024)",
    )
    admission.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="S",
        help="Retry-After hint (seconds) sent with 429 (default 1)",
    )
    admission.add_argument(
        "--aux-depth",
        type=int,
        default=8,
        metavar="N",
        help="shed auxiliary work (Monte Carlo, availability, sweeps, "
        "advise) with 429 beyond N queued items (default 8)",
    )
    admission.add_argument(
        "--advise-depth",
        type=int,
        default=2,
        metavar="N",
        help="shed /v1/advise searches with 429 beyond N concurrent "
        "searches (inside --aux-depth; default 2)",
    )
    cache = parser.add_argument_group("result cache")
    cache.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="N",
        help="result-cache entries (0 disables; default 4096)",
    )
    cache.add_argument(
        "--cache-ttl",
        type=float,
        default=300.0,
        metavar="S",
        help="result-cache TTL in seconds (0 = no expiry; default 300)",
    )
    live = parser.add_argument_group("live telemetry")
    live.add_argument(
        "--no-live-metrics",
        action="store_true",
        help="disable windowed latency/SLO instruments (they are on by "
        "default; disabling removes the serve.live.* families and the "
        "slo block from /healthz)",
    )
    live.add_argument(
        "--slo-target",
        type=float,
        default=0.99,
        metavar="FRAC",
        help="good-request SLO target used for burn-rate math "
        "(default 0.99)",
    )
    live.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="head-based trace sampling probability in [0, 1]; each "
        "sampled request yields one stitched span tree (default 0 = off)",
    )
    live.add_argument(
        "--trace-sample-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the sampling decision stream (default 0)",
    )
    live.add_argument(
        "--trace-sample-path",
        default=None,
        metavar="FILE",
        help="rotating JSONL file for sampled span trees (default "
        "repro-serve-samples.jsonl when sampling is on)",
    )
    live.add_argument(
        "--flight-recorder",
        default=None,
        metavar="DIR",
        help="keep a ring of recent request summaries and dump it to DIR "
        "on worker crashes and 5xx responses (default: off)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a baseline parameter field (repeatable); request "
        "bodies override on top of this baseline",
    )
    add_observability_arguments(parser)
    return parser


def config_from_args(args: argparse.Namespace, error) -> ServeConfig:
    params = apply_param_overrides(Parameters.baseline(), args.set, error)
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        error("--trace-sample-rate must be in [0, 1]")
    if not 0.0 < args.slo_target < 1.0:
        error("--slo-target must be in (0, 1)")
    return ServeConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        queue_depth=args.queue_depth,
        retry_after_s=args.retry_after,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl if args.cache_ttl > 0 else None,
        aux_depth=args.aux_depth,
        advise_depth=args.advise_depth,
        base_params=params,
        workers=args.workers,
        deadline_margin_us=args.deadline_margin_us,
        default_deadline_ms=args.default_deadline_ms,
        live_metrics=not args.no_live_metrics,
        slo_target=args.slo_target,
        trace_sample_rate=args.trace_sample_rate,
        trace_sample_seed=args.trace_sample_seed,
        trace_sample_path=args.trace_sample_path,
        flight_dir=args.flight_recorder,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args, parser.error)
    except ValueError as exc:
        parser.error(str(exc))

    def announce(server) -> None:
        print(
            f"repro-serve listening on http://{server.host}:{server.port} "
            f"(batch<= {config.max_batch_size}, wait {config.max_wait_us}us, "
            f"queue {config.queue_depth}, workers {config.workers})",
            file=sys.stderr,
            flush=True,
        )

    session = observed_session(args, "repro-serve")
    with session if session is not None else contextlib.nullcontext():
        try:
            asyncio.run(run_server(config, ready=announce))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The ``repro-serve`` console entry point.

Binds the asyncio HTTP front end over a :class:`ReliabilityService` and
runs until SIGTERM/SIGINT, draining gracefully.  All batching,
admission-control and caching knobs are flags; the observability flags
(``--trace`` / ``--metrics`` / ``--report``) are the same ones every
other CLI takes and capture the full ``serve.*`` span taxonomy plus the
metrics registry (see ``docs/serving.md`` and ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Optional, Sequence

from ..cli_common import (
    add_observability_arguments,
    apply_param_overrides,
    observed_session,
)
from ..models.parameters import Parameters
from .http import run_server
from .service import ServeConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve online reliability queries (MTTDL, availability, "
            "sweeps) over JSON-over-HTTP with coalesced batched solves."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    batching = parser.add_argument_group("batching policy")
    batching.add_argument(
        "--max-batch-size",
        type=int,
        default=64,
        metavar="N",
        help="close a solve batch at N points (default 64)",
    )
    batching.add_argument(
        "--max-wait-us",
        type=int,
        default=2_000,
        metavar="US",
        help="close a solve batch US microseconds after its first point "
        "(default 2000)",
    )
    batching.add_argument(
        "--deadline-margin-us",
        type=int,
        default=500,
        metavar="US",
        help="close a batch early when a member's deadline is within this "
        "margin plus the solve-time estimate (default 500)",
    )
    batching.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline applied to requests that do not declare one "
        "(default: none)",
    )
    topology = parser.add_argument_group("worker topology")
    topology.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard solves across N forked worker processes routed by "
        "spec hash (0 = single-process; default 0)",
    )
    admission = parser.add_argument_group("admission control")
    admission.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        metavar="N",
        help="shed with 429 beyond N queued points (default 1024)",
    )
    admission.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="S",
        help="Retry-After hint (seconds) sent with 429 (default 1)",
    )
    cache = parser.add_argument_group("result cache")
    cache.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="N",
        help="result-cache entries (0 disables; default 4096)",
    )
    cache.add_argument(
        "--cache-ttl",
        type=float,
        default=300.0,
        metavar="S",
        help="result-cache TTL in seconds (0 = no expiry; default 300)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a baseline parameter field (repeatable); request "
        "bodies override on top of this baseline",
    )
    add_observability_arguments(parser)
    return parser


def config_from_args(args: argparse.Namespace, error) -> ServeConfig:
    params = apply_param_overrides(Parameters.baseline(), args.set, error)
    return ServeConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_us=args.max_wait_us,
        queue_depth=args.queue_depth,
        retry_after_s=args.retry_after,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl if args.cache_ttl > 0 else None,
        base_params=params,
        workers=args.workers,
        deadline_margin_us=args.deadline_margin_us,
        default_deadline_ms=args.default_deadline_ms,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args, parser.error)
    except ValueError as exc:
        parser.error(str(exc))

    def announce(server) -> None:
        print(
            f"repro-serve listening on http://{server.host}:{server.port} "
            f"(batch<= {config.max_batch_size}, wait {config.max_wait_us}us, "
            f"queue {config.queue_depth}, workers {config.workers})",
            file=sys.stderr,
            flush=True,
        )

    session = observed_session(args, "repro-serve")
    with session if session is not None else contextlib.nullcontext():
        try:
            asyncio.run(run_server(config, ready=announce))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""A TTL'd LRU result cache for served answers.

Keys are the engine's stable config+params hashes
(:meth:`PointQuery.cache_key`), values are the finished JSON-ready
response dicts, so a hit skips parsing nothing and solving everything.
Entries expire ``ttl_s`` seconds after they were stored (results are
deterministic, so the TTL bounds staleness across deploys rather than
correctness) and the least-recently-used entry falls out beyond
``maxsize``.

The cache is synchronous and unlocked by design: the service touches it
only from the event-loop thread.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Optional

from ..obs import Metrics

__all__ = ["TTLCache"]


class TTLCache:
    """An LRU mapping with per-entry expiry and obs counters.

    Args:
        maxsize: entry cap; 0 disables the cache entirely (every get
            misses, every put is dropped).
        ttl_s: seconds an entry stays servable; ``None`` means no expiry.
        metrics: registry for the ``serve.cache.*`` counters (a private
            one when omitted).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        maxsize: int = 4096,
        ttl_s: Optional[float] = 300.0,
        *,
        metrics: Optional[Metrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None for no expiry)")
        self.maxsize = maxsize
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self.metrics = metrics if metrics is not None else Metrics()
        self._hits = self.metrics.counter("serve.cache.hits")
        self._misses = self.metrics.counter("serve.cache.misses")
        self._expired = self.metrics.counter("serve.cache.expired")
        self._evicted = self.metrics.counter("serve.cache.evicted")
        self._size = self.metrics.gauge("serve.cache.size")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The live value under ``key``, or None (counted hit/miss).

        An expired entry counts as a miss (plus ``serve.cache.expired``)
        and is dropped so the store never fills with dead weight.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        expires_at, value = entry
        if expires_at is not None and self._clock() >= expires_at:
            del self._entries[key]
            self._size.set(len(self._entries))
            self._expired.inc()
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value``; evicts the LRU entry beyond ``maxsize``."""
        if self.maxsize == 0:
            return
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        self._entries[key] = (expires_at, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evicted.inc()
        self._size.set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._size.set(0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TTLCache(size={len(self._entries)}/{self.maxsize}, "
            f"ttl={self.ttl_s}, hits={self.hits}, misses={self.misses})"
        )

"""The serve smoke check (CI's ``serve-smoke`` / ``serve-shard-smoke`` jobs).

``python -m repro.serve.smoke`` starts ``repro-serve`` on an ephemeral
port with tracing enabled, drives it with the open-loop load generator
for a few seconds at a gentle rate, drains the server, and then asserts
the things that must hold for the service to be considered alive:

* zero 5xx responses and zero transport errors;
* the solve-batch-size histogram recorded at least one batch (the
  coalescing pipeline actually ran);
* every HTTP span count reconciles with the loadgen's request log;
* the emitted JSONL trace passes :func:`repro.obs.validate_trace` and
  contains the ``serve.request`` / ``serve.batch`` span taxonomy.

With ``--workers N`` the server runs the sharded multi-process topology
and the check additionally asserts that every shard solved at least one
batch (its ``serve.shard.<i>.batch.size`` histogram is non-empty) and
that no shard worker crashed or restarted during the run.  ``--shape``
selects a loadgen traffic shape (``uniform`` / ``diurnal`` / ``bursty``
/ ``hotkey``).

Live-telemetry coverage rides along: every run scrapes
``/metricsz?format=prom`` from the live server and lints the exposition,
and runs ``repro-top --once`` against it.  ``--sample-rate R`` turns on
head-based trace sampling and asserts at least one stitched span tree
was written and validates.  ``--crash-drill`` (sharded only) arms the
worker-crash faultpoint mid-run, asserts the clean 503, the restart,
and that the flight recorder left a dump whose last recorded request is
the one that observed the 503 — the dump directory is the CI artifact.

``--advise`` additionally POSTs a seeded design-space search to
``/v1/advise`` while the loadgen traffic is draining and asserts the
frontier it returns: non-empty, mutually non-dominated, and with a
reliability bitwise-equal to a direct ``repro.evaluate`` of the same
point (the serving layer must not perturb the numbers).

Exit status 0 means all checks passed; the trace and metrics files are
left behind as CI artifacts.
"""

from __future__ import annotations

import argparse
import asyncio
import glob
import io
import json
import os
import sys
from contextlib import redirect_stdout
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..engine import evaluate
from ..models import Configuration, Parameters
from ..runtime import faultpoints
from . import top
from .http import serving
from .loadgen import LoadReport, TrafficShape, run_loadgen, shape_by_name
from .service import ServeConfig

__all__ = ["main", "run_smoke"]


async def _raw_get(host: str, port: int, target: str) -> Tuple[int, str, bytes]:
    """One GET over a raw socket: (status, content-type, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    ctype = ""
    for line in head_lines[1:]:
        if line.lower().startswith("content-type:"):
            ctype = line.split(":", 1)[1].strip()
    return status, ctype, body


async def _raw_post(
    host: str, port: int, path: str, body: Dict[str, Any]
) -> Tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode("utf-8")
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode("latin-1")
        + payload
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, resp = raw.partition(b"\r\n\r\n")
    return int(head.decode("latin-1").split("\r\n")[0].split()[1]), resp


async def _run_crash_drill(
    host: str, port: int, trigger: str
) -> Tuple[int, int]:
    """Arm the faultpoint trigger, observe the 503, disarm.  Returns
    (healthy status, crash status)."""
    body = {"config": "ft2_raid5", "method": "analytic"}
    healthy, _ = await _raw_post(host, port, "/v1/evaluate", body)
    with open(trigger, "w", encoding="utf-8"):
        pass
    crashed, _ = await _raw_post(host, port, "/v1/evaluate", body)
    os.unlink(trigger)
    return healthy, crashed


async def _drive(
    config: ServeConfig,
    rps: float,
    seconds: float,
    seed: int,
    shape: Optional[TrafficShape],
    crash_trigger: Optional[str] = None,
    advise: bool = False,
) -> Tuple[LoadReport, obs.Metrics, List[dict], Dict[str, Any]]:
    """Run the scenario; ``extras`` carries the live-telemetry probes
    taken while the server was up (prom text, top frame, drill result)."""
    extras: Dict[str, Any] = {}
    async with serving(config) as server:
        report = await run_loadgen(
            server.host,
            server.port,
            rps=rps,
            duration_s=seconds,
            seed=seed,
            shape=shape,
        )
        if crash_trigger is not None:
            healthy, crashed = await _run_crash_drill(
                server.host, server.port, crash_trigger
            )
            extras["drill"] = {"healthy": healthy, "crashed": crashed}
            # Give the runtime a beat to restart the shard.
            for _ in range(200):
                workers = server.service.health().get("workers", [])
                if workers and all(w.get("alive") for w in workers):
                    break
                await asyncio.sleep(0.01)
        if advise:
            advise_status, advise_resp = await _raw_post(
                server.host,
                server.port,
                "/v1/advise",
                {
                    "space": {
                        "internal": ["none", "raid5", "raid6"],
                        "fault_tolerance": [1, 2, 3],
                        "axes": {"redundancy_set_size": [6, 8, 12]},
                    },
                    "seed": 0,
                },
            )
            try:
                advise_payload = json.loads(advise_resp.decode("utf-8"))
            except ValueError:
                advise_payload = {}
            extras["advise"] = {
                "status": advise_status,
                "payload": advise_payload,
            }
        status, ctype, prom_body = await _raw_get(
            server.host, server.port, "/metricsz?format=prom"
        )
        extras["prom"] = {
            "status": status,
            "content_type": ctype,
            "text": prom_body.decode("utf-8"),
        }
        url = f"http://{server.host}:{server.port}"
        frame = io.StringIO()
        loop = asyncio.get_running_loop()

        def _top_once() -> int:
            with redirect_stdout(frame):
                return top.main(["--url", url, "--once"])

        extras["top"] = {
            "exit": await loop.run_in_executor(None, _top_once),
            "frame": frame.getvalue(),
        }
        # The telemetry probes are themselves HTTP requests the server
        # counts: 2 drill posts, 1 advise post, 1 prom scrape, 2
        # repro-top polls.
        extras["probe_requests"] = (
            3
            + (2 if crash_trigger is not None else 0)
            + (1 if advise else 0)
        )
        workers = server.service.health().get("workers", [])
        extras["health"] = server.service.health()
        metrics = obs.Metrics.merged([server.service.metrics])
    return report, metrics, workers, extras


def run_smoke(
    *,
    rps: float = 30.0,
    seconds: float = 5.0,
    seed: int = 0,
    workers: int = 0,
    shape: str = "uniform",
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    sample_rate: float = 0.0,
    samples_path: Optional[str] = None,
    flight_dir: Optional[str] = None,
    crash_drill: bool = False,
    advise: bool = False,
) -> Tuple[LoadReport, obs.Metrics, List[str]]:
    """Run the smoke scenario; returns (report, metrics, failures)."""
    if crash_drill and workers <= 0:
        raise ValueError("--crash-drill needs --workers > 0")
    if crash_drill and flight_dir is None:
        flight_dir = "smoke-flight"
    if sample_rate > 0 and samples_path is None:
        samples_path = "smoke-samples.jsonl"
    config = ServeConfig(
        port=0,
        workers=workers,
        trace_sample_rate=sample_rate,
        trace_sample_path=samples_path,
        flight_dir=flight_dir,
    )
    session = obs.trace(
        trace_path, metrics_path=metrics_path, root="repro-serve"
    )
    trigger = None
    drill_ctx = None
    if crash_drill:
        trigger = os.path.join(flight_dir or ".", "crash.trigger")
        os.makedirs(os.path.dirname(trigger) or ".", exist_ok=True)

        def _kill_if_armed(shard=None, **_kwargs):
            if os.path.exists(trigger):
                os._exit(17)

        drill_ctx = faultpoints.injected(
            faultpoints.SERVE_WORKER_CRASH, _kill_if_armed
        )
        drill_ctx.__enter__()
    try:
        with session as active:
            report, metrics, worker_health, extras = asyncio.run(
                _drive(
                    config,
                    rps,
                    seconds,
                    seed,
                    shape_by_name(shape),
                    crash_trigger=trigger,
                    advise=advise,
                )
            )
            active.add_metrics_source(lambda: metrics)
    finally:
        if drill_ctx is not None:
            drill_ctx.__exit__(None, None, None)

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what)
        if not ok:
            failures.append(what)

    check(report.sent > 0, f"sent {report.sent} requests (shape {shape})")
    check(
        report.completed == report.sent,
        f"all {report.sent} requests answered 200 "
        f"(got {report.completed}, shed {report.shed})",
    )
    check(report.server_errors == 0, f"zero 5xx (got {report.server_errors})")
    check(
        report.transport_errors == 0,
        f"zero transport errors (got {report.transport_errors})",
    )
    batches = metrics.histogram("serve.batch.size")
    check(
        batches.count > 0,
        f"batch-size histogram non-empty ({batches.count} batches, "
        f"mean size {batches.mean:.2f})",
    )
    http_requests = metrics.value("serve.http.requests", 0)
    expected = report.sent + extras["probe_requests"]
    check(
        http_requests == expected,
        f"serve.http.requests ({http_requests}) == sent + probes "
        f"({report.sent} + {extras['probe_requests']})",
    )
    admitted = metrics.value("serve.queue.admitted", 0)
    cache_hits = metrics.value("serve.cache.hits", 0)
    coalesced = metrics.value("serve.inflight.coalesced", 0)
    shed = metrics.value("serve.queue.shed", 0)
    check(
        admitted + cache_hits + coalesced + shed >= report.sent,
        f"admission accounting covers every request "
        f"(admitted {admitted} + cache hits {cache_hits} + "
        f"coalesced {coalesced} + shed {shed} >= {report.sent})",
    )
    if workers > 0:
        for i in range(workers):
            hist = metrics.histogram(f"serve.shard.{i}.batch.size")
            check(
                hist.count > 0,
                f"shard {i} solved batches "
                f"({hist.count} batches, mean size {hist.mean:.2f})",
            )
        restarts = sum(w.get("restarts", 0) for w in worker_health)
        if crash_drill:
            check(
                restarts >= 1,
                f"crash drill restarted a shard worker (got {restarts})",
            )
        else:
            check(
                restarts == 0,
                f"zero shard-worker restarts (got {restarts})",
            )
        check(
            len(worker_health) == workers
            and all(w.get("alive") for w in worker_health),
            f"all {workers} shard workers alive at drain",
        )
    prom = extras["prom"]
    check(
        prom["status"] == 200
        and prom["content_type"] == obs.PROM_CONTENT_TYPE,
        f"/metricsz?format=prom answers 200 with the exposition "
        f"content type (got {prom['status']}, {prom['content_type']!r})",
    )
    try:
        families = obs.validate_prom_text(prom["text"])
    except obs.PromFormatError as exc:
        check(False, f"prom exposition lints ({exc})")
    else:
        check(True, f"prom exposition lints ({len(families)} families)")
        check(
            "repro_serve_http_requests" in families,
            "prom exposition carries repro_serve_http_requests",
        )
    top_probe = extras["top"]
    check(
        top_probe["exit"] == 0 and "repro-top" in top_probe["frame"],
        f"repro-top --once rendered a frame (exit {top_probe['exit']})",
    )
    if advise:
        probe = extras["advise"]
        frontier = probe["payload"].get("frontier") or []
        check(
            probe["status"] == 200 and len(frontier) > 0,
            f"/v1/advise answered 200 with a non-empty frontier "
            f"(status {probe['status']}, {len(frontier)} points)",
        )
        objectives = [tuple(p["objectives"]) for p in frontier]
        dominated = sum(
            1
            for i, a in enumerate(objectives)
            for j, b in enumerate(objectives)
            if i != j
            and all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b))
        )
        check(
            dominated == 0,
            f"no frontier point dominates another "
            f"({len(frontier)} points, {dominated} violations)",
        )
        if frontier:
            point = frontier[0]
            direct = evaluate(
                Configuration.from_key(point["config"]),
                Parameters(**point["params"]),
            )
            check(
                direct.mttdl_hours == point["reliability"]["mttdl_hours"]
                and direct.events_per_pb_year
                == point["reliability"]["events_per_pb_year"],
                f"served frontier reliability bitwise-equal to "
                f"repro.evaluate ({point['config']})",
            )
    slo = extras["health"].get("slo", {})
    check(
        isinstance(slo, dict) and slo.get("good", 0) > 0,
        f"SLO tracker counted good requests ({slo.get('good')})",
    )
    if sample_rate > 0 and samples_path:
        try:
            sampled = obs.validate_trace(samples_path)
        except (obs.TraceFormatError, OSError) as exc:
            check(False, f"sampled span trees validate ({exc})")
        else:
            roots = [s for s in sampled if s.get("parent_id") is None]
            check(
                len(roots) >= 1,
                f"sampling wrote stitched span trees "
                f"({len(roots)} trees, {len(sampled)} spans)",
            )
    if crash_drill:
        drill = extras["drill"]
        check(
            drill["healthy"] == 200 and drill["crashed"] == 503,
            f"crash drill: healthy 200 then clean 503 "
            f"(got {drill['healthy']}, {drill['crashed']})",
        )
        dumps = sorted(
            glob.glob(os.path.join(flight_dir or ".", "flight-*http-503*.json"))
        )
        if not dumps:
            check(False, "flight recorder dumped on the 503")
        else:
            with open(dumps[-1], "r", encoding="utf-8") as fh:
                dump = json.load(fh)
            requests = [
                r for r in dump.get("records", [])
                if r.get("kind") == "request"
            ]
            check(
                bool(requests) and requests[-1].get("status") == 503,
                "flight dump's last recorded request is the 503 "
                f"({dumps[-1]})",
            )
    if trace_path:
        try:
            spans = obs.validate_trace(trace_path)
        except obs.TraceFormatError as exc:
            check(False, f"trace validates ({exc})")
        else:
            names = {s["name"] for s in spans}
            check(True, f"trace validates ({len(spans)} spans)")
            for required in ("repro-serve", "serve.request", "serve.batch"):
                check(required in names, f"trace contains {required!r} spans")
    print()
    print(report.format())
    return report, metrics, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="Start repro-serve, drive it with the load generator, "
        "assert liveness + coalescing, validate the trace.",
    )
    parser.add_argument("--rps", type=float, default=30.0)
    parser.add_argument("--seconds", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker processes (0 = single-process topology)",
    )
    parser.add_argument(
        "--shape",
        default="uniform",
        help="loadgen traffic shape (uniform/diurnal/bursty/hotkey)",
    )
    parser.add_argument("--trace", metavar="PATH", default=None)
    parser.add_argument("--metrics", metavar="PATH", default=None)
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=0.0,
        help="head-based trace sampling rate; >0 asserts stitched trees",
    )
    parser.add_argument(
        "--samples",
        metavar="PATH",
        default=None,
        help="sampled-tree JSONL path (default smoke-samples.jsonl)",
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="flight-recorder dump directory",
    )
    parser.add_argument(
        "--crash-drill",
        action="store_true",
        help="kill a shard worker mid-run and assert the 503 + restart "
        "+ flight dump (needs --workers > 0)",
    )
    parser.add_argument(
        "--advise",
        action="store_true",
        help="POST a seeded /v1/advise search and assert its frontier "
        "(non-empty, mutually non-dominated, bitwise vs repro.evaluate)",
    )
    args = parser.parse_args(argv)
    _, _, failures = run_smoke(
        rps=args.rps,
        seconds=args.seconds,
        seed=args.seed,
        workers=args.workers,
        shape=args.shape,
        trace_path=args.trace,
        metrics_path=args.metrics,
        sample_rate=args.sample_rate,
        samples_path=args.samples,
        flight_dir=args.flight_dir,
        crash_drill=args.crash_drill,
        advise=args.advise,
    )
    if failures:
        print(f"\nserve-smoke FAILED ({len(failures)} checks)")
        return 1
    print("\nserve-smoke OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The serve smoke check (CI's ``serve-smoke`` / ``serve-shard-smoke`` jobs).

``python -m repro.serve.smoke`` starts ``repro-serve`` on an ephemeral
port with tracing enabled, drives it with the open-loop load generator
for a few seconds at a gentle rate, drains the server, and then asserts
the things that must hold for the service to be considered alive:

* zero 5xx responses and zero transport errors;
* the solve-batch-size histogram recorded at least one batch (the
  coalescing pipeline actually ran);
* every HTTP span count reconciles with the loadgen's request log;
* the emitted JSONL trace passes :func:`repro.obs.validate_trace` and
  contains the ``serve.request`` / ``serve.batch`` span taxonomy.

With ``--workers N`` the server runs the sharded multi-process topology
and the check additionally asserts that every shard solved at least one
batch (its ``serve.shard.<i>.batch.size`` histogram is non-empty) and
that no shard worker crashed or restarted during the run.  ``--shape``
selects a loadgen traffic shape (``uniform`` / ``diurnal`` / ``bursty``
/ ``hotkey``).

Exit status 0 means all checks passed; the trace and metrics files are
left behind as CI artifacts.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Sequence, Tuple

from .. import obs
from .http import serving
from .loadgen import LoadReport, TrafficShape, run_loadgen, shape_by_name
from .service import ServeConfig

__all__ = ["main", "run_smoke"]


async def _drive(
    config: ServeConfig,
    rps: float,
    seconds: float,
    seed: int,
    shape: Optional[TrafficShape],
) -> Tuple[LoadReport, obs.Metrics, List[dict]]:
    async with serving(config) as server:
        report = await run_loadgen(
            server.host,
            server.port,
            rps=rps,
            duration_s=seconds,
            seed=seed,
            shape=shape,
        )
        workers = server.service.health().get("workers", [])
        metrics = obs.Metrics.merged([server.service.metrics])
    return report, metrics, workers


def run_smoke(
    *,
    rps: float = 30.0,
    seconds: float = 5.0,
    seed: int = 0,
    workers: int = 0,
    shape: str = "uniform",
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> Tuple[LoadReport, obs.Metrics, List[str]]:
    """Run the smoke scenario; returns (report, metrics, failures)."""
    config = ServeConfig(port=0, workers=workers)
    session = obs.trace(
        trace_path, metrics_path=metrics_path, root="repro-serve"
    )
    with session as active:
        report, metrics, worker_health = asyncio.run(
            _drive(config, rps, seconds, seed, shape_by_name(shape))
        )
        active.add_metrics_source(lambda: metrics)

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what)
        if not ok:
            failures.append(what)

    check(report.sent > 0, f"sent {report.sent} requests (shape {shape})")
    check(
        report.completed == report.sent,
        f"all {report.sent} requests answered 200 "
        f"(got {report.completed}, shed {report.shed})",
    )
    check(report.server_errors == 0, f"zero 5xx (got {report.server_errors})")
    check(
        report.transport_errors == 0,
        f"zero transport errors (got {report.transport_errors})",
    )
    batches = metrics.histogram("serve.batch.size")
    check(
        batches.count > 0,
        f"batch-size histogram non-empty ({batches.count} batches, "
        f"mean size {batches.mean:.2f})",
    )
    http_requests = metrics.value("serve.http.requests", 0)
    check(
        http_requests == report.sent,
        f"serve.http.requests ({http_requests}) == sent ({report.sent})",
    )
    admitted = metrics.value("serve.queue.admitted", 0)
    cache_hits = metrics.value("serve.cache.hits", 0)
    coalesced = metrics.value("serve.inflight.coalesced", 0)
    shed = metrics.value("serve.queue.shed", 0)
    check(
        admitted + cache_hits + coalesced + shed >= report.sent,
        f"admission accounting covers every request "
        f"(admitted {admitted} + cache hits {cache_hits} + "
        f"coalesced {coalesced} + shed {shed} >= {report.sent})",
    )
    if workers > 0:
        for i in range(workers):
            hist = metrics.histogram(f"serve.shard.{i}.batch.size")
            check(
                hist.count > 0,
                f"shard {i} solved batches "
                f"({hist.count} batches, mean size {hist.mean:.2f})",
            )
        restarts = sum(w.get("restarts", 0) for w in worker_health)
        check(
            restarts == 0,
            f"zero shard-worker restarts (got {restarts})",
        )
        check(
            len(worker_health) == workers
            and all(w.get("alive") for w in worker_health),
            f"all {workers} shard workers alive at drain",
        )
    if trace_path:
        try:
            spans = obs.validate_trace(trace_path)
        except obs.TraceFormatError as exc:
            check(False, f"trace validates ({exc})")
        else:
            names = {s["name"] for s in spans}
            check(True, f"trace validates ({len(spans)} spans)")
            for required in ("repro-serve", "serve.request", "serve.batch"):
                check(required in names, f"trace contains {required!r} spans")
    print()
    print(report.format())
    return report, metrics, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="Start repro-serve, drive it with the load generator, "
        "assert liveness + coalescing, validate the trace.",
    )
    parser.add_argument("--rps", type=float, default=30.0)
    parser.add_argument("--seconds", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker processes (0 = single-process topology)",
    )
    parser.add_argument(
        "--shape",
        default="uniform",
        help="loadgen traffic shape (uniform/diurnal/bursty/hotkey)",
    )
    parser.add_argument("--trace", metavar="PATH", default=None)
    parser.add_argument("--metrics", metavar="PATH", default=None)
    args = parser.parse_args(argv)
    _, _, failures = run_smoke(
        rps=args.rps,
        seconds=args.seconds,
        seed=args.seed,
        workers=args.workers,
        shape=args.shape,
        trace_path=args.trace,
        metrics_path=args.metrics,
    )
    if failures:
        print(f"\nserve-smoke FAILED ({len(failures)} checks)")
        return 1
    print("\nserve-smoke OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The serve smoke check (CI's ``serve-smoke`` job).

``python -m repro.serve.smoke`` starts ``repro-serve`` on an ephemeral
port with tracing enabled, drives it with the open-loop load generator
for a few seconds at a gentle rate, drains the server, and then asserts
the things that must hold for the service to be considered alive:

* zero 5xx responses and zero transport errors;
* the solve-batch-size histogram recorded at least one batch (the
  coalescing pipeline actually ran);
* every HTTP span count reconciles with the loadgen's request log;
* the emitted JSONL trace passes :func:`repro.obs.validate_trace` and
  contains the ``serve.request`` / ``serve.batch`` span taxonomy.

Exit status 0 means all checks passed; the trace and metrics files are
left behind as CI artifacts.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Sequence, Tuple

from .. import obs
from .http import serving
from .loadgen import LoadReport, run_loadgen
from .service import ServeConfig

__all__ = ["main", "run_smoke"]


async def _drive(
    config: ServeConfig, rps: float, seconds: float, seed: int
) -> Tuple[LoadReport, obs.Metrics]:
    async with serving(config) as server:
        report = await run_loadgen(
            server.host, server.port, rps=rps, duration_s=seconds, seed=seed
        )
        metrics = obs.Metrics.merged([server.service.metrics])
    return report, metrics


def run_smoke(
    *,
    rps: float = 30.0,
    seconds: float = 5.0,
    seed: int = 0,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> Tuple[LoadReport, obs.Metrics, List[str]]:
    """Run the smoke scenario; returns (report, metrics, failures)."""
    config = ServeConfig(port=0)
    session = obs.trace(
        trace_path, metrics_path=metrics_path, root="repro-serve"
    )
    with session as active:
        report, metrics = asyncio.run(_drive(config, rps, seconds, seed))
        active.add_metrics_source(lambda: metrics)

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what)
        if not ok:
            failures.append(what)

    check(report.sent > 0, f"sent {report.sent} requests")
    check(
        report.completed == report.sent,
        f"all {report.sent} requests answered 200 "
        f"(got {report.completed}, shed {report.shed})",
    )
    check(report.server_errors == 0, f"zero 5xx (got {report.server_errors})")
    check(
        report.transport_errors == 0,
        f"zero transport errors (got {report.transport_errors})",
    )
    batches = metrics.histogram("serve.batch.size")
    check(
        batches.count > 0,
        f"batch-size histogram non-empty ({batches.count} batches, "
        f"mean size {batches.mean:.2f})",
    )
    http_requests = metrics.value("serve.http.requests", 0)
    check(
        http_requests == report.sent,
        f"serve.http.requests ({http_requests}) == sent ({report.sent})",
    )
    admitted = metrics.value("serve.queue.admitted", 0)
    cache_hits = metrics.value("serve.cache.hits", 0)
    coalesced = metrics.value("serve.inflight.coalesced", 0)
    shed = metrics.value("serve.queue.shed", 0)
    check(
        admitted + cache_hits + coalesced + shed >= report.sent,
        f"admission accounting covers every request "
        f"(admitted {admitted} + cache hits {cache_hits} + "
        f"coalesced {coalesced} + shed {shed} >= {report.sent})",
    )
    if trace_path:
        try:
            spans = obs.validate_trace(trace_path)
        except obs.TraceFormatError as exc:
            check(False, f"trace validates ({exc})")
        else:
            names = {s["name"] for s in spans}
            check(True, f"trace validates ({len(spans)} spans)")
            for required in ("repro-serve", "serve.request", "serve.batch"):
                check(required in names, f"trace contains {required!r} spans")
    print()
    print(report.format())
    return report, metrics, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="Start repro-serve, drive it with the load generator, "
        "assert liveness + coalescing, validate the trace.",
    )
    parser.add_argument("--rps", type=float, default=30.0)
    parser.add_argument("--seconds", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", metavar="PATH", default=None)
    parser.add_argument("--metrics", metavar="PATH", default=None)
    args = parser.parse_args(argv)
    _, _, failures = run_smoke(
        rps=args.rps,
        seconds=args.seconds,
        seed=args.seed,
        trace_path=args.trace,
        metrics_path=args.metrics,
    )
    if failures:
        print(f"\nserve-smoke FAILED ({len(failures)} checks)")
        return 1
    print("\nserve-smoke OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

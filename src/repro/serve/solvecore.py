"""The batch-solve core shared by every serve topology.

The :class:`~repro.serve.batcher.CoalescingBatcher` *assembles* batches;
this module *solves* them.  Keeping the solve pure and picklable is what
lets one implementation run in three places unchanged:

* on a dedicated solver thread (single-process mode, via
  :class:`repro.runtime.ThreadTopology`);
* inside a forked shard worker (sharded mode, via
  :class:`repro.runtime.ProcessTopology`), where the worker owns its
  shard's :class:`~repro.engine.solver.SolveContext` (compiled chains)
  and an optional shard-local TTL result cache so hot keys stay
  cache-local;
* inline, for tests.

The handler contract is the runtime's ``handler(state, payload)``:
``state`` is a :class:`SolverState` built inside the worker by
:func:`make_state`, ``payload`` is ``(tasks, assemble_unix,
assembled_s)``, and the reply is ``(outcomes, stats)`` where
``outcomes[i]`` is point ``i``'s MTTDL in hours (or the exception its
group raised) and ``stats`` carries the worker-cache counters for the
parent to fold into its metrics registry.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.solvers import SolveOptions, SolveRequest
from ..core.solvers import solve as _core_solve
from ..engine.solver import (
    SolveContext,
    closed_form_mttdl,
    prepare_point,
    solve_grouped,
)
from ..models.configurations import Configuration
from ..models.parameters import Parameters
from ..runtime import faultpoints
from .ttl_cache import TTLCache

__all__ = [
    "PointTask",
    "SolverState",
    "make_state",
    "solve_batch_tasks",
    "solve_handler",
    "synth_span",
]

#: Synthetic-span id sequence.  Real tracer ids are ``"<pid hex>-<int>"``;
#: the ``q`` infix keeps these from ever colliding with them.
_SYNTH_SEQ = itertools.count(1)


def synth_span(
    name: str,
    start_unix: float,
    wall_s: float,
    parent_id: Optional[str] = None,
    **attrs: Any,
) -> Dict[str, Any]:
    """A finished-span dict for a phase that cannot hold a live span
    open (it crosses task switches or the event loop's task switches);
    feed the result to :func:`repro.obs.adopt_spans`, which grafts
    parentless spans under the adopting thread's current span."""
    return {
        "type": "span",
        "span_id": f"{os.getpid():x}-q{next(_SYNTH_SEQ)}",
        "parent_id": parent_id,
        "name": name,
        "start_unix": start_unix,
        "wall_s": max(0.0, wall_s),
        "cpu_s": 0.0,
        "pid": os.getpid(),
        "attrs": attrs,
    }


class PointTask:
    """One admitted point, in picklable form (crosses the shard pipe)."""

    __slots__ = (
        "config",
        "params",
        "method",
        "options",
        "spec_hash",
        "cache_key",
        "enqueued_mono",
        "enqueued_unix",
        "trace_id",
    )

    def __init__(
        self,
        config: Configuration,
        params: Parameters,
        method: str,
        options: SolveOptions,
        spec_hash: str,
        cache_key: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.config = config
        self.params = params
        self.method = method
        self.options = options
        self.spec_hash = spec_hash
        self.cache_key = cache_key
        self.enqueued_mono = time.monotonic()
        self.enqueued_unix = time.time()
        # Sampled-request trace context: rides the task across the shard
        # pipe so the worker knows to capture and ship its spans back.
        self.trace_id = trace_id

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)


class SolverState:
    """Per-worker solve state: shard identity, compiled chains, cache."""

    __slots__ = ("shard", "ctx", "cache")

    def __init__(
        self,
        shard: Optional[int],
        ctx: SolveContext,
        cache: Optional[TTLCache],
    ) -> None:
        self.shard = shard
        self.ctx = ctx
        self.cache = cache


def make_state(
    cache_size: int,
    cache_ttl_s: Optional[float],
    sharded: bool,
    index: int,
) -> SolverState:
    """Worker-state factory (``functools.partial``-able for the runtime).

    Runs *inside* the worker, so the solve context and cache are owned by
    the worker that uses them — per-shard in process mode, per-thread in
    single-process mode.  The cache's own counters live in a local
    registry the parent never sees; the numbers that matter travel back
    in the per-batch ``stats``.
    """
    cache = (
        TTLCache(cache_size, cache_ttl_s, metrics=obs.Metrics())
        if cache_size > 0
        else None
    )
    return SolverState(
        shard=index if sharded else None, ctx=SolveContext(), cache=cache
    )


def solve_batch_tasks(
    tasks: Sequence[PointTask],
    ctx: SolveContext,
    *,
    cache: Optional[TTLCache] = None,
    assemble_unix: float = 0.0,
    assembled_s: float = 0.0,
    shard: Optional[int] = None,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Solve one assembled batch; returns per-point floats (or the
    exception that point's group raised, position-matched) plus the
    worker-cache hit/miss counts.

    Grouping includes the (hashable, frozen) solve options: points
    asking for different backends or tolerances never share a stacked
    solve.  A worker-cache hit answers a point without solving; the
    remaining members of its group still solve together, and every
    execution path stays bitwise identical (stacked binds are per-point
    independent).

    When any task carries a sampled ``trace_id``, the whole solve runs
    under a span capture regardless of the process-global tracer: the
    captured spans come back in ``stats["spans"]`` (picklable dicts, so
    they cross the shard pipe in the batch reply) *and* are re-adopted
    into any enclosing tracer, so a ``--trace`` session still sees them.
    """
    if any(task.trace_id for task in tasks):
        with obs.capture_spans() as shipped:
            outcomes, stats = _solve_batch(
                tasks,
                ctx,
                cache=cache,
                assemble_unix=assemble_unix,
                assembled_s=assembled_s,
                shard=shard,
            )
        obs.adopt_spans(shipped)
        stats["spans"] = shipped
        return outcomes, stats
    return _solve_batch(
        tasks,
        ctx,
        cache=cache,
        assemble_unix=assemble_unix,
        assembled_s=assembled_s,
        shard=shard,
    )


def _solve_batch(
    tasks: Sequence[PointTask],
    ctx: SolveContext,
    *,
    cache: Optional[TTLCache],
    assemble_unix: float,
    assembled_s: float,
    shard: Optional[int],
) -> Tuple[List[Any], Dict[str, Any]]:
    groups: Dict[Tuple[str, str, SolveOptions], List[int]] = {}
    for i, task in enumerate(tasks):
        groups.setdefault((task.method, task.spec_hash, task.options), []).append(i)
    outcomes: List[Any] = [None] * len(tasks)
    cache_hits = 0
    cache_misses = 0
    attrs: Dict[str, Any] = {"size": len(tasks), "groups": len(groups)}
    if shard is not None:
        attrs["shard"] = shard
    sampled_ids = sorted({t.trace_id for t in tasks if t.trace_id})
    if sampled_ids:
        attrs["trace_ids"] = sampled_ids
    with obs.span("serve.batch", **attrs) as batch_span:
        if obs.tracing_active():
            dequeued = time.time()
            synthetic = [
                synth_span(
                    "serve.batch.assemble",
                    assemble_unix,
                    assembled_s,
                    points=len(tasks),
                )
            ]
            synthetic.extend(
                synth_span(
                    "serve.queue.wait",
                    t.enqueued_unix,
                    dequeued - t.enqueued_unix,
                    config=t.config.key,
                    **({"trace_id": t.trace_id} if t.trace_id else {}),
                )
                for t in tasks
            )
            obs.adopt_spans(synthetic, batch_span.span_id)
        for (method, spec_hash, options), members in groups.items():
            if cache is not None:
                solve_members = []
                for i in members:
                    key = tasks[i].cache_key
                    hit = cache.get(key) if key is not None else None
                    if hit is not None:
                        outcomes[i] = hit
                        cache_hits += 1
                    else:
                        solve_members.append(i)
                        cache_misses += 1
                members = solve_members
                if not members:
                    continue
            try:
                if method == "analytic":
                    compiled = None
                    envs = []
                    for i in members:
                        c, env = prepare_point(
                            tasks[i].config,
                            tasks[i].params,
                            ctx,
                            options.rates_method,
                        )
                        compiled = c
                        envs.append(env)
                    with obs.span(
                        "serve.batch.solve",
                        method=method,
                        spec=spec_hash[:12],
                        points=len(members),
                    ):
                        solved = solve_grouped(compiled, envs, options)
                else:
                    cf_options = (
                        options
                        if options.backend == "closed_form"
                        else options.replace(backend="closed_form")
                    )
                    with obs.span(
                        "serve.batch.solve",
                        method=method,
                        points=len(members),
                    ):
                        solved = list(
                            _core_solve(
                                SolveRequest(
                                    closed_form=lambda members=members: [
                                        closed_form_mttdl(
                                            tasks[i].config,
                                            tasks[i].params,
                                            ctx,
                                        )
                                        for i in members
                                    ],
                                    query="mttdl",
                                    options=cf_options,
                                )
                            ).values
                        )
            except Exception as exc:  # noqa: BLE001 - per-group isolation
                for i in members:
                    outcomes[i] = exc
            else:
                for i, mttdl in zip(members, solved):
                    outcomes[i] = mttdl
                    if cache is not None and tasks[i].cache_key is not None:
                        cache.put(tasks[i].cache_key, mttdl)
    return outcomes, {"cache_hits": cache_hits, "cache_misses": cache_misses}


def _picklable_outcome(outcome: Any) -> Any:
    """Exceptions cross the shard pipe; replace any that cannot."""
    if not isinstance(outcome, BaseException):
        return outcome
    try:
        pickle.dumps(outcome)
    except Exception:
        return RuntimeError(f"{type(outcome).__name__}: {outcome}")
    return outcome


def solve_handler(
    state: SolverState,
    payload: Tuple[Sequence[PointTask], float, float],
) -> Tuple[List[Any], Dict[str, int]]:
    """The runtime handler every serve topology runs.

    Fires the :data:`~repro.runtime.faultpoints.SERVE_WORKER_CRASH`
    fault point in sharded (process) workers only — killing a forked
    shard exercises crash-restart; killing the single-process solver
    thread would just be killing the server.
    """
    tasks, assemble_unix, assembled_s = payload
    if state.shard is not None:
        faultpoints.fire(faultpoints.SERVE_WORKER_CRASH, shard=state.shard)
    outcomes, stats = solve_batch_tasks(
        tasks,
        state.ctx,
        cache=state.cache,
        assemble_unix=assemble_unix,
        assembled_s=assembled_s,
        shard=state.shard,
    )
    if state.shard is not None:
        outcomes = [_picklable_outcome(outcome) for outcome in outcomes]
    return outcomes, stats

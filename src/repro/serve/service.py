"""The reliability-query service: cache, coalescing, admission, sharding.

:class:`ReliabilityService` is the protocol-agnostic core behind the
HTTP front end (and behind in-process callers like the benchmark
harness).  A point query flows through the layers cheapest first:

1. the TTL'd LRU **result cache**, keyed by the engine's stable
   config+params hash — a hit costs a dict copy (single-process mode;
   in sharded mode caching moves into the workers, see below);
2. the **in-flight table** — a second request for a key already being
   solved awaits the first one's future instead of solving again;
3. the **coalescing batcher** — admitted points group by spec hash and
   solve as one stacked GTH elimination
   (:class:`~repro.serve.batcher.CoalescingBatcher`) on the runtime.

With ``workers=N`` (N > 0) the service runs the sharded topology: one
:class:`repro.runtime.ProcessTopology` of N forked solver workers, one
batcher per shard, and every point routed by its spec hash
(:func:`repro.serve.shard.shard_index`) to the worker that owns its
chain family's compiled spec and shard-local TTL cache — hot keys stay
cache-local to one process.  The front-end result cache is disabled in
this mode (the shard caches own TTL semantics); in-flight coalescing
still applies.  Workers that crash are restarted by the runtime;
requests in flight on the dead worker fail with
:class:`~repro.runtime.WorkerCrashed`, which the HTTP layer answers with
``503 Retry-After``.

Monte-Carlo points, availability profiles and axis sweeps do not batch
(their cost profile is different); they run on a single auxiliary worker
thread behind their own admission bound, so a burst of expensive
requests sheds with 429 instead of starving the chain solves.

Every answer is bitwise identical to the corresponding direct
:func:`repro.evaluate` call — the service only re-routes *where* the
same floats are computed, never *how*.
"""

from __future__ import annotations

import asyncio
import functools
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from .. import obs
from ..engine.sweep import Axis, SweepEngine
from ..models.availability import AvailabilityModel
from ..models.metrics import ReliabilityResult
from ..models.parameters import Parameters
from ..runtime import ProcessTopology, ThreadTopology
from .batcher import CoalescingBatcher, Overloaded
from .protocol import AdviseQuery, PointQuery, SweepQuery, point_response
from .shard import shard_index
from .solvecore import make_state, solve_handler
from .ttl_cache import TTLCache

__all__ = ["ReliabilityService", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob in one immutable bag.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port).
        max_batch_size: close a solve batch at this many points.
        max_wait_us: close a solve batch this many microseconds after its
            first point arrived — the latency traded for throughput.
        queue_depth: admission bound on queued (un-batched) points,
            per batcher (per shard in sharded mode); beyond it, requests
            shed with 429.
        retry_after_s: the ``Retry-After`` hint sent with a 429.
        cache_size: result-cache entry cap (0 disables caching).  In
            sharded mode this sizes each worker's shard-local cache; the
            front-end cache is off.
        cache_ttl_s: result-cache entry lifetime (None = no expiry).
        aux_depth: admission bound on queued auxiliary work (Monte Carlo,
            availability profiles, sweeps, advise searches).
        advise_depth: additional admission bound on concurrent
            ``/v1/advise`` searches (they hold the aux lane much longer
            than a sweep, so they get a tighter gate inside
            ``aux_depth``).
        workers: shard worker processes.  0 (default) keeps the classic
            single-process topology (solver thread); N > 0 forks N
            workers and shards points across them by spec hash.
        deadline_margin_us: safety margin for deadline-aware batch
            closing (added to the solve-time EWMA).
        default_deadline_ms: deadline applied to points that do not
            carry their own ``deadline_ms`` (None = no deadline).
        live_metrics: windowed (1s/10s/60s) latency/SLO instruments on
            the serving path (the ``serve.live.*`` namespace).  Off, the
            service holds the no-op telemetry bundle and the request
            path pays nothing.
        slo_target: the availability objective the SLO tracker burns
            against (fraction of requests that must be good).
        trace_sample_rate: head-based per-request trace sampling
            probability (0 disables; a request body may still force a
            sample with ``"trace": true``).
        trace_sample_seed: seed of the sampling RNG — a replayed seeded
            load samples the same requests run over run.
        trace_sample_path: rotating JSONL file stitched sample trees are
            streamed to (defaults next to the CWD when sampling is on).
        flight_dir: directory flight-recorder postmortems dump into on
            WorkerCrashed / 5xx (None disables dumping; the in-memory
            ring still records when live telemetry is on).
        base_params: baseline :class:`Parameters` that request-level
            overrides apply to (the paper's Section 6 baseline when
            omitted).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch_size: int = 64
    max_wait_us: int = 2_000
    queue_depth: int = 1024
    retry_after_s: float = 1.0
    cache_size: int = 4096
    cache_ttl_s: Optional[float] = 300.0
    aux_depth: int = 8
    advise_depth: int = 2
    workers: int = 0
    deadline_margin_us: int = 500
    default_deadline_ms: Optional[float] = None
    live_metrics: bool = True
    slo_target: float = 0.99
    trace_sample_rate: float = 0.0
    trace_sample_seed: int = 0
    trace_sample_path: Optional[str] = None
    flight_dir: Optional[str] = None
    base_params: Optional[Parameters] = field(default=None, repr=False)

    def with_overrides(self, **changes: Any) -> "ServeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def _call_aux(state: None, fn) -> Any:
    """Aux-lane handler: run the offloaded callable."""
    return fn()


class ReliabilityService:
    """Answers validated reliability queries; owns cache + batcher(s).

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop` explicitly) so the batcher's consumer task exists::

        service = ReliabilityService(ServeConfig())
        async with service:
            answers = await service.evaluate(queries)
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        metrics: Optional[obs.Metrics] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if self.config.workers < 0:
            raise ValueError("workers must be >= 0")
        self.metrics = metrics if metrics is not None else obs.Metrics()
        self.base_params = (
            self.config.base_params
            if self.config.base_params is not None
            else Parameters.baseline()
        )
        sharded = self.config.workers > 0
        # In sharded mode results cache inside the shard workers (that is
        # the locality the topology buys); the front cache would shadow
        # them with a second TTL policy.
        self.cache = TTLCache(
            0 if sharded else self.config.cache_size,
            self.config.cache_ttl_s,
            metrics=self.metrics,
        )
        sampling = self.config.trace_sample_rate > 0
        trace_path = self.config.trace_sample_path
        if sampling and trace_path is None:
            trace_path = "repro-serve-samples.jsonl"
        if (
            self.config.live_metrics
            or sampling
            or trace_path is not None
            or self.config.flight_dir is not None
        ):
            self.live: Any = obs.LiveTelemetry(
                self.metrics,
                windowed=self.config.live_metrics,
                slo_target=self.config.slo_target,
                sample_rate=self.config.trace_sample_rate,
                sample_seed=self.config.trace_sample_seed,
                trace_path=trace_path,
                flight_dir=self.config.flight_dir,
            )
        else:
            self.live = obs.NULL_LIVE
        self.topology: Optional[ProcessTopology] = None
        if sharded:
            self.topology = ProcessTopology(
                solve_handler,
                size=self.config.workers,
                worker_state=functools.partial(
                    make_state,
                    self.config.cache_size,
                    self.config.cache_ttl_s,
                    True,
                ),
                restart=True,
                metrics=self.metrics,
                on_crash=(
                    self.live.on_worker_crash if self.live.enabled else None
                ),
                name="repro-serve-shard",
            )
            self.batchers = [
                self._make_batcher(runtime=self.topology, shard=i)
                for i in range(self.config.workers)
            ]
        else:
            self.batchers = [self._make_batcher(runtime=None, shard=None)]
        # Compatibility alias: the single-process batcher (shard 0's in
        # sharded mode).
        self.batcher = self.batchers[0]
        # One aux worker: sweeps and Monte-Carlo runs share the engine's
        # solve context, which is not re-entrant across threads.
        self._aux = ThreadTopology(_call_aux, size=1, name="repro-serve-aux")
        self._aux_pending = 0
        self._aux_inflight = 0
        self._advise_pending = 0
        self._engine = SweepEngine(
            base_params=self.base_params, jobs=1, cache=False
        )
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._coalesced = self.metrics.counter("serve.inflight.coalesced")
        self._aux_gauge = self.metrics.gauge("serve.aux.pending")
        self._aux_inflight_gauge = self.metrics.gauge("serve.aux.inflight")
        self._aux_queued_gauge = self.metrics.gauge("serve.aux.queued")
        self._aux_shed = self.metrics.counter("serve.aux.shed")
        self._advise_gauge = self.metrics.gauge("serve.advise.pending")
        self._advise_shed = self.metrics.counter("serve.advise.shed")
        self._eval_requests = self.metrics.counter("serve.requests.evaluate")
        self._sweep_requests = self.metrics.counter("serve.requests.sweep")
        self._advise_requests = self.metrics.counter("serve.requests.advise")
        self.started_unix = time.time()
        self.draining = False

    def _make_batcher(
        self, runtime, shard: Optional[int]
    ) -> CoalescingBatcher:
        return CoalescingBatcher(
            max_batch_size=self.config.max_batch_size,
            max_wait_us=self.config.max_wait_us,
            queue_depth=self.config.queue_depth,
            retry_after_s=self.config.retry_after_s,
            metrics=self.metrics,
            runtime=runtime,
            shard=shard,
            deadline_margin_us=self.config.deadline_margin_us,
            live=self.live,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the topology and batcher(s) on the running event loop."""
        if self.topology is not None:
            self.topology.start()
        self._aux.start()
        for batcher in self.batchers:
            batcher.start()

    async def stop(self) -> None:
        """Drain: answer everything admitted, then stop the workers."""
        self.draining = True
        for batcher in self.batchers:
            await batcher.stop()
        if self.topology is not None:
            # Joining worker processes blocks; keep it off the loop.
            await asyncio.get_running_loop().run_in_executor(
                None, self.topology.stop
            )
        self._aux.stop(drain=True)

    async def __aenter__(self) -> "ReliabilityService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # point evaluation
    # ------------------------------------------------------------------ #

    async def evaluate(
        self,
        queries: List[PointQuery],
        trace_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Answer every query (concurrently); raises on any failure.

        Args:
            trace_id: the sampled-request trace id (propagated to every
                point of the request), or None when not sampled.

        Raises:
            Overloaded: at least one point was shed and none failed for a
                worse reason — the whole request is retryable.
        """
        self._eval_requests.inc()
        if len(queries) == 1:
            return [await self.answer_point(queries[0], trace_id=trace_id)]
        outcomes = await asyncio.gather(
            *(self.answer_point(q, trace_id=trace_id) for q in queries),
            return_exceptions=True,
        )
        overloaded: Optional[Overloaded] = None
        for outcome in outcomes:
            if isinstance(outcome, Overloaded):
                overloaded = overloaded or outcome
            elif isinstance(outcome, BaseException):
                raise outcome
        if overloaded is not None:
            raise overloaded
        return outcomes  # type: ignore[return-value]

    async def answer_point(
        self, query: PointQuery, trace_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """The JSON-ready answer for one point (cache → in-flight →
        batcher), raising :class:`Overloaded` when shed."""
        key = query.cache_key()
        hit = self.cache.get(key)
        if hit is not None:
            out = dict(hit)
            out["cached"] = True
            return out
        inflight = self._inflight.get(key)
        if inflight is not None:
            self._coalesced.inc()
            return dict(await asyncio.shield(inflight))
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        try:
            response = await self._compute_point(query, key, trace_id)
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consumed: no zero-waiter warning
            raise
        else:
            future.set_result(response)
            self.cache.put(key, response)
            return dict(response)
        finally:
            self._inflight.pop(key, None)

    def _route(self, query: PointQuery) -> CoalescingBatcher:
        """The batcher owning this query's shard (trivial when unsharded)."""
        if len(self.batchers) == 1:
            return self.batchers[0]
        return self.batchers[
            shard_index(query.config.key, query.method, len(self.batchers))
        ]

    async def _compute_point(
        self, query: PointQuery, key: str, trace_id: Optional[str] = None
    ) -> Dict[str, Any]:
        if query.method == "monte_carlo":
            result = await self._offload(lambda: self._monte_carlo(query))
        else:
            deadline_ms = (
                query.deadline_ms
                if query.deadline_ms is not None
                else self.config.default_deadline_ms
            )
            mttdl = await self._route(query).submit(
                query.config,
                query.params,
                query.method,
                query.options,
                deadline_s=(
                    deadline_ms / 1e3 if deadline_ms is not None else None
                ),
                cache_key=key if self.topology is not None else None,
                trace_id=trace_id,
            )
            result = ReliabilityResult.from_mttdl(mttdl, query.params)
        availability = None
        if query.recovery_hours is not None:
            availability = await self._offload(
                lambda: self._availability(query)
            )
        return point_response(
            query, result, cached=False, availability=availability
        )

    def _monte_carlo(self, query: PointQuery) -> ReliabilityResult:
        from ..core.solvers import SolveOptions
        from ..engine.facade import evaluate

        with obs.span(
            "serve.monte_carlo",
            config=query.config.key,
            replicas=query.replicas,
        ):
            return evaluate(
                query.config,
                query.params,
                options=SolveOptions(backend="monte_carlo"),
                replicas=query.replicas,
                seed=query.seed,
            )

    def _availability(self, query: PointQuery) -> Dict[str, float]:
        with obs.span("serve.availability", config=query.config.key):
            profile = AvailabilityModel(
                query.config, query.params, query.recovery_hours
            ).evaluate()
        return {
            "recovery_hours": query.recovery_hours,
            "fully_operational_fraction": profile.fully_operational_fraction,
            "degraded_fraction": profile.degraded_fraction,
            "post_loss_fraction": profile.post_loss_fraction,
            "degraded_hours_per_year": profile.degraded_hours_per_year,
        }

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #

    async def sweep(self, query: SweepQuery) -> Dict[str, Any]:
        """Answer one axis sweep through :class:`SweepEngine`."""
        self._sweep_requests.inc()

        def run() -> Any:
            with obs.span(
                "serve.sweep",
                axis=query.axis_name,
                configs=len(query.configs),
                values=len(query.values),
            ):
                return self._engine.sweep(
                    list(query.configs),
                    Axis(query.axis_name, query.values),
                    method=query.method,
                )

        result = await self._offload(run)
        by_config: Dict[str, Dict[str, List[float]]] = {}
        for point in result.points:
            entry = by_config.setdefault(
                point.config.key,
                {"mttdl_hours": [], "events_per_pb_year": []},
            )
            entry["mttdl_hours"].append(point.mttdl_hours)
            entry["events_per_pb_year"].append(point.events_per_pb_year)
        return {
            "axis": query.axis_name,
            "values": list(query.values),
            "method": query.method,
            "series": [
                {"config": key, **series} for key, series in by_config.items()
            ],
        }

    # ------------------------------------------------------------------ #
    # advise searches
    # ------------------------------------------------------------------ #

    async def advise(self, query: AdviseQuery) -> Dict[str, Any]:
        """Answer one design-space search (see :mod:`repro.advise`).

        Searches run on the aux lane behind a second, tighter admission
        gate (``advise_depth`` inside ``aux_depth``): a long search must
        not starve the cheap aux work, and a burst of searches sheds
        with 429 instead of queueing for minutes.  The shared engine's
        compiled-spec memo persists across searches, so repeat searches
        over the same chain families bind rather than rebuild.
        """
        self._advise_requests.inc()
        if self._advise_pending >= self.config.advise_depth:
            self._advise_shed.inc()
            raise Overloaded(self.config.retry_after_s)
        request = query.request

        def run() -> Any:
            from ..advise import advise as run_advise

            with obs.span(
                "serve.advise",
                candidates=request.space.size(),
                seed=request.seed,
            ):
                return run_advise(
                    request,
                    base_params=self.base_params,
                    engine=self._engine,
                )

        self._advise_pending += 1
        self._advise_gauge.set(self._advise_pending)
        try:
            result = await self._offload(run)
        finally:
            self._advise_pending -= 1
            self._advise_gauge.set(self._advise_pending)
        return result.to_dict()

    # ------------------------------------------------------------------ #
    # auxiliary work (single worker thread, bounded backlog)
    # ------------------------------------------------------------------ #

    async def _offload(self, fn) -> Any:
        if self.draining or self._aux_pending >= self.config.aux_depth:
            self._aux_shed.inc()
            raise Overloaded(self.config.retry_after_s)

        def tracked() -> Any:
            # Runs on the aux worker thread; the GIL makes the int
            # bumps safe and the gauges tolerate cross-thread sets.
            self._aux_inflight += 1
            self._aux_inflight_gauge.set(self._aux_inflight)
            self._aux_queued_gauge.set(
                max(0, self._aux_pending - self._aux_inflight)
            )
            try:
                return fn()
            finally:
                self._aux_inflight -= 1
                self._aux_inflight_gauge.set(self._aux_inflight)

        self._aux_pending += 1
        self._aux_gauge.set(self._aux_pending)
        self._aux_queued_gauge.set(
            max(0, self._aux_pending - self._aux_inflight)
        )
        try:
            return await self._aux.asubmit(tracked)
        finally:
            self._aux_pending -= 1
            self._aux_gauge.set(self._aux_pending)
            self._aux_queued_gauge.set(
                max(0, self._aux_pending - self._aux_inflight)
            )

    # ------------------------------------------------------------------ #
    # introspection endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload."""
        from .. import __version__

        payload = {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "uptime_s": round(time.time() - self.started_unix, 3),
            "queue_depth": sum(b.depth for b in self.batchers),
            "inflight": len(self._inflight),
            "cache_entries": len(self.cache),
        }
        payload["aux"] = {
            "depth": self.config.aux_depth,
            "pending": self._aux_pending,
            "inflight": self._aux_inflight,
            "queued": max(0, self._aux_pending - self._aux_inflight),
            "shed": int(self._aux_shed.value),
            "advise": {
                "depth": self.config.advise_depth,
                "pending": self._advise_pending,
                "shed": int(self._advise_shed.value),
            },
        }
        payload.update(self.live.health())
        if self.topology is not None:
            payload["workers"] = [
                {
                    "index": info.index,
                    "pid": info.pid,
                    "alive": info.alive,
                    "restarts": info.restarts,
                    "restart_count": info.restarts,
                    "last_crash": info.last_crash,
                    "pending": info.pending,
                }
                for info in self.topology.health()
            ]
        return payload

    def metrics_registry(self) -> obs.Metrics:
        """The service registry folded with the process-global one (the
        live registry behind both ``/metricsz`` forms)."""
        return obs.Metrics.merged([obs.GLOBAL_METRICS, self.metrics])

    def metricsz(self) -> Dict[str, Any]:
        """The ``/metricsz`` payload: the service registry folded with
        the process-global one, in flat ``metrics.json`` form."""
        return self.metrics_registry().to_dict()

"""The reliability-query service: cache, coalescing, admission control.

:class:`ReliabilityService` is the protocol-agnostic core behind the
HTTP front end (and behind in-process callers like the benchmark
harness).  A point query flows through three layers, cheapest first:

1. the TTL'd LRU **result cache**, keyed by the engine's stable
   config+params hash — a hit costs a dict copy;
2. the **in-flight table** — a second request for a key already being
   solved awaits the first one's future instead of solving again;
3. the **coalescing batcher** — admitted points group by spec hash and
   solve as one stacked GTH elimination
   (:class:`~repro.serve.batcher.CoalescingBatcher`).

Monte-Carlo points, availability profiles and axis sweeps do not batch
(their cost profile is different); they run on a single auxiliary worker
thread behind their own admission bound, so a burst of expensive
requests sheds with 429 instead of starving the chain solves.

Every answer is bitwise identical to the corresponding direct
:func:`repro.evaluate` call — the service only re-routes *where* the
same floats are computed, never *how*.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from .. import obs
from ..engine.sweep import Axis, SweepEngine
from ..models.availability import AvailabilityModel
from ..models.metrics import ReliabilityResult
from ..models.parameters import Parameters
from .batcher import CoalescingBatcher, Overloaded
from .protocol import PointQuery, SweepQuery, point_response
from .ttl_cache import TTLCache

__all__ = ["ReliabilityService", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob in one immutable bag.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port).
        max_batch_size: close a solve batch at this many points.
        max_wait_us: close a solve batch this many microseconds after its
            first point arrived — the latency traded for throughput.
        queue_depth: admission bound on queued (un-batched) points;
            beyond it, requests shed with 429.
        retry_after_s: the ``Retry-After`` hint sent with a 429.
        cache_size: result-cache entry cap (0 disables caching).
        cache_ttl_s: result-cache entry lifetime (None = no expiry).
        aux_depth: admission bound on queued auxiliary work (Monte Carlo,
            availability profiles, sweeps).
        base_params: baseline :class:`Parameters` that request-level
            overrides apply to (the paper's Section 6 baseline when
            omitted).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch_size: int = 64
    max_wait_us: int = 2_000
    queue_depth: int = 1024
    retry_after_s: float = 1.0
    cache_size: int = 4096
    cache_ttl_s: Optional[float] = 300.0
    aux_depth: int = 8
    base_params: Optional[Parameters] = field(default=None, repr=False)

    def with_overrides(self, **changes: Any) -> "ServeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class ReliabilityService:
    """Answers validated reliability queries; owns cache + batcher.

    Use as an async context manager (or call :meth:`start` /
    :meth:`stop` explicitly) so the batcher's consumer task exists::

        service = ReliabilityService(ServeConfig())
        async with service:
            answers = await service.evaluate(queries)
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        metrics: Optional[obs.Metrics] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else obs.Metrics()
        self.base_params = (
            self.config.base_params
            if self.config.base_params is not None
            else Parameters.baseline()
        )
        self.cache = TTLCache(
            self.config.cache_size,
            self.config.cache_ttl_s,
            metrics=self.metrics,
        )
        self.batcher = CoalescingBatcher(
            max_batch_size=self.config.max_batch_size,
            max_wait_us=self.config.max_wait_us,
            queue_depth=self.config.queue_depth,
            retry_after_s=self.config.retry_after_s,
            metrics=self.metrics,
        )
        # One worker: sweeps and Monte-Carlo runs share the engine's
        # solve context, which is not re-entrant across threads.
        self._aux = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-aux"
        )
        self._aux_pending = 0
        self._engine = SweepEngine(
            base_params=self.base_params, jobs=1, cache=False
        )
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._coalesced = self.metrics.counter("serve.inflight.coalesced")
        self._aux_gauge = self.metrics.gauge("serve.aux.pending")
        self._aux_shed = self.metrics.counter("serve.aux.shed")
        self._eval_requests = self.metrics.counter("serve.requests.evaluate")
        self._sweep_requests = self.metrics.counter("serve.requests.sweep")
        self.started_unix = time.time()
        self.draining = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the batcher on the running event loop."""
        self.batcher.start()

    async def stop(self) -> None:
        """Drain: answer everything admitted, then stop the workers."""
        self.draining = True
        await self.batcher.stop()
        self._aux.shutdown(wait=True)

    async def __aenter__(self) -> "ReliabilityService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # point evaluation
    # ------------------------------------------------------------------ #

    async def evaluate(
        self, queries: List[PointQuery]
    ) -> List[Dict[str, Any]]:
        """Answer every query (concurrently); raises on any failure.

        Raises:
            Overloaded: at least one point was shed and none failed for a
                worse reason — the whole request is retryable.
        """
        self._eval_requests.inc()
        if len(queries) == 1:
            return [await self.answer_point(queries[0])]
        outcomes = await asyncio.gather(
            *(self.answer_point(q) for q in queries), return_exceptions=True
        )
        overloaded: Optional[Overloaded] = None
        for outcome in outcomes:
            if isinstance(outcome, Overloaded):
                overloaded = overloaded or outcome
            elif isinstance(outcome, BaseException):
                raise outcome
        if overloaded is not None:
            raise overloaded
        return outcomes  # type: ignore[return-value]

    async def answer_point(self, query: PointQuery) -> Dict[str, Any]:
        """The JSON-ready answer for one point (cache → in-flight →
        batcher), raising :class:`Overloaded` when shed."""
        key = query.cache_key()
        hit = self.cache.get(key)
        if hit is not None:
            out = dict(hit)
            out["cached"] = True
            return out
        inflight = self._inflight.get(key)
        if inflight is not None:
            self._coalesced.inc()
            return dict(await asyncio.shield(inflight))
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        try:
            response = await self._compute_point(query)
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consumed: no zero-waiter warning
            raise
        else:
            future.set_result(response)
            self.cache.put(key, response)
            return dict(response)
        finally:
            self._inflight.pop(key, None)

    async def _compute_point(self, query: PointQuery) -> Dict[str, Any]:
        if query.method == "monte_carlo":
            result = await self._offload(lambda: self._monte_carlo(query))
        else:
            mttdl = await self.batcher.submit(
                query.config, query.params, query.method, query.options
            )
            result = ReliabilityResult.from_mttdl(mttdl, query.params)
        availability = None
        if query.recovery_hours is not None:
            availability = await self._offload(
                lambda: self._availability(query)
            )
        return point_response(
            query, result, cached=False, availability=availability
        )

    def _monte_carlo(self, query: PointQuery) -> ReliabilityResult:
        from ..core.solvers import SolveOptions
        from ..engine.facade import evaluate

        with obs.span(
            "serve.monte_carlo",
            config=query.config.key,
            replicas=query.replicas,
        ):
            return evaluate(
                query.config,
                query.params,
                options=SolveOptions(backend="monte_carlo"),
                replicas=query.replicas,
                seed=query.seed,
            )

    def _availability(self, query: PointQuery) -> Dict[str, float]:
        with obs.span("serve.availability", config=query.config.key):
            profile = AvailabilityModel(
                query.config, query.params, query.recovery_hours
            ).evaluate()
        return {
            "recovery_hours": query.recovery_hours,
            "fully_operational_fraction": profile.fully_operational_fraction,
            "degraded_fraction": profile.degraded_fraction,
            "post_loss_fraction": profile.post_loss_fraction,
            "degraded_hours_per_year": profile.degraded_hours_per_year,
        }

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #

    async def sweep(self, query: SweepQuery) -> Dict[str, Any]:
        """Answer one axis sweep through :class:`SweepEngine`."""
        self._sweep_requests.inc()

        def run() -> Any:
            with obs.span(
                "serve.sweep",
                axis=query.axis_name,
                configs=len(query.configs),
                values=len(query.values),
            ):
                return self._engine.sweep(
                    list(query.configs),
                    Axis(query.axis_name, query.values),
                    method=query.method,
                )

        result = await self._offload(run)
        by_config: Dict[str, Dict[str, List[float]]] = {}
        for point in result.points:
            entry = by_config.setdefault(
                point.config.key,
                {"mttdl_hours": [], "events_per_pb_year": []},
            )
            entry["mttdl_hours"].append(point.mttdl_hours)
            entry["events_per_pb_year"].append(point.events_per_pb_year)
        return {
            "axis": query.axis_name,
            "values": list(query.values),
            "method": query.method,
            "series": [
                {"config": key, **series} for key, series in by_config.items()
            ],
        }

    # ------------------------------------------------------------------ #
    # auxiliary work (single worker thread, bounded backlog)
    # ------------------------------------------------------------------ #

    async def _offload(self, fn) -> Any:
        if self.draining or self._aux_pending >= self.config.aux_depth:
            self._aux_shed.inc()
            raise Overloaded(self.config.retry_after_s)
        self._aux_pending += 1
        self._aux_gauge.set(self._aux_pending)
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._aux, fn
            )
        finally:
            self._aux_pending -= 1
            self._aux_gauge.set(self._aux_pending)

    # ------------------------------------------------------------------ #
    # introspection endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload."""
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.time() - self.started_unix, 3),
            "queue_depth": self.batcher.depth,
            "inflight": len(self._inflight),
            "cache_entries": len(self.cache),
        }

    def metricsz(self) -> Dict[str, Any]:
        """The ``/metricsz`` payload: the service registry folded with
        the process-global one, in flat ``metrics.json`` form."""
        return obs.Metrics.merged(
            [obs.GLOBAL_METRICS, self.metrics]
        ).to_dict()

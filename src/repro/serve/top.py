"""``repro-top`` — a live terminal dashboard for a running repro-serve.

Polls ``/metricsz`` (flat JSON snapshot) and ``/healthz`` over plain
HTTP and renders one screenful per interval: request rate and windowed
latency quantiles, per-shard batch activity, cache hit rates, SLO burn,
and worker liveness/restart counts.  Pure stdlib (``urllib``), pure
read-only — it observes exactly what any other scraper would see, so
the numbers here and in a Prometheus deployment are the same numbers.

``--once`` prints a single frame and exits (the CI smoke job runs this
against the live smoke server); the default loops until interrupted.
Rendering is a pure function of the two JSON payloads, so tests drive
:func:`render` directly with canned snapshots.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["build_parser", "fetch", "main", "render"]

#: Windowed-metric prefix the server's LiveTelemetry exports under.
_LIVE = "serve.live."


def fetch(base_url: str, timeout_s: float = 5.0) -> Tuple[Dict, Dict]:
    """One poll: (metricsz json, healthz json)."""
    out = []
    for path in ("/metricsz", "/healthz"):
        with urllib.request.urlopen(base_url + path, timeout=timeout_s) as r:
            out.append(json.load(r))
    return out[0], out[1]


def _fmt_ms(seconds: Any) -> str:
    if not isinstance(seconds, (int, float)):
        return "-"
    return f"{1e3 * seconds:.2f}"


def _fmt_rate(rate: Any) -> str:
    if not isinstance(rate, (int, float)):
        return "-"
    return f"{rate:.1f}"


def _window_block(metrics: Dict[str, Any], stem: str, window: str) -> Dict[str, Any]:
    prefix = f"{stem}.w{window}."
    return {
        k[len(prefix):]: v for k, v in metrics.items() if k.startswith(prefix)
    }


def _shard_labels(metrics: Dict[str, Any]) -> List[str]:
    labels = set()
    prefix = _LIVE + "shard."
    for key in metrics:
        if key.startswith(prefix):
            labels.add(key[len(prefix):].split(".", 1)[0])
    return sorted(labels, key=lambda s: (s.isdigit() and int(s) or 0, s))


def _cache_rates(metrics: Dict[str, Any]) -> List[Tuple[str, float, int]]:
    """(cache name, hit fraction, lookups) for every ``*.hits`` counter
    with a sibling ``*.misses``."""
    out = []
    for key, hits in sorted(metrics.items()):
        if not key.endswith(".hits"):
            continue
        stem = key[: -len(".hits")]
        misses = metrics.get(stem + ".misses")
        if not isinstance(hits, (int, float)):
            continue
        if not isinstance(misses, (int, float)):
            continue
        total = hits + misses
        if total > 0:
            out.append((stem, hits / total, int(total)))
    return out


def render(
    metrics: Dict[str, Any],
    health: Dict[str, Any],
    *,
    window: str = "10s",
) -> str:
    """One dashboard frame from a /metricsz + /healthz payload pair."""
    lines: List[str] = []
    version = health.get("version", "?")
    uptime = health.get("uptime_s")
    up = f"{uptime:.0f}s" if isinstance(uptime, (int, float)) else "?"
    lines.append(
        f"repro-top — repro-serve {version}  up {up}  "
        f"status {health.get('status', '?')}  window {window}"
    )

    req = _window_block(metrics, _LIVE + "request_s", window)
    queue = _window_block(metrics, _LIVE + "queue_wait_s", window)
    lines.append(
        f"  requests   {_fmt_rate(req.get('rate')):>8}/s   "
        f"p50 {_fmt_ms(req.get('p50')):>8}ms  "
        f"p95 {_fmt_ms(req.get('p95')):>8}ms  "
        f"p99 {_fmt_ms(req.get('p99')):>8}ms  "
        f"p999 {_fmt_ms(req.get('p999')):>8}ms"
    )
    lines.append(
        f"  queue wait {_fmt_rate(queue.get('rate')):>8}/s   "
        f"p50 {_fmt_ms(queue.get('p50')):>8}ms  "
        f"p95 {_fmt_ms(queue.get('p95')):>8}ms  "
        f"p99 {_fmt_ms(queue.get('p99')):>8}ms"
    )

    slo = health.get("slo")
    if isinstance(slo, dict):
        windows = slo.get("windows", {})
        burn = " ".join(
            f"{w}={windows[w].get('burn_rate', 0.0):.2f}"
            for w in ("1s", "10s", "60s")
            if isinstance(windows.get(w), dict)
        )
        lines.append(
            f"  slo        target {slo.get('target')}  "
            f"good {slo.get('good', 0)}  bad {slo.get('bad', 0)}  "
            f"burn[{burn}]"
        )

    aux = health.get("aux")
    if isinstance(aux, dict):
        advise = aux.get("advise")
        advise_part = (
            f"  advise {advise.get('pending', 0)}/{advise.get('depth', '?')}"
            f" (shed {advise.get('shed', 0)})"
            if isinstance(advise, dict)
            else ""
        )
        lines.append(
            f"  aux        depth {aux.get('depth', '?')}  "
            f"inflight {aux.get('inflight', 0)}  "
            f"queued {aux.get('queued', 0)}  "
            f"shed {aux.get('shed', 0)}{advise_part}"
        )

    shards = _shard_labels(metrics)
    if shards:
        lines.append("  shards:")
        for label in shards:
            stem = f"{_LIVE}shard.{label}"
            batch = _window_block(metrics, f"{stem}.batch_size", window)
            solve = _window_block(metrics, f"{stem}.solve_s", window)
            lines.append(
                f"    [{label:>6}] batches {_fmt_rate(batch.get('rate')):>7}/s"
                f"  avg size {batch.get('mean', 0) or 0:.1f}"
                f"  solve p95 {_fmt_ms(solve.get('p95')):>8}ms"
            )

    workers = health.get("workers")
    if isinstance(workers, list) and workers:
        lines.append("  workers:")
        now = time.time()
        for w in workers:
            last = w.get("last_crash")
            ago = (
                f"{now - last:.0f}s ago"
                if isinstance(last, (int, float))
                else "never"
            )
            lines.append(
                f"    [{w.get('index', '?'):>2}] "
                f"{'alive' if w.get('alive') else 'DOWN '}  "
                f"restarts {w.get('restart_count', w.get('restarts', 0))}  "
                f"last crash {ago}"
            )

    caches = _cache_rates(metrics)
    if caches:
        lines.append("  caches:")
        for name, rate, total in caches:
            lines.append(
                f"    {name:<40} {100 * rate:5.1f}% hit  ({total} lookups)"
            )

    sampling = health.get("trace_sampling")
    if isinstance(sampling, dict):
        lines.append(
            f"  sampling   rate {sampling.get('rate')}  "
            f"written {sampling.get('written', 0)} trees  "
            f"pending {sampling.get('pending', 0)}  "
            f"dropped {sampling.get('dropped', 0)}"
        )
    flight = health.get("flight_recorder")
    if isinstance(flight, dict):
        lines.append(
            f"  flight     dir {flight.get('directory')}  "
            f"dumps {flight.get('dumps', 0)}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live terminal dashboard for a running repro-serve.",
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="server base url (overrides --host/--port)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period in seconds (default 2)",
    )
    parser.add_argument(
        "--window",
        choices=("1s", "10s", "60s"),
        default="10s",
        help="which decaying window to display (default 10s)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (for scripts and CI)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    base = (
        args.url.rstrip("/")
        if args.url
        else f"http://{args.host}:{args.port}"
    )
    while True:
        try:
            metrics, health = fetch(base)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"repro-top: cannot poll {base}: {exc}", file=sys.stderr)
            return 1
        frame = render(metrics, health, window=args.window)
        if args.once:
            print(frame)
            return 0
        # ANSI clear + home keeps the frame in place like top(1).
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

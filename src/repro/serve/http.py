"""The stdlib-asyncio HTTP/1.1 front end.

A deliberately small server: JSON request bodies in, JSON responses out,
keep-alive connections, bounded header/body sizes, and nothing beyond
``asyncio.start_server``.  Routes::

    POST /v1/evaluate   single- or multi-point reliability queries
    POST /v1/sweep      one-axis sweeps over many configurations
    POST /v1/advise     design-space Pareto searches (the aux lane)
    GET  /healthz       liveness, SLO burn, queue/cache/worker/aux state
    GET  /metricsz      the flat metrics snapshot (serve.* + globals);
                        ``?format=prom`` switches to Prometheus text
                        exposition

Error mapping is uniform: a body that fails validation is a ``400`` with
the reason, an unknown path is ``404``, a wrong method ``405``, an
oversized body ``413``, admission-control shedding is ``429`` with a
``Retry-After`` header, and anything unexpected is a ``500`` (counted in
``serve.http.responses.5xx`` — the serve-smoke CI job asserts this stays
zero).

Graceful drain: on SIGTERM/SIGINT the listener closes (no new
connections), in-flight requests finish, the batcher solves everything
already admitted, and the process exits.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qsl

from .. import obs
from ..runtime import WorkerCrashed
from .batcher import Overloaded, synth_span
from .protocol import (
    ProtocolError,
    parse_advise_body,
    parse_evaluate_body,
    parse_sweep_body,
)
from .service import ReliabilityService, ServeConfig

__all__ = ["HttpServer", "run_server", "serving"]

logger = logging.getLogger("repro.serve.http")

#: Bounds on what a request may look like; beyond them the connection is
#: answered with an error and closed rather than buffered.
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 16 << 10
MAX_HEADER_COUNT = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        query: Optional[Dict[str, str]] = None,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query if query is not None else {}
        self.headers = headers
        self.body = body
        self.keep_alive = headers.get("connection", "").lower() != "close"


class _BadRequest(Exception):
    """A connection-level HTTP parse failure (status carried along)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpServer:
    """Serves one :class:`ReliabilityService` over HTTP.

    Args:
        service: the query service (started/stopped by this server).
        host / port: bind address; port 0 binds an ephemeral port, with
            the chosen one readable from :attr:`port` after
            :meth:`start`.
    """

    def __init__(
        self,
        service: ReliabilityService,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        metrics = service.metrics
        self._requests = metrics.counter("serve.http.requests")
        self._latency = metrics.histogram("serve.http.latency_s")
        self._classes = {
            c: metrics.counter(f"serve.http.responses.{c}")
            for c in ("2xx", "4xx", "429", "5xx")
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener and start the service's batcher."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: close the listener, finish in-flight
        requests, drain the batcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            await asyncio.gather(
                *tuple(self._connections), return_exceptions=True
            )
        await self.service.stop()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, close=True
                    )
                    break
                if request is None:
                    break
                status, payload, headers = await self._dispatch(request)
                keep = request.keep_alive and self.service.draining is False
                await self._write_response(
                    writer, status, payload, close=not keep, headers=headers
                )
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        start_line = await reader.readline()
        if not start_line:
            return None
        try:
            method, path, version = (
                start_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _BadRequest(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _BadRequest(400, f"unsupported protocol {version!r}")
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES or len(headers) > MAX_HEADER_COUNT:
                raise _BadRequest(400, "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            n = int(length)
        except ValueError:
            raise _BadRequest(400, "malformed Content-Length") from None
        if n < 0:
            raise _BadRequest(400, "malformed Content-Length")
        if n > MAX_BODY_BYTES:
            raise _BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(n) if n else b""
        route, _, raw_query = path.partition("?")
        query = dict(parse_qsl(raw_query)) if raw_query else {}
        return _Request(method.upper(), route, headers, body, query)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    async def _dispatch(
        self, request: _Request
    ) -> Tuple[int, Union[Dict[str, Any], str], Dict[str, str]]:
        self._requests.inc()
        t0 = time.monotonic()
        unix0 = time.time()
        headers: Dict[str, str] = {}
        points = 0
        # Filled in by _evaluate when the request is sampled / carries a
        # deadline; consumed after the wall-clock is known.
        req_info: Dict[str, Any] = {}
        payload: Union[Dict[str, Any], str]
        try:
            if request.path == "/healthz":
                status, payload = self._get_only(
                    request, lambda: self.service.health()
                )
            elif request.path == "/metricsz":
                status, payload = self._metricsz(request, headers)
            elif request.path == "/v1/evaluate":
                status, payload, points = await self._evaluate(
                    request, req_info
                )
            elif request.path == "/v1/sweep":
                status, payload, points = await self._sweep(request)
            elif request.path == "/v1/advise":
                status, payload, points = await self._advise(request)
            else:
                status, payload = 404, {"error": f"no route {request.path}"}
        except ProtocolError as exc:
            status, payload = 400, {"error": str(exc)}
        except Overloaded as exc:
            status = 429
            retry = max(1, round(exc.retry_after_s))
            headers["Retry-After"] = str(retry)
            payload = {
                "error": str(exc),
                "retry_after_s": exc.retry_after_s,
            }
        except WorkerCrashed as exc:
            # A shard worker died with this request in flight; the
            # runtime is already restarting it — the request is cleanly
            # retryable, so answer 503 + Retry-After rather than 500.
            logger.warning("shard worker crashed serving %s: %s", request.path, exc)
            status = 503
            retry = max(1, round(self.service.config.retry_after_s))
            headers["Retry-After"] = str(retry)
            payload = {
                "error": f"shard worker crashed; retry: {exc}",
                "retry_after_s": self.service.config.retry_after_s,
            }
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            logger.exception("unhandled error serving %s", request.path)
            status, payload = 500, {"error": f"internal error: {exc}"}
        wall = time.monotonic() - t0
        self._latency.observe(wall)
        self._classes[
            "429"
            if status == 429
            else f"{status // 100}xx"
            if status // 100 in (2, 4, 5)
            else "5xx"
        ].inc()
        live = self.service.live
        trace_id = req_info.get("trace_id")
        if live.enabled and request.path.startswith("/v1/"):
            # Record first, dump second: when a crash bubbles up as a
            # 503 the flight dump's last "request" entry must be the
            # request that observed it.
            live.record_request(
                status,
                wall,
                req_info.get("deadline_ms"),
                method=request.method,
                path=request.path,
                detail=req_info.get("detail"),
                trace_id=trace_id,
            )
            if status >= 500:
                live.dump_flight(f"http-{status}")
        if trace_id is not None:
            headers["X-Repro-Trace-Id"] = trace_id
            live.finish_trace(
                trace_id,
                synth_span(
                    "serve.request",
                    unix0,
                    wall,
                    method=request.method,
                    path=request.path,
                    status=status,
                    points=points,
                ),
            )
        if obs.tracing_active():
            obs.adopt_spans(
                [
                    synth_span(
                        "serve.request",
                        unix0,
                        wall,
                        method=request.method,
                        path=request.path,
                        status=status,
                        points=points,
                    )
                ]
            )
        return status, payload, headers

    @staticmethod
    def _get_only(request: _Request, fn) -> Tuple[int, Dict[str, Any]]:
        if request.method not in ("GET", "HEAD"):
            return 405, {"error": f"{request.path} accepts GET"}
        return 200, fn()

    def _metricsz(
        self, request: _Request, headers: Dict[str, str]
    ) -> Tuple[int, Union[Dict[str, Any], str]]:
        """``/metricsz``: the flat JSON snapshot, or Prometheus text
        exposition with ``?format=prom``."""
        if request.method not in ("GET", "HEAD"):
            return 405, {"error": f"{request.path} accepts GET"}
        fmt = request.query.get("format", "json")
        if fmt == "prom":
            text = obs.render_prom(self.service.metrics_registry())
            headers["Content-Type"] = obs.PROM_CONTENT_TYPE
            return 200, text
        if fmt != "json":
            return 400, {"error": f'unknown metrics format {fmt!r}'}
        return 200, self.service.metricsz()

    def _parse_json(self, request: _Request) -> Any:
        if request.method != "POST":
            raise ProtocolError(f"{request.path} accepts POST")
        try:
            return json.loads(request.body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from None

    async def _evaluate(
        self, request: _Request, req_info: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], int]:
        body = self._parse_json(request)
        with obs.span("serve.parse", path=request.path):
            queries = parse_evaluate_body(body, self.service.base_params)
        # Head-based sampling decision, made once per request before any
        # work is queued: the trace id rides every point of the request
        # through the batcher (and the shard pipe, in sharded mode) so
        # the worker ships its spans back for stitching.
        trace_id = self.service.live.sample(
            force=any(q.trace for q in queries)
        )
        if trace_id is not None:
            req_info["trace_id"] = trace_id
        default_deadline = self.service.config.default_deadline_ms
        deadlines = [
            q.deadline_ms if q.deadline_ms is not None else default_deadline
            for q in queries
        ]
        known = [d for d in deadlines if d is not None]
        if known:
            req_info["deadline_ms"] = min(known)
        req_info["detail"] = {
            "configs": sorted({q.config.key for q in queries})
        }
        answers = await self.service.evaluate(queries, trace_id=trace_id)
        with obs.span("serve.serialize", points=len(answers)):
            if isinstance(body, dict) and "points" in body:
                payload: Dict[str, Any] = {"results": answers}
            else:
                payload = answers[0]
        return 200, payload, len(queries)

    async def _sweep(
        self, request: _Request
    ) -> Tuple[int, Dict[str, Any], int]:
        body = self._parse_json(request)
        with obs.span("serve.parse", path=request.path):
            query = parse_sweep_body(body, self.service.base_params)
        payload = await self.service.sweep(query)
        return 200, payload, len(query.values) * len(query.configs)

    async def _advise(
        self, request: _Request
    ) -> Tuple[int, Dict[str, Any], int]:
        body = self._parse_json(request)
        with obs.span("serve.parse", path=request.path):
            query = parse_advise_body(body, self.service.base_params)
        payload = await self.service.advise(query)
        return 200, payload, query.request.space.size()

    # ------------------------------------------------------------------ #
    # response writing
    # ------------------------------------------------------------------ #

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], str],
        *,
        close: bool,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        extra = dict(headers or {})
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = extra.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = extra.pop("Content-Type", "application/json")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in extra.items():
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()


class serving:
    """Async context manager: a started server on an ephemeral port.

    The in-process harness used by tests, the smoke check and the
    benchmark::

        async with serving(ServeConfig(port=0)) as server:
            ... talk to ("127.0.0.1", server.port) ...
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig(port=0)
        self.service = ReliabilityService(self.config)
        self.server = HttpServer(self.service)

    async def __aenter__(self) -> HttpServer:
        await self.server.start()
        return self.server

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.server.stop()


async def run_server(
    config: Optional[ServeConfig] = None,
    *,
    shutdown: Optional[asyncio.Event] = None,
    ready=None,
) -> None:
    """Run a server until ``shutdown`` is set (or SIGTERM/SIGINT).

    Args:
        config: serving knobs (defaults throughout when omitted).
        shutdown: external stop signal; one is created (and wired to
            SIGTERM/SIGINT when the platform allows) when omitted.
        ready: optional callback invoked with the started
            :class:`HttpServer` once the port is bound.
    """
    service = ReliabilityService(config)
    server = HttpServer(service)
    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if shutdown is None:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await server.start()
    try:
        if ready is not None:
            ready(server)
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop()

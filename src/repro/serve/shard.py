"""Spec-hash shard routing for the multi-process serve topology.

A sharded server runs N forked solver workers; every point query is
routed to exactly one of them by its model's content address, so each
worker only ever compiles (and caches) its own slice of the spec space:

* ``analytic`` points route on ``spec_for_key(config).spec_hash`` — the
  same content address the compiled-spec cache uses, so all points of a
  chain family land on the worker holding that family's compiled chain;
* other methods (today ``closed_form``) have no compiled spec, so they
  route on a stable digest of the config key — deterministic, and spread
  across workers.

Routing is pure arithmetic on strings available at admission time: the
front end never compiles anything.  The nine standard configurations
cover every residue at four shards for both routes, so a 4-worker server
exercises all of its workers under the standard loadgen mixes.
"""

from __future__ import annotations

from ..engine.keys import stable_digest
from ..models.specs import spec_for_key

__all__ = ["shard_index"]


def shard_index(config_key: str, method: str, num_shards: int) -> int:
    """The worker index serving ``(config_key, method)`` points."""
    if num_shards <= 1:
        return 0
    if method == "analytic":
        digest = spec_for_key(config_key).spec_hash
    else:
        digest = stable_digest(["serve-shard", config_key])
    return int(digest[:12], 16) % num_shards

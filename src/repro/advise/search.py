"""Pareto-frontier search over a declarative design space.

:func:`advise` is the inversion of ``repro.evaluate``: instead of
"how reliable is this design?", it answers "which designs should I
buy?".  Every candidate in the request's
:class:`~repro.models.SearchSpace` is priced by the
:class:`~repro.advise.cost.CostModel` and evaluated through one
batched :class:`~repro.engine.SweepEngine` pass — spec-hash
memoization and stacked binds make thousand-candidate searches cheap,
and every reliability number is bitwise-equal to a direct
``repro.evaluate()`` of that point.

The search minimizes three objectives simultaneously — annual cost,
data-loss events per PB-year, storage overhead — and returns the
non-dominated (Pareto) frontier of the *feasible* candidates, i.e.
those meeting the reliability target and any budget/capacity bounds.
Determinism contract: candidates whose objective vectors are exactly
equal are deduplicated by a seeded hash rank
(``sha256(f"{seed}:{config.key}:{params.cache_key()}")``), so a fixed
seed yields a bitwise-identical frontier regardless of enumeration
order; the frontier itself is returned sorted by ascending objective
vector.
"""

from __future__ import annotations

import bisect
import hashlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..engine.keys import point_key
from ..engine.result import EngineProvenance
from ..engine.sweep import SweepEngine
from ..models.metrics import ReliabilityResult
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from ..models.space import SpacePoint
from .cost import CostBreakdown
from .request import AdviseRequest

__all__ = [
    "AdviseResult",
    "Candidate",
    "advise",
    "dominates",
    "pareto_indices",
]

#: Minimum drives per node for each internal RAID level (a RAID 5 group
#: needs a peer to rebuild from; RAID 6 needs two).
_MIN_DRIVES = {InternalRaid.RAID5: 2, InternalRaid.RAID6: 3}


# --------------------------------------------------------------------- #
# dominance
# --------------------------------------------------------------------- #


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (all objectives minimized):
    no-worse everywhere and strictly better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_indices(
    vectors: Sequence[Sequence[float]], ranks: Sequence[str]
) -> List[int]:
    """Indices of the non-dominated members of ``vectors`` (3-objective
    minimization), sorted by ascending objective vector.

    Exactly-equal vectors are deduplicated first, keeping the index with
    the smallest ``rank`` — with seeded hash ranks this makes the result
    independent of input order.  The scan itself is the classic sorted
    staircase: after sorting unique vectors ascending, a vector is
    non-dominated iff no already-kept vector at no-greater cost has both
    no-greater events and no-greater overhead; the staircase of kept
    (events, overhead) pairs is strictly decreasing in overhead, so each
    test and insertion is a bisect.  Transitivity of dominance makes
    checking against kept frontier members alone sufficient.
    """
    best: Dict[Tuple[float, ...], int] = {}
    for i, vec in enumerate(vectors):
        key = tuple(vec)
        j = best.get(key)
        if j is None or ranks[i] < ranks[j]:
            best[key] = i
    order = sorted((tuple(vectors[i]), i) for i in best.values())
    front: List[int] = []
    # Staircase over (events, overhead) for the kept vectors, sorted by
    # events ascending / overhead strictly descending.
    stair: List[Tuple[float, float]] = []
    for vec, i in order:
        _, e, o = vec
        ins = bisect.bisect_left(stair, (e, o))
        if ins > 0 and stair[ins - 1][1] <= o:
            continue  # an earlier entry has <= events and <= overhead
        if ins < len(stair) and stair[ins] == (e, o):
            continue  # same (events, overhead) at lower cost already kept
        while ins < len(stair) and stair[ins][1] >= o:
            stair.pop(ins)  # now dominated by the incoming vector
        stair.insert(ins, (e, o))
        front.append(i)
    return front


# --------------------------------------------------------------------- #
# candidates and results
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Candidate:
    """One fully-evaluated design candidate."""

    config: Any
    coords: Tuple[Tuple[str, Any], ...]
    params: Parameters
    result: ReliabilityResult
    cost: CostBreakdown
    objectives: Tuple[float, float, float]
    feasible: bool
    violations: Tuple[str, ...]
    tie_rank: str
    key: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.key,
            "label": self.config.label,
            "coords": {name: value for name, value in self.coords},
            "params": self.params.to_dict(),
            "params_key": self.params.cache_key(),
            "point_key": self.key,
            "objectives": list(self.objectives),
            "cost": self.cost.to_dict(),
            "reliability": {
                "mttdl_hours": self.result.mttdl_hours,
                "mttdl_years": self.result.mttdl_years,
                "events_per_pb_year": self.result.events_per_pb_year,
                "meets_target": self.result.meets_target,
            },
            "feasible": self.feasible,
            "violations": list(self.violations),
            "tie_rank": self.tie_rank,
        }


@dataclass(frozen=True)
class AdviseResult:
    """A completed search: the frontier plus full accounting."""

    request: AdviseRequest
    base_params_key: str
    evaluated: int
    skipped: int
    feasible_count: int
    dominated_count: int
    frontier: Tuple[Candidate, ...]
    recommended: Optional[Candidate]
    provenance: EngineProvenance
    elapsed_s: float

    def to_dict(self) -> Dict[str, Any]:
        prov = self.provenance
        spec_total = prov.spec_hits + prov.spec_misses
        return {
            "kind": "repro-advise-result",
            "version": 1,
            "request": self.request.to_dict(),
            "base_params_key": self.base_params_key,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "feasible": self.feasible_count,
            "dominated": self.dominated_count,
            "frontier": [c.to_dict() for c in self.frontier],
            "recommended": (
                self.recommended.to_dict() if self.recommended else None
            ),
            "provenance": {
                "method": prov.method,
                "jobs": prov.jobs,
                "cache_enabled": prov.cache_enabled,
                "spec_hits": prov.spec_hits,
                "spec_misses": prov.spec_misses,
                "spec_hit_rate": (
                    prov.spec_hits / spec_total if spec_total else 0.0
                ),
                "array_hits": prov.array_hits,
                "array_misses": prov.array_misses,
                "spec_hashes": list(prov.spec_hashes),
                "engine": prov.engine,
            },
            "elapsed_s": self.elapsed_s,
        }


# --------------------------------------------------------------------- #
# the search
# --------------------------------------------------------------------- #


def _tie_rank(seed: int, point: SpacePoint) -> str:
    material = f"{seed}:{point.config.key}:{point.params.cache_key()}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def advise(
    request: AdviseRequest,
    *,
    base_params: Optional[Parameters] = None,
    engine: Optional[SweepEngine] = None,
) -> AdviseResult:
    """Run one design-space search.

    Args:
        request: the declarative search description.
        base_params: baseline every candidate perturbs; defaults to the
            engine's baseline (or the paper's Section 6 baseline).
        engine: a :class:`SweepEngine` to evaluate through — pass a
            long-lived one to reuse its compiled-spec memo across
            searches (this is what the serving layer does).
    """
    started = time.perf_counter()
    if engine is None:
        engine = SweepEngine(
            base_params=base_params, jobs=1, cache=False
        )
    base = base_params if base_params is not None else engine.base_params
    registry = obs.global_metrics()
    registry.counter("advise.requests").inc()
    with obs.span(
        "advise.search",
        candidates=request.space.size(),
        seed=request.seed,
        method=request.method,
    ) as search_span:
        with obs.span("advise.enumerate"):
            points, skipped = request.space.grid(base)
            admissible: List[SpacePoint] = []
            for point in points:
                min_d = _MIN_DRIVES.get(point.config.internal, 1)
                if point.params.drives_per_node < min_d:
                    skipped += 1
                    continue
                admissible.append(point)
        with obs.span("advise.evaluate", points=len(admissible)):
            results = engine.evaluate_many(
                [(p.config, p.params) for p in admissible],
                method=request.method,
            )
        with obs.span("advise.cost"):
            candidates: List[Candidate] = []
            for point, result in zip(admissible, results):
                cost = request.cost_model.breakdown(point.config, point.params)
                violations = []
                if not (
                    result.events_per_pb_year
                    < request.target_events_per_pb_year
                ):
                    violations.append("reliability-target")
                if (
                    request.max_annual_cost is not None
                    and cost.total > request.max_annual_cost
                ):
                    violations.append("budget")
                if (
                    request.min_usable_pb is not None
                    and cost.usable_pb < request.min_usable_pb
                ):
                    violations.append("capacity")
                candidates.append(
                    Candidate(
                        config=point.config,
                        coords=point.coords,
                        params=point.params,
                        result=result,
                        cost=cost,
                        objectives=(
                            cost.total,
                            result.events_per_pb_year,
                            cost.storage_overhead,
                        ),
                        feasible=not violations,
                        violations=tuple(violations),
                        tie_rank=_tie_rank(request.seed, point),
                        key=point_key(
                            point.config, point.params, request.method
                        ),
                    )
                )
        with obs.span("advise.frontier"):
            feasible = [c for c in candidates if c.feasible]
            front_idx = pareto_indices(
                [c.objectives for c in feasible],
                [c.tie_rank for c in feasible],
            )
            frontier = tuple(feasible[i] for i in front_idx)
            recommended = (
                min(feasible, key=lambda c: (c.objectives, c.tie_rank))
                if feasible
                else None
            )
        registry.counter("advise.candidates").inc(len(candidates))
        registry.counter("advise.skipped").inc(skipped)
        registry.counter("advise.frontier.points").inc(len(frontier))
        search_span.set("evaluated", len(candidates))
        search_span.set("frontier", len(frontier))
    return AdviseResult(
        request=request,
        base_params_key=base.cache_key(),
        evaluated=len(candidates),
        skipped=skipped,
        feasible_count=len(feasible),
        dominated_count=len(feasible) - len(frontier),
        frontier=frontier,
        recommended=recommended,
        provenance=engine.provenance(request.method),
        elapsed_s=time.perf_counter() - started,
    )

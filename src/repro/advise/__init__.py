"""Design-space optimizer: invert the reliability model.

Given a reliability target, a cost model and a declarative search
space, :func:`advise` finds the Pareto frontier of annual cost vs.
data-loss events per PB-year vs. storage overhead — every candidate
evaluated through the memoized sweep engine, bitwise-identically to
``repro.evaluate()``.  Served online as ``POST /v1/advise`` and on the
command line as ``repro-advise``; see ``docs/advise.md``.
"""

from .cost import CostBreakdown, CostError, CostModel
from .request import (
    DEFAULT_AXES,
    MAX_ADVISE_CANDIDATES,
    AdviseError,
    AdviseRequest,
)
from .search import (
    AdviseResult,
    Candidate,
    advise,
    dominates,
    pareto_indices,
)

__all__ = [
    "DEFAULT_AXES",
    "MAX_ADVISE_CANDIDATES",
    "AdviseError",
    "AdviseRequest",
    "AdviseResult",
    "Candidate",
    "CostBreakdown",
    "CostError",
    "CostModel",
    "advise",
    "dominates",
    "pareto_indices",
]

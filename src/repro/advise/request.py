"""The optimizer's input contract: what to search for, under what rules.

An :class:`AdviseRequest` bundles the declarative pieces — a
:class:`~repro.models.SearchSpace` of candidate designs, a
:class:`~repro.advise.cost.CostModel`, a reliability target (the
paper's 2e-3 events/PB-year by default) and optional budget/capacity
constraints — plus the ``seed`` that pins deterministic tie-breaking.
The same request object serves the `repro-advise` CLI and the online
``POST /v1/advise`` route, so the two paths cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR
from ..models.space import ParamAxis, SearchSpace
from .cost import CostModel

__all__ = [
    "DEFAULT_AXES",
    "MAX_ADVISE_CANDIDATES",
    "AdviseError",
    "AdviseRequest",
]

#: Hard cap on a single search's pre-skip grid cardinality: large enough
#: for thousand-candidate production searches, small enough that one
#: request cannot wedge the aux lane for minutes.
MAX_ADVISE_CANDIDATES = 10_000

#: Default swept axes when a request names none: the paper's Section 6
#: redundancy-set sweep.
DEFAULT_AXES = (ParamAxis("redundancy_set_size", (6, 8, 12)),)


class AdviseError(ValueError):
    """A malformed advise request."""


def _default_space() -> SearchSpace:
    return SearchSpace(axes=DEFAULT_AXES)


@dataclass(frozen=True)
class AdviseRequest:
    """One design-space search.

    Attributes:
        space: candidate grid (configurations x parameter axes).
        cost_model: pricing for the cost objective.
        target_events_per_pb_year: reliability target; candidates at or
            above it are marked infeasible (the paper's 2e-3 default).
        max_annual_cost: optional budget constraint ($/year).
        min_usable_pb: optional minimum user-visible capacity (PB).
        seed: deterministic tie-break seed — equal-objective candidates
            are deduplicated by seeded hash rank, so a fixed seed makes
            the whole search bitwise reproducible.
        method: evaluation method ("analytic" or "closed_form").
    """

    space: SearchSpace = field(default_factory=_default_space)
    cost_model: CostModel = field(default_factory=CostModel)
    target_events_per_pb_year: float = PAPER_TARGET_EVENTS_PER_PB_YEAR
    max_annual_cost: Optional[float] = None
    min_usable_pb: Optional[float] = None
    seed: int = 0
    method: str = "analytic"

    def __post_init__(self) -> None:
        if not isinstance(self.space, SearchSpace):
            raise AdviseError("space must be a SearchSpace")
        if not isinstance(self.cost_model, CostModel):
            raise AdviseError("cost_model must be a CostModel")
        target = self.target_events_per_pb_year
        if (
            not isinstance(target, (int, float))
            or isinstance(target, bool)
            or not target > 0
        ):
            raise AdviseError(
                f"target_events_per_pb_year must be > 0, got {target!r}"
            )
        object.__setattr__(self, "target_events_per_pb_year", float(target))
        for name in ("max_annual_cost", "min_usable_pb"):
            bound = getattr(self, name)
            if bound is None:
                continue
            if (
                not isinstance(bound, (int, float))
                or isinstance(bound, bool)
                or not bound > 0
            ):
                raise AdviseError(f"{name} must be > 0, got {bound!r}")
            object.__setattr__(self, name, float(bound))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise AdviseError(f"seed must be an integer, got {self.seed!r}")
        method = str(self.method).lower()
        aliases = {"exact": "analytic", "approx": "closed_form"}
        method = aliases.get(method, method)
        if method not in ("analytic", "closed_form"):
            raise AdviseError(
                f"method must be 'analytic' or 'closed_form', "
                f"got {self.method!r}"
            )
        object.__setattr__(self, "method", method)
        size = self.space.size()
        if size < 1:
            raise AdviseError("search space is empty")
        if size > MAX_ADVISE_CANDIDATES:
            raise AdviseError(
                f"search space has {size} candidates; "
                f"the limit is {MAX_ADVISE_CANDIDATES}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "space": self.space.to_dict(),
            "cost_model": self.cost_model.to_dict(),
            "target_events_per_pb_year": self.target_events_per_pb_year,
            "max_annual_cost": self.max_annual_cost,
            "min_usable_pb": self.min_usable_pb,
            "seed": self.seed,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdviseRequest":
        """Parse the JSON request body; rejects unknown fields."""
        if not isinstance(payload, Mapping):
            raise AdviseError("advise request must be an object")
        known = {
            "space",
            "cost_model",
            "target_events_per_pb_year",
            "max_annual_cost",
            "min_usable_pb",
            "seed",
            "method",
        }
        unknown = set(payload) - known
        if unknown:
            raise AdviseError(
                f"unknown advise field(s): {sorted(unknown)}"
            )
        kwargs: Dict[str, Any] = {}
        if "space" in payload:
            kwargs["space"] = SearchSpace.from_dict(payload["space"])
        if "cost_model" in payload:
            kwargs["cost_model"] = CostModel.from_dict(payload["cost_model"])
        for name in (
            "target_events_per_pb_year",
            "max_annual_cost",
            "min_usable_pb",
            "seed",
            "method",
        ):
            if name in payload:
                kwargs[name] = payload[name]
        return cls(**kwargs)

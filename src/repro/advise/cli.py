"""``repro-advise`` — search a design space for the Pareto frontier.

Examples::

    # the paper's nine configurations x the Section 6 R sweep, priced
    # with the default cost model against the 2e-3 target:
    repro-advise

    # a bigger search with a budget, JSON + trace artifacts:
    repro-advise --ft 1,2,3 --internal none,raid5,raid6 \\
        --axis redundancy_set_size=6,8,10,12 \\
        --axis node_set_size=32,64 \\
        --axis scrub_interval_hours=168,730 \\
        --budget 2.5e6 --json advise.json --trace advise-trace.jsonl

    # override cost-model rates and the baseline parameters:
    repro-advise --cost drive_cost_per_year=120 --set drives_per_node=24
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, List, Optional, Tuple

from ..cli_common import (
    add_observability_arguments,
    apply_param_overrides,
    observed_session,
)
from ..models.parameters import Parameters
from ..models.space import (
    INTERNAL_BY_NAME,
    ConfigSpace,
    ParamAxis,
    SearchSpace,
    SpaceError,
)
from .cost import CostError, CostModel
from .request import DEFAULT_AXES, AdviseError, AdviseRequest
from .search import AdviseResult, advise

__all__ = ["main"]


def _parse_internal(raw: str, error: Callable[[str], None]) -> Tuple:
    levels = []
    for name in raw.split(","):
        name = name.strip().lower()
        if not name:
            continue
        if name not in INTERNAL_BY_NAME:
            error(
                f"unknown internal RAID level {name!r}; "
                "known: none, raid5, raid6"
            )
        levels.append(INTERNAL_BY_NAME[name])
    return tuple(levels)


def _parse_ints(raw: str, what: str, error: Callable[[str], None]) -> Tuple:
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(int(token))
        except ValueError:
            error(f"{what} must be comma-separated integers, got {token!r}")
    return tuple(values)


def _parse_axis(raw: str, error: Callable[[str], None]) -> ParamAxis:
    name, sep, rest = raw.partition("=")
    if not sep or not name:
        error(f"--axis needs NAME=V1,V2,..., got {raw!r}")
    values = []
    for token in rest.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            number = float(token)
        except ValueError:
            error(f"axis {name!r}: {token!r} is not a number")
            raise AssertionError  # unreachable; error() raises
        values.append(int(number) if number == int(number) else number)
    try:
        return ParamAxis(name.strip(), tuple(values))
    except SpaceError as exc:
        error(str(exc))
        raise AssertionError  # unreachable


def _parse_cost(
    assignments: List[str], error: Callable[[str], None]
) -> CostModel:
    overrides = {}
    for raw in assignments:
        name, sep, value = raw.partition("=")
        if not sep:
            error(f"--cost needs FIELD=VALUE, got {raw!r}")
        try:
            overrides[name.strip()] = float(value)
        except ValueError:
            error(f"cost field {name!r}: {value!r} is not a number")
    try:
        return CostModel.from_dict(overrides)
    except CostError as exc:
        error(str(exc))
        raise AssertionError  # unreachable


def format_frontier(result: AdviseResult) -> str:
    """The human-readable frontier table."""
    lines = [
        f"evaluated {result.evaluated} candidates "
        f"({result.skipped} infeasible combinations skipped); "
        f"{result.feasible_count} feasible, "
        f"{len(result.frontier)} on the Pareto frontier "
        f"({result.dominated_count} dominated)",
        "",
        f"{'config':<12} {'R':>3} {'N':>4} {'d':>3} "
        f"{'$/year':>12} {'events/PB-yr':>13} {'overhead':>9}  coords",
    ]
    for c in result.frontier:
        coords = ", ".join(
            f"{name}={value:g}"
            for name, value in c.coords
            if name != "redundancy_set_size"
        )
        marker = " *" if c is result.recommended else ""
        lines.append(
            f"{c.config.key:<12} {c.params.redundancy_set_size:>3} "
            f"{c.params.node_set_size:>4} {c.params.drives_per_node:>3} "
            f"{c.cost.total:>12,.0f} {c.result.events_per_pb_year:>13.3e} "
            f"{c.cost.storage_overhead:>8.2f}x  {coords}{marker}"
        )
    if result.recommended is not None:
        lines.append("")
        lines.append(
            f"recommended (*): {result.recommended.config.label}, "
            f"R={result.recommended.params.redundancy_set_size} — "
            f"${result.recommended.cost.total:,.0f}/year, "
            f"{result.recommended.result.events_per_pb_year:.3e} "
            f"events/PB-yr, "
            f"{result.recommended.cost.storage_overhead:.2f}x overhead"
        )
    else:
        lines.append("")
        lines.append("no feasible candidate meets every constraint")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-advise",
        description=(
            "Search (internal RAID x fault tolerance x parameter axes) "
            "for the Pareto frontier of annual cost vs. reliability vs. "
            "storage overhead, every candidate evaluated through the "
            "memoized sweep engine bitwise-identically to repro.evaluate."
        ),
    )
    parser.add_argument(
        "--internal",
        default="none,raid5,raid6",
        help="comma-separated internal RAID levels (none,raid5,raid6)",
    )
    parser.add_argument(
        "--ft",
        default="1,2,3",
        help="comma-separated cross-node fault tolerances",
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2",
        help=(
            "sweep a Parameters field or derived axis such as "
            "scrub_interval_hours (repeatable; default: "
            "redundancy_set_size=6,8,12)"
        ),
    )
    parser.add_argument(
        "--target",
        type=float,
        default=None,
        help="reliability target in events/PB-year (default: paper's 2e-3)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="maximum annual cost in $/year",
    )
    parser.add_argument(
        "--min-usable-pb",
        type=float,
        default=None,
        help="minimum user-visible capacity in PB",
    )
    parser.add_argument(
        "--cost",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a cost-model rate (repeatable)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="deterministic tie-break seed"
    )
    parser.add_argument(
        "--method",
        default="analytic",
        choices=("analytic", "closed_form", "exact", "approx"),
        help="evaluation method",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep-engine worker processes",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a base parameter (repeatable)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full result JSON here ('-': stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the frontier table"
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)

    base = apply_param_overrides(Parameters.baseline(), args.set, parser.error)
    internal = _parse_internal(args.internal, parser.error)
    tolerances = _parse_ints(args.ft, "--ft", parser.error)
    axes = (
        tuple(_parse_axis(raw, parser.error) for raw in args.axis)
        if args.axis
        else DEFAULT_AXES
    )
    try:
        space = SearchSpace(
            configs=ConfigSpace(
                internal_levels=internal, fault_tolerances=tolerances
            ),
            axes=axes,
        )
        request_kwargs = dict(
            space=space,
            cost_model=_parse_cost(args.cost, parser.error),
            max_annual_cost=args.budget,
            min_usable_pb=args.min_usable_pb,
            seed=args.seed,
            method=args.method,
        )
        if args.target is not None:
            request_kwargs["target_events_per_pb_year"] = args.target
        request = AdviseRequest(**request_kwargs)
    except (SpaceError, AdviseError, CostError) as exc:
        parser.error(str(exc))

    session = observed_session(args, root="repro-advise")
    with session if session is not None else contextlib.nullcontext():
        from ..engine import SweepEngine

        engine = SweepEngine(base_params=base, jobs=args.jobs, cache=False)
        try:
            result = advise(request, base_params=base, engine=engine)
        except SpaceError as exc:
            parser.error(str(exc))

        payload = result.to_dict()
        if args.json == "-":
            json.dump(payload, sys.stdout, sort_keys=True)
            sys.stdout.write("\n")
        elif args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, indent=2)
                fh.write("\n")
        if not args.quiet:
            print(format_frontier(result))
    return 0 if result.frontier else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The declarative cost model behind the design-space optimizer.

A :class:`CostModel` prices a candidate design (a configuration plus a
parameter set) into dollars per year across four terms:

* **drives** — every physical drive in the fleet (``N x d``);
* **nodes** — per-enclosure cost (chassis, CPU, power, rack share);
* **network** — provisioned per-node bandwidth, priced per Gb/s;
* **repair traffic** — expected rebuild bytes moved per year, priced
  per TB (the recurring operational cost of choosing weaker
  redundancy: more frequent full-set rebuilds), plus an optional
  ``fixed`` floor.

The repair-traffic term uses the same first-order failure-frequency
arithmetic as the paper's rebuild model: nodes fail at ``N / MTTF_node``
per year and each failure moves one reconstruction's worth of data —
``(R - t + 1)`` node images read/written across the redundancy set.
Without internal RAID, individual drive failures also escalate to
cross-node rebuilds (``N x d / MTTF_drive`` of them per year, one drive
image each); with internal RAID they are absorbed inside the node.

Capacity enters through ``storage_overhead``: the model reports
``usable_pb``, the user-visible capacity after both redundancy
dimensions take their cut, so a budget constraint and a minimum-capacity
constraint can push against each other on the frontier.

All rates are non-negative; violations raise :class:`CostError` naming
the field.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping

from ..models.configurations import Configuration
from ..models.parameters import HOURS_PER_YEAR, Parameters
from ..models.raid import InternalRaid
from ..models.space import storage_overhead

__all__ = ["CostBreakdown", "CostError", "CostModel"]


class CostError(ValueError):
    """A malformed cost model; the message names the offending field."""

    def __init__(self, field_name: str, message: str) -> None:
        super().__init__(f"cost field {field_name!r}: {message}")
        self.field = field_name


@dataclass(frozen=True)
class CostModel:
    """Annualized unit prices for the fleet cost terms.

    Defaults are deliberately round commodity figures (a ~$450 drive
    amortized over five years, a ~$7.5k node ditto, cloud-ish transit
    and per-TB movement prices); real deployments should override them
    per request.
    """

    drive_cost_per_year: float = 90.0
    node_cost_per_year: float = 1500.0
    network_cost_per_gbps_year: float = 40.0
    repair_traffic_cost_per_tb: float = 2.0
    fixed_cost_per_year: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise CostError(f.name, f"must be a number, got {value!r}")
            if value < 0:
                raise CostError(f.name, f"must be >= 0, got {value!r}")
            object.__setattr__(self, f.name, float(value))

    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostModel":
        """Parse the JSON form; unknown fields raise :class:`CostError`."""
        if not isinstance(payload, Mapping):
            raise CostError("cost_model", "must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise CostError(sorted(unknown)[0], "unknown cost field")
        return cls(**dict(payload))

    # ------------------------------------------------------------------ #

    def repair_traffic_bytes_per_year(
        self, config: Configuration, params: Parameters
    ) -> float:
        """Expected cross-node rebuild traffic per year, in bytes."""
        n = params.node_set_size
        reconstruction_span = (
            params.redundancy_set_size - config.node_fault_tolerance + 1
        )
        node_failures = n * HOURS_PER_YEAR / params.node_mttf_hours
        traffic = node_failures * reconstruction_span * params.node_data_bytes
        if config.internal is InternalRaid.NONE:
            drive_failures = (
                n
                * params.drives_per_node
                * HOURS_PER_YEAR
                / params.drive_mttf_hours
            )
            traffic += (
                drive_failures * reconstruction_span * params.drive_data_bytes
            )
        return traffic

    def breakdown(
        self, config: Configuration, params: Parameters
    ) -> "CostBreakdown":
        """Price one candidate design."""
        n = params.node_set_size
        d = params.drives_per_node
        drives = self.drive_cost_per_year * n * d
        nodes = self.node_cost_per_year * n
        network = (
            self.network_cost_per_gbps_year * n * params.link_speed_bps / 1e9
        )
        traffic = self.repair_traffic_bytes_per_year(config, params)
        repair = self.repair_traffic_cost_per_tb * traffic / 1e12
        overhead = storage_overhead(
            config, params.redundancy_set_size, d
        )
        return CostBreakdown(
            drives=drives,
            nodes=nodes,
            network=network,
            repair=repair,
            fixed=self.fixed_cost_per_year,
            total=drives + nodes + network + repair + self.fixed_cost_per_year,
            storage_overhead=overhead,
            usable_pb=params.system_raw_bytes / overhead / 1e15,
            repair_traffic_tb_per_year=traffic / 1e12,
        )


@dataclass(frozen=True)
class CostBreakdown:
    """One candidate's priced terms (all $/year unless noted)."""

    drives: float
    nodes: float
    network: float
    repair: float
    fixed: float
    total: float
    storage_overhead: float
    usable_pb: float
    repair_traffic_tb_per_year: float

    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

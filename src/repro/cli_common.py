"""Helpers shared by the command-line entry points.

``repro-figures``, ``repro-validate`` and ``repro-verify`` all accept
``--set FIELD=VALUE`` overrides of the Section 6 baseline; the parsing
and type coercion live here so every CLI accepts exactly the same
spellings.
"""

from __future__ import annotations

import argparse
from typing import Callable, Iterable, Optional

from . import obs
from .models.parameters import Parameters

__all__ = [
    "add_observability_arguments",
    "apply_param_overrides",
    "observed_session",
]


def add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--metrics`` / ``--report`` flags.

    Every CLI accepts the same observability spellings; the flags are
    inert until at least one is given (tracing stays disabled and the hot
    paths pay only a boolean check).
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span trace of this run to PATH",
    )
    group.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write flat metrics JSON (counters/gauges/histograms) to PATH",
    )
    group.add_argument(
        "--report",
        action="store_true",
        help="print a per-phase timing tree and hot-span report to stderr",
    )


def observed_session(
    args: argparse.Namespace, root: str
) -> Optional["obs.TraceSession"]:
    """A :class:`repro.obs.TraceSession` for the parsed CLI flags.

    Returns ``None`` when no observability flag was given, so callers can
    guard with ``contextlib.nullcontext`` and skip the tracer entirely.
    """
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    report = bool(getattr(args, "report", False))
    if not trace and not metrics and not report:
        return None
    return obs.trace(
        trace_path=trace, metrics_path=metrics, report=report, root=root
    )


def apply_param_overrides(
    params: Parameters,
    assignments: Iterable[str],
    error: Callable[[str], None],
) -> Parameters:
    """Apply ``FIELD=VALUE`` strings to ``params``.

    Values are coerced to the field's current type (ints stay ints), so
    ``--set node_set_size=128`` and ``--set drive_mttf_hours=7.5e5`` both
    work.  ``error`` is called with a message on a malformed assignment
    (argparse's ``parser.error`` raises SystemExit, matching the CLIs'
    existing behavior).
    """
    for override in assignments:
        field, _, raw = override.partition("=")
        if not raw:
            error(f"--set needs FIELD=VALUE, got {override!r}")
        try:
            current = getattr(params, field)
        except AttributeError:
            error(f"unknown parameter field {field!r}")
            raise  # unreachable when error() raises; keeps type-checkers honest
        value = (
            type(current)(float(raw)) if isinstance(current, (int, float)) else raw
        )
        params = params.replace(**{field: value})
    return params

"""Helpers shared by the command-line entry points.

``repro-figures``, ``repro-validate`` and ``repro-verify`` all accept
``--set FIELD=VALUE`` overrides of the Section 6 baseline; the parsing
and type coercion live here so every CLI accepts exactly the same
spellings.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .models.parameters import Parameters

__all__ = ["apply_param_overrides"]


def apply_param_overrides(
    params: Parameters,
    assignments: Iterable[str],
    error: Callable[[str], None],
) -> Parameters:
    """Apply ``FIELD=VALUE`` strings to ``params``.

    Values are coerced to the field's current type (ints stay ints), so
    ``--set node_set_size=128`` and ``--set drive_mttf_hours=7.5e5`` both
    work.  ``error`` is called with a message on a malformed assignment
    (argparse's ``parser.error`` raises SystemExit, matching the CLIs'
    existing behavior).
    """
    for override in assignments:
        field, _, raw = override.partition("=")
        if not raw:
            error(f"--set needs FIELD=VALUE, got {override!r}")
        try:
            current = getattr(params, field)
        except AttributeError:
            error(f"unknown parameter field {field!r}")
            raise  # unreachable when error() raises; keeps type-checkers honest
        value = (
            type(current)(float(raw)) if isinstance(current, (int, float)) else raw
        )
        params = params.replace(**{field: value})
    return params

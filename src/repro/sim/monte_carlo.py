"""Monte-Carlo MTTDL estimation.

Runs many independent replicas of the physical failure processes to the
first data-loss event and summarizes the absorption times.  At the
paper's baseline the MTTDL is millions of years, so direct simulation is
run with *accelerated* parameters (failure rates scaled up, the chains
solved with the same parameters) — agreement validates the chain
constructions; the analytic models then extrapolate to the real regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..runtime import run_chunks, split_chunks
from ..models.configurations import Configuration
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from .events import SimulationError, Simulator
from .processes import InternalRaidFailureProcess, NoRaidFailureProcess
from .rng import StreamFactory

__all__ = [
    "MonteCarloResult",
    "EventRateResult",
    "estimate_mttdl",
    "estimate_event_rate",
    "accelerated_parameters",
]


@dataclass(frozen=True)
class MonteCarloResult:
    """Summary of a Monte-Carlo MTTDL estimation.

    Attributes:
        mean_hours: sample mean time to data loss.
        std_error_hours: standard error of the mean.
        replicas: number of independent runs.
        loss_causes: tally of loss-cause tags across replicas.
    """

    mean_hours: float
    std_error_hours: float
    replicas: int
    loss_causes: Tuple[Tuple[str, int], ...]

    @property
    def ci95_hours(self) -> Tuple[float, float]:
        half = 1.96 * self.std_error_hours
        return (self.mean_hours - half, self.mean_hours + half)

    def ci_hours(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation confidence interval at any level.

        The replica times are i.i.d. and the replica counts used in
        practice are large enough for the CLT interval to be honest; the
        verification oracles use this to turn a seeded run into an
        agreement band of declared coverage.

        Args:
            confidence: two-sided coverage in (0, 1), e.g. 0.99.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        from scipy.stats import norm

        half = float(norm.ppf(0.5 + confidence / 2.0)) * self.std_error_hours
        return (self.mean_hours - half, self.mean_hours + half)

    def consistent_with(self, analytic_hours: float, sigmas: float = 4.0) -> bool:
        """Whether an analytic MTTDL lies within ``sigmas`` standard errors."""
        return abs(analytic_hours - self.mean_hours) <= sigmas * self.std_error_hours


def accelerated_parameters(
    params: Parameters, failure_scale: float = 50.0
) -> Parameters:
    """Scale failure rates up (MTTFs down) to make losses simulable.

    Rebuild rates are left alone, so the ratio ``mu / lambda`` shrinks by
    ``failure_scale`` — the chains are solved with the same accelerated
    parameters, so the comparison stays apples-to-apples.
    """
    if failure_scale <= 0:
        raise ValueError("failure_scale must be positive")
    return params.replace(
        node_mttf_hours=params.node_mttf_hours / failure_scale,
        drive_mttf_hours=params.drive_mttf_hours / failure_scale,
    )


def _run_replica(
    task: Tuple[Configuration, Parameters, int, int, str, int],
) -> Tuple[float, str]:
    """One independent replica: simulate to first loss.

    Module-level (picklable) so replicas fan out across a process pool.
    Replica ``i``'s stream seed depends only on ``(seed, i)`` — tuple
    hashing over ints is deterministic across processes — so any split
    of replicas over workers reproduces the serial run exactly.
    """
    config, params, seed, i, repair_distribution, max_events = task
    sim = Simulator()
    streams = StreamFactory(seed=hash((seed, i)) & 0x7FFFFFFF)
    process = _build_process(sim, config, params, streams, repair_distribution)
    sim.run(
        max_events=max_events,
        stop_when=lambda p=process: p.has_lost_data,
    )
    if not process.losses:
        raise RuntimeError(
            "replica ended without data loss; increase acceleration or "
            "max_events_per_replica"
        )
    event = process.losses[0]
    return event.time_hours, event.cause


def _run_replica_chunk(
    tasks: List[Tuple[Configuration, Parameters, int, int, str, int]],
) -> List[Tuple[float, str]]:
    """Pool-worker entry point: run a contiguous block of replicas.

    The runtime ships worker spans back and re-parents them under the
    caller's span automatically, so the chunk span here covers both the
    pooled and the in-process path (and is free when tracing is off).
    """
    with obs.span("sim.replica_chunk", replicas=len(tasks)):
        return [_run_replica(task) for task in tasks]


def estimate_mttdl(
    config: Configuration,
    params: Parameters,
    replicas: int = 200,
    seed: int = 0,
    repair_distribution: str = "exponential",
    max_events_per_replica: int = 5_000_000,
    jobs: int = 1,
) -> MonteCarloResult:
    """Estimate a configuration's MTTDL by repeated simulation to loss.

    Args:
        config: redundancy configuration to simulate.
        params: (typically accelerated) system parameters.
        replicas: independent runs; the standard error shrinks as
            ``1/sqrt(replicas)``.
        seed: master seed; replica ``i`` uses child seed ``seed + i``.
        repair_distribution: ``"exponential"`` (chain-faithful) or
            ``"deterministic"`` (ablation).
        max_events_per_replica: safety cap per run.
        jobs: replica fan-out width; each replica is seeded independently,
            so any ``jobs`` gives the identical estimate.

    Returns:
        A :class:`MonteCarloResult`.
    """
    if replicas < 2:
        raise ValueError("need at least two replicas for a standard error")
    tasks = [
        (config, params, seed, i, repair_distribution, max_events_per_replica)
        for i in range(replicas)
    ]
    with obs.span(
        "sim.estimate_mttdl", config=config.key, replicas=replicas, jobs=jobs
    ):
        chunks = split_chunks(tasks, max(1, jobs))
        with obs.span("sim.replicas", chunks=len(chunks)):
            outputs = run_chunks(_run_replica_chunk, chunks, max(1, jobs))
        times = np.empty(replicas)
        causes: dict = {}
        loss_hist = obs.global_metrics().histogram("sim.loss_hours")
        for i, (time_hours, cause) in enumerate(
            sample for chunk in outputs for sample in chunk
        ):
            times[i] = time_hours
            loss_hist.observe(time_hours)
            causes[cause] = causes.get(cause, 0) + 1
        obs.global_metrics().counter("sim.replicas").inc(replicas)
        mean = float(times.mean())
        sem = float(times.std(ddof=1) / math.sqrt(replicas))
        return MonteCarloResult(
            mean_hours=mean,
            std_error_hours=sem,
            replicas=replicas,
            loss_causes=tuple(sorted(causes.items())),
        )


@dataclass(frozen=True)
class EventRateResult:
    """Direct estimate of the paper's headline metric by renewal simulation.

    Attributes:
        events: total data-loss events observed.
        system_years: total simulated system-time in years.
        events_per_pb_year: the paper's normalized metric.
        events_per_system_year: un-normalized rate.
    """

    events: int
    system_years: float
    logical_pb: float

    @property
    def events_per_system_year(self) -> float:
        return self.events / self.system_years

    @property
    def events_per_pb_year(self) -> float:
        return self.events_per_system_year / self.logical_pb

    @property
    def rate_std_error(self) -> float:
        """Poisson standard error on events/PB-year."""
        return math.sqrt(max(self.events, 1)) / self.system_years / self.logical_pb


def estimate_event_rate(
    config: Configuration,
    params: Parameters,
    horizon_hours: float,
    seed: int = 0,
    repair_distribution: str = "exponential",
    max_events: int = 50_000_000,
) -> EventRateResult:
    """Estimate data-loss events per PB-year by renewal simulation.

    Unlike :func:`estimate_mttdl` (first-passage, fresh replicas), this
    runs one long horizon: after every data-loss event the system is
    restored to fully-operational (the manufacturer's field view — the
    customer restores from backup and carries on) and the clock keeps
    running.  This directly measures the paper's per-PB-year metric.

    Args:
        config: redundancy configuration.
        params: (typically accelerated) parameters.
        horizon_hours: total simulated time.
        seed: reproducibility seed.
        repair_distribution: repair-time distribution for the processes.
        max_events: kernel event cap.

    Returns:
        An :class:`EventRateResult`.
    """
    if horizon_hours <= 0:
        raise ValueError("horizon must be positive")
    from ..models.parameters import HOURS_PER_YEAR

    sim = Simulator()
    events = 0
    epoch = 0
    process = None

    def renew() -> None:
        nonlocal process, epoch
        streams = StreamFactory(seed=hash((seed, epoch)) & 0x7FFFFFFF)
        epoch += 1
        process = _build_process(
            sim, config, params, streams, repair_distribution
        )

    renew()
    remaining = max_events
    with obs.span(
        "sim.event_rate", config=config.key, horizon_hours=horizon_hours
    ) as rate_span:
        while sim.now < horizon_hours and remaining > 0:
            before = sim.events_processed
            try:
                sim.run(
                    until=horizon_hours,
                    max_events=remaining,
                    stop_when=lambda: process.has_lost_data,
                )
            except SimulationError:
                # Kernel event budget exhausted: report what we measured so
                # far over the time actually simulated.
                horizon_hours = sim.now
                break
            remaining -= sim.events_processed - before
            if process.has_lost_data and sim.now < horizon_hours:
                events += 1
                renew()  # instant restore, keep the clock running
            else:
                break
        rate_span.set("events", events)
        rate_span.set("kernel_events", sim.events_processed)
    return EventRateResult(
        events=events,
        system_years=horizon_hours / HOURS_PER_YEAR,
        logical_pb=params.system_logical_pb,
    )


def _build_process(
    sim: Simulator,
    config: Configuration,
    params: Parameters,
    streams: StreamFactory,
    repair_distribution: str,
):
    if config.internal is InternalRaid.NONE:
        return NoRaidFailureProcess(
            sim, params, config.node_fault_tolerance, streams, repair_distribution
        )
    return InternalRaidFailureProcess(
        sim,
        params,
        config.internal,
        config.node_fault_tolerance,
        streams,
        repair_distribution,
    )

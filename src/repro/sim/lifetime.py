"""Fleet-lifetime simulation: capacity aging under fail-in-place.

Section 3's service model never replaces failed components; instead the
installation is over-provisioned and, optionally, spare nodes are added
when utilization crosses a threshold.  This simulator ages a cluster
through drive and node failures (no data-loss modeling — that is the
Markov models' job) and records the capacity/utilization trajectory, so
operators can answer "how long until I must add bricks?" — the
complement of the provisioning math in :mod:`repro.cluster.spares`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cluster.entities import Cluster, DriveState, NodeState
from ..cluster.spares import SparePolicy
from ..models.parameters import Parameters
from .events import Simulator
from .rng import StreamFactory, exponential

__all__ = ["CapacitySample", "LifetimeResult", "simulate_lifetime"]


@dataclass(frozen=True)
class CapacitySample:
    """Point-in-time capacity snapshot.

    Attributes:
        time_hours: when the sample was taken.
        raw_capacity_bytes: surviving raw capacity.
        utilization: committed logical data / surviving raw capacity.
        nodes_available: healthy node count.
        nodes_added: cumulative spare nodes provisioned.
    """

    time_hours: float
    raw_capacity_bytes: float
    utilization: float
    nodes_available: int
    nodes_added: int


@dataclass
class LifetimeResult:
    """Trajectory of one lifetime simulation."""

    samples: List[CapacitySample] = field(default_factory=list)
    drive_failures: int = 0
    node_failures: int = 0
    nodes_added: int = 0

    @property
    def final_utilization(self) -> float:
        return self.samples[-1].utilization if self.samples else 0.0

    def first_time_above(self, utilization: float) -> Optional[float]:
        """First sample time at which utilization exceeded a level."""
        for s in self.samples:
            if s.utilization > utilization:
                return s.time_hours
        return None


def simulate_lifetime(
    params: Parameters,
    horizon_hours: float,
    seed: int = 0,
    spare_policy: Optional[SparePolicy] = None,
    sample_interval_hours: float = 24 * 30,
) -> LifetimeResult:
    """Age a cluster for ``horizon_hours`` and record capacity samples.

    Args:
        params: system parameters.
        horizon_hours: how long to simulate.
        seed: reproducibility seed.
        spare_policy: if given, applied at every sample point (adds nodes
            when utilization crosses the policy threshold).
        sample_interval_hours: trajectory sampling period.

    Returns:
        A :class:`LifetimeResult` with the full trajectory.
    """
    if horizon_hours <= 0:
        raise ValueError("horizon must be positive")
    if sample_interval_hours <= 0:
        raise ValueError("sample interval must be positive")

    sim = Simulator()
    streams = StreamFactory(seed)
    rng = streams.stream("lifetime")
    cluster = Cluster(params)
    result = LifetimeResult()

    def schedule_drive_failure(node_id: int, drive_id: int) -> None:
        delay = exponential(rng, params.drive_failure_rate)
        sim.schedule_after(delay, lambda: fail_drive(node_id, drive_id))

    def schedule_node_failure(node_id: int) -> None:
        delay = exponential(rng, params.node_failure_rate)
        sim.schedule_after(delay, lambda: fail_node(node_id))

    def fail_drive(node_id: int, drive_id: int) -> None:
        node = cluster.node(node_id)
        if node.state is NodeState.FAILED:
            return
        drive = node.drives[drive_id]
        if drive.state is not DriveState.HEALTHY:
            return
        drive.fail()
        node.restripe(drive_id)  # fail-in-place: retire immediately
        result.drive_failures += 1

    def fail_node(node_id: int) -> None:
        node = cluster.node(node_id)
        if node.state is NodeState.FAILED:
            return
        node.fail()
        result.node_failures += 1

    def arm_node(node_id: int) -> None:
        schedule_node_failure(node_id)
        node = cluster.node(node_id)
        for drive in node.drives:
            schedule_drive_failure(node_id, drive.drive_id)

    for node in cluster:
        arm_node(node.node_id)

    def take_sample() -> None:
        if spare_policy is not None:
            added = spare_policy.apply(cluster)
            result.nodes_added += added
            if added:
                new_ids = sorted(n.node_id for n in cluster)[-added:]
                for node_id in new_ids:
                    arm_node(node_id)
        result.samples.append(
            CapacitySample(
                time_hours=sim.now,
                raw_capacity_bytes=cluster.raw_capacity_bytes,
                utilization=cluster.utilization,
                nodes_available=cluster.available_count,
                nodes_added=result.nodes_added,
            )
        )
        if sim.now + sample_interval_hours <= horizon_hours:
            sim.schedule_after(sample_interval_hours, take_sample)

    take_sample()
    sim.run(until=horizon_hours)
    return result

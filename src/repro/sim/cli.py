"""Command-line validation harness: simulation vs analytic chains.

Installed as ``repro-validate``::

    repro-validate                     # default cases, 100 replicas
    repro-validate --replicas 300
    repro-validate --scale 30 --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..models.configurations import Configuration
from ..models.internal_raid import InternalRaidNodeModel
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from .monte_carlo import accelerated_parameters, estimate_mttdl

__all__ = ["main"]

DEFAULT_CASES = [
    Configuration(InternalRaid.NONE, 1),
    Configuration(InternalRaid.NONE, 2),
    Configuration(InternalRaid.RAID5, 1),
    Configuration(InternalRaid.RAID5, 2),
    Configuration(InternalRaid.RAID6, 2),
]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description=(
            "Validate the analytic Markov chains against physical "
            "discrete-event simulation at accelerated failure rates."
        ),
    )
    parser.add_argument("--replicas", type=int, default=100)
    parser.add_argument(
        "--scale",
        type=float,
        default=50.0,
        help="failure-rate acceleration factor (default 50)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--nodes", type=int, default=16, help="node set size for the runs"
    )
    args = parser.parse_args(argv)
    if args.replicas < 2:
        parser.error("need at least 2 replicas")
    if args.scale <= 0:
        parser.error("scale must be positive")

    base = Parameters.baseline().replace(
        node_set_size=args.nodes, redundancy_set_size=8
    )
    acc = accelerated_parameters(base, failure_scale=args.scale)
    print(
        f"acceleration x{args.scale:g}: drive MTTF {acc.drive_mttf_hours:.0f} h, "
        f"node MTTF {acc.node_mttf_hours:.0f} h; N = {acc.node_set_size}; "
        f"{args.replicas} replicas\n"
    )
    print(f"{'configuration':<26} {'simulated (h)':>14} {'chain (h)':>12} {'z':>7}")
    worst = 0.0
    for config in DEFAULT_CASES:
        mc = estimate_mttdl(config, acc, replicas=args.replicas, seed=args.seed)
        if config.internal is InternalRaid.NONE:
            analytic = config.mttdl_hours(acc)
        else:
            analytic = InternalRaidNodeModel(
                acc,
                config.internal,
                config.node_fault_tolerance,
                rates_method="exact",
            ).mttdl_exact()
        z = (analytic - mc.mean_hours) / mc.std_error_hours
        worst = max(worst, abs(z))
        print(
            f"{config.label:<26} {mc.mean_hours:>14.4g} {analytic:>12.4g} "
            f"{z:>+7.2f}"
        )
    print(f"\nworst |z| = {worst:.2f} "
          f"({'OK' if worst < 4 else 'investigate — beyond sampling error'})")
    return 0 if worst < 4 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

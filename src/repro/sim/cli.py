"""Command-line validation harness: simulation vs analytic chains.

Installed as ``repro-validate``::

    repro-validate                     # default cases, 100 replicas
    repro-validate --replicas 300
    repro-validate --scale 30 --seed 7
    repro-validate --jobs 4            # fan replicas out over processes
    repro-validate --no-cache          # always re-simulate

Replicas are independently seeded, so ``--jobs`` changes only wall-clock
time, never the estimates.  Finished estimates are cached on disk under
``.repro_cache/`` keyed by (configuration, parameters, replicas, seed),
so re-running the harness is instant; ``--no-cache`` bypasses that.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .. import obs
from ..cli_common import add_observability_arguments, observed_session
from ..engine.cache import DiskCache
from ..engine.keys import point_key
from ..runtime import default_jobs
from ..models.configurations import Configuration
from ..models.internal_raid import InternalRaidNodeModel
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from .monte_carlo import MonteCarloResult, accelerated_parameters, estimate_mttdl

__all__ = ["main"]

DEFAULT_CASES = [
    Configuration(InternalRaid.NONE, 1),
    Configuration(InternalRaid.NONE, 2),
    Configuration(InternalRaid.RAID5, 1),
    Configuration(InternalRaid.RAID5, 2),
    Configuration(InternalRaid.RAID6, 2),
]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description=(
            "Validate the analytic Markov chains against physical "
            "discrete-event simulation at accelerated failure rates."
        ),
    )
    parser.add_argument("--replicas", type=int, default=100)
    parser.add_argument(
        "--scale",
        type=float,
        default=50.0,
        help="failure-rate acceleration factor (default 50)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--nodes", type=int, default=16, help="node set size for the runs"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="processes for the replica fan-out (default: all CPUs)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (.repro_cache/)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="report jobs and cache hit rates on stderr",
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)
    if args.replicas < 2:
        parser.error("need at least 2 replicas")
    if args.scale <= 0:
        parser.error("scale must be positive")
    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    cache = None if args.no_cache else DiskCache()

    base = Parameters.baseline().replace(
        node_set_size=args.nodes, redundancy_set_size=8
    )
    acc = accelerated_parameters(base, failure_scale=args.scale)
    session = observed_session(args, root="repro-validate")
    with session if session is not None else contextlib.nullcontext():
        if session is not None and cache is not None:
            session.add_metrics_source(lambda: cache.metrics)
        print(
            f"acceleration x{args.scale:g}: drive MTTF {acc.drive_mttf_hours:.0f} h, "
            f"node MTTF {acc.node_mttf_hours:.0f} h; N = {acc.node_set_size}; "
            f"{args.replicas} replicas\n"
        )
        print(f"{'configuration':<26} {'simulated (h)':>14} {'chain (h)':>12} {'z':>7}")
        worst = 0.0
        for config in DEFAULT_CASES:
            with obs.span("validate.case", config=config.key) as case_span:
                mc = _estimate(config, acc, args.replicas, args.seed, jobs, cache)
                if config.internal is InternalRaid.NONE:
                    analytic = config.mttdl_hours(acc)
                else:
                    analytic = InternalRaidNodeModel(
                        acc,
                        config.internal,
                        config.node_fault_tolerance,
                        rates_method="exact",
                    ).mttdl_exact()
                z = (analytic - mc.mean_hours) / mc.std_error_hours
                case_span.set("z", z)
            worst = max(worst, abs(z))
            print(
                f"{config.label:<26} {mc.mean_hours:>14.4g} {analytic:>12.4g} "
                f"{z:>+7.2f}"
            )
        print(f"\nworst |z| = {worst:.2f} "
              f"({'OK' if worst < 4 else 'investigate — beyond sampling error'})")
        if args.verbose:
            cache_note = (
                f"disk cache {cache.hits} hits / {cache.misses} misses"
                if cache is not None
                else "disk cache off"
            )
            print(f"[repro-validate] jobs={jobs}; {cache_note}", file=sys.stderr)
    return 0 if worst < 4 else 1


def _estimate(
    config: Configuration,
    params: Parameters,
    replicas: int,
    seed: int,
    jobs: int,
    cache: Optional[DiskCache],
) -> MonteCarloResult:
    """Monte-Carlo estimate, through the disk cache when enabled."""
    key = None
    if cache is not None:
        key = point_key(
            config,
            params,
            "monte_carlo",
            extra={"replicas": replicas, "seed": seed},
        )
        payload = cache.get(key)
        if payload is not None and "mean_hours" in payload:
            return MonteCarloResult(
                mean_hours=float(payload["mean_hours"]),
                std_error_hours=float(payload["std_error_hours"]),
                replicas=int(payload["replicas"]),
                loss_causes=tuple(
                    (str(cause), int(count))
                    for cause, count in payload["loss_causes"]
                ),
            )
    mc = estimate_mttdl(config, params, replicas=replicas, seed=seed, jobs=jobs)
    if cache is not None and key is not None:
        cache.put(
            key,
            {
                "mean_hours": mc.mean_hours,
                "std_error_hours": mc.std_error_hours,
                "replicas": mc.replicas,
                "loss_causes": [list(item) for item in mc.loss_causes],
            },
        )
    return mc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Discrete-event simulation substrate.

An event kernel, reproducible random streams, physical failure/rebuild
processes mirroring the paper's assumptions, a Monte-Carlo MTTDL
estimator that validates the analytic chains, and a fleet-lifetime
capacity simulator for the fail-in-place provisioning story.
"""

from .entity_process import EntityNoRaidProcess, WeibullLifetime
from .events import EventHandle, EventQueue, SimulationError, Simulator
from .lifetime import CapacitySample, LifetimeResult, simulate_lifetime
from .monte_carlo import (
    EventRateResult,
    MonteCarloResult,
    accelerated_parameters,
    estimate_event_rate,
    estimate_mttdl,
)
from .processes import (
    DataLossEvent,
    InternalRaidFailureProcess,
    NoRaidFailureProcess,
)
from .rng import StreamFactory, bernoulli, exponential, phase_type
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "CapacitySample",
    "DataLossEvent",
    "EntityNoRaidProcess",
    "EventHandle",
    "EventQueue",
    "EventRateResult",
    "estimate_event_rate",
    "InternalRaidFailureProcess",
    "LifetimeResult",
    "MonteCarloResult",
    "NoRaidFailureProcess",
    "SimulationError",
    "Simulator",
    "StreamFactory",
    "TraceRecord",
    "TraceRecorder",
    "WeibullLifetime",
    "accelerated_parameters",
    "bernoulli",
    "estimate_mttdl",
    "exponential",
    "phase_type",
    "simulate_lifetime",
]

"""Per-entity failure simulation with non-exponential lifetimes.

The paper's Markov chains *require* exponential (memoryless) lifetimes.
Real drives are not memoryless: populations show infant mortality
(decreasing hazard) and wear-out (increasing hazard), usually modeled
with a Weibull distribution.  This module tests how much that assumption
matters: a no-internal-RAID system simulated with *per-entity* clocks —
each node and drive carries its own age and Weibull lifetime — instead of
the aggregate memoryless clock of
:class:`repro.sim.processes.NoRaidFailureProcess`.

With ``shape = 1`` Weibull reduces to exponential and this process is
statistically identical to the chain (the validation tests assert it);
``shape > 1`` models wear-out, ``shape < 1`` infant mortality, both
calibrated to the *same mean* MTTF so comparisons isolate the shape
effect.

Suspension semantics mirror the chains: a node with an outstanding
failure (its own, or one of its drives under rebuild) stops generating
failures; its entities' ages freeze, and on resume the remaining
lifetime is re-sampled from the conditional distribution given survival
to the frozen age (exact for any distribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..models.critical_sets import h_parameters
from ..models.parameters import Parameters
from ..models.rebuild import RebuildModel
from .events import EventHandle, SimulationError, Simulator
from .processes import DataLossEvent, _RepairClock
from .rng import StreamFactory, bernoulli, exponential

__all__ = ["WeibullLifetime", "EntityNoRaidProcess"]


@dataclass(frozen=True)
class WeibullLifetime:
    """Weibull lifetime distribution parameterized by its mean.

    Attributes:
        mean_hours: the MTTF (the distribution's mean, not its scale).
        shape: Weibull shape k; 1 = exponential, > 1 wear-out,
            < 1 infant mortality.
    """

    mean_hours: float
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_hours <= 0:
            raise ValueError("mean_hours must be positive")
        if self.shape <= 0:
            raise ValueError("shape must be positive")

    @property
    def scale(self) -> float:
        """Weibull scale lambda with mean = lambda * Gamma(1 + 1/k)."""
        return self.mean_hours / math.gamma(1.0 + 1.0 / self.shape)

    def sample(self, rng: np.random.Generator) -> float:
        """A fresh lifetime."""
        return float(self.scale * rng.weibull(self.shape))

    def sample_residual(self, rng: np.random.Generator, age: float) -> float:
        """Remaining lifetime given survival to ``age`` (inverse-CDF of the
        conditional distribution; exact for any age)."""
        if age < 0:
            raise ValueError("age must be non-negative")
        if age == 0:
            return self.sample(rng)
        u = float(rng.random())
        # P(T > age + r | T > age) = exp(((age/s)^k - ((age+r)/s)^k))
        base = (age / self.scale) ** self.shape
        total = (base - math.log(1.0 - u)) ** (1.0 / self.shape) * self.scale
        return total - age


class _Entity:
    """One failure-generating unit (a node or a drive) with a frozen-age
    suspension model."""

    def __init__(self, lifetime: WeibullLifetime) -> None:
        self.lifetime = lifetime
        self.age = 0.0
        self.active_since: Optional[float] = None
        self.event: Optional[EventHandle] = None

    def accrue(self, now: float) -> None:
        if self.active_since is not None:
            self.age += now - self.active_since
            self.active_since = None

    def cancel(self) -> None:
        if self.event is not None:
            self.event.cancel()
            self.event = None


class EntityNoRaidProcess:
    """No-internal-RAID system with per-entity (optionally Weibull) clocks.

    Args:
        sim: event clock.
        params: system parameters (supply the MTTFs = lifetime means).
        fault_tolerance: cross-node tolerance t.
        streams: random streams.
        node_shape: Weibull shape for node lifetimes.
        drive_shape: Weibull shape for drive lifetimes.
        repair_distribution: ``"exponential"`` or ``"deterministic"``.
        renew_on_repair: when True (default) a repaired failure puts a
            *fresh* entity in service (the spare-capacity view: the data
            now lives on different, not-necessarily-new hardware, so we
            reset the age); the chains correspond to shape 1 where the
            choice is immaterial.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Parameters,
        fault_tolerance: int,
        streams: StreamFactory,
        node_shape: float = 1.0,
        drive_shape: float = 1.0,
        repair_distribution: str = "exponential",
        renew_on_repair: bool = True,
        on_data_loss: Optional[Callable[[DataLossEvent], None]] = None,
    ) -> None:
        if fault_tolerance < 1:
            raise ValueError("fault_tolerance must be >= 1")
        if params.node_set_size <= fault_tolerance:
            raise ValueError("node set must exceed the fault tolerance")
        self._sim = sim
        self._p = params
        self._t = fault_tolerance
        self._rng = streams.stream("entity-failures")
        self._rng_repair = streams.stream("entity-repairs")
        self._rng_hard = streams.stream("entity-hard-errors")
        self._clock = _RepairClock(repair_distribution)
        self._renew = renew_on_repair
        self._on_loss = on_data_loss

        rebuild = RebuildModel(params)
        self._mu_n = rebuild.node_rebuild_rate(fault_tolerance)
        self._mu_d = rebuild.drive_rebuild_rate(fault_tolerance)
        self._h = h_parameters(params, fault_tolerance)

        node_lifetime = WeibullLifetime(params.node_mttf_hours, node_shape)
        drive_lifetime = WeibullLifetime(params.drive_mttf_hours, drive_shape)
        self._nodes: Dict[int, _Entity] = {}
        self._drives: Dict[Tuple[int, int], _Entity] = {}
        for node_id in range(params.node_set_size):
            self._nodes[node_id] = _Entity(node_lifetime)
            for drive_id in range(params.drives_per_node):
                self._drives[(node_id, drive_id)] = _Entity(drive_lifetime)

        # LIFO stack of outstanding failures: ("N", node) or ("d", node, drive).
        self._stack: List[Tuple] = []
        self._repair_event: Optional[EventHandle] = None
        self.losses: List[DataLossEvent] = []
        for node_id in self._nodes:
            self._activate_node(node_id)

    # ------------------------------------------------------------------ #

    @property
    def outstanding_failures(self) -> int:
        return len(self._stack)

    @property
    def failure_word(self) -> str:
        return "".join(entry[0] for entry in self._stack)

    @property
    def has_lost_data(self) -> bool:
        return bool(self.losses)

    def _suspended_nodes(self) -> set:
        return {entry[1] for entry in self._stack}

    # -- entity scheduling ---------------------------------------------- #

    def _activate_node(self, node_id: int) -> None:
        """(Re)arm a node's own clock and all its drive clocks."""
        now = self._sim.now
        node = self._nodes[node_id]
        node.active_since = now
        node.event = self._sim.schedule_after(
            node.lifetime.sample_residual(self._rng, node.age),
            lambda: self._on_entity_failure(("N", node_id)),
        )
        for drive_id in range(self._p.drives_per_node):
            drive = self._drives[(node_id, drive_id)]
            drive.active_since = now
            drive.event = self._sim.schedule_after(
                drive.lifetime.sample_residual(self._rng, drive.age),
                lambda d=drive_id: self._on_entity_failure(("d", node_id, d)),
            )

    def _suspend_node(self, node_id: int) -> None:
        """Freeze a node's clocks (it has an outstanding failure)."""
        now = self._sim.now
        node = self._nodes[node_id]
        node.accrue(now)
        node.cancel()
        for drive_id in range(self._p.drives_per_node):
            drive = self._drives[(node_id, drive_id)]
            drive.accrue(now)
            drive.cancel()

    # -- failure / repair ------------------------------------------------ #

    def _on_entity_failure(self, entry: Tuple) -> None:
        node_id = entry[1]
        if node_id in self._suspended_nodes():
            return  # stale event; suspension should have cancelled it
        if len(self._stack) >= self._t:
            self._record_loss(
                "failure-beyond-tolerance",
                f"{entry[0]} failure on node {node_id} with word "
                f"{self.failure_word!r}",
            )
            return
        self._suspend_node(node_id)
        self._stack.append(entry)
        if len(self._stack) == self._t:
            word = self.failure_word
            if bernoulli(self._rng_hard, self._h[word]):
                self._record_loss("hard-error-critical-rebuild", f"word {word!r}")
                return
        self._schedule_repair()

    def _schedule_repair(self) -> None:
        if self._repair_event is not None:
            self._repair_event.cancel()
            self._repair_event = None
        if not self._stack:
            return
        letter = self._stack[-1][0]
        rate = self._mu_n if letter == "N" else self._mu_d
        delay = self._clock.sample(self._rng_repair, rate)
        self._repair_event = self._sim.schedule_after(delay, self._on_repair)

    def _on_repair(self) -> None:
        if not self._stack:
            raise SimulationError("repair with empty stack")
        entry = self._stack.pop()
        self._repair_event = None
        node_id = entry[1]
        if self._renew:
            # Fresh hardware absorbs the data: reset ages.
            if entry[0] == "N":
                self._nodes[node_id].age = 0.0
                for drive_id in range(self._p.drives_per_node):
                    self._drives[(node_id, drive_id)].age = 0.0
            else:
                self._drives[(node_id, entry[2])].age = 0.0
        if node_id not in self._suspended_nodes():
            self._activate_node(node_id)
        self._schedule_repair()

    def _record_loss(self, cause: str, detail: str) -> None:
        event = DataLossEvent(self._sim.now, cause, detail)
        self.losses.append(event)
        for node in self._nodes.values():
            node.cancel()
        for drive in self._drives.values():
            drive.cancel()
        if self._repair_event is not None:
            self._repair_event.cancel()
        if self._on_loss is not None:
            self._on_loss(event)

"""Structured event tracing for the failure processes.

A :class:`TraceRecorder` captures the timeline of a simulation replica —
failures, repairs, loss — as typed records, so tests can assert on the
*dynamics* (not just the outcome) and operators can post-mortem a
simulated loss event.  Recorders plug into the processes' ``on_data_loss``
hook and, more generally, wrap a process to observe its state after every
kernel event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .events import Simulator

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed state change.

    Attributes:
        time_hours: when it happened.
        kind: ``"failure"``, ``"repair"`` or ``"loss"``.
        depth: outstanding failures *after* the change.
        detail: free-form context (failure word, cause).
    """

    time_hours: float
    kind: str
    depth: int
    detail: str = ""


class TraceRecorder:
    """Observe a failure process through a simulation run.

    The recorder samples the process's ``outstanding_failures`` after
    every kernel event via :meth:`attach`'s wrapping of
    :meth:`Simulator.step`; depth changes become failure/repair records,
    and the process's loss hook becomes a loss record.

    Example:
        >>> from repro.models import Parameters
        >>> from repro.sim import NoRaidFailureProcess, Simulator, StreamFactory
        >>> params = Parameters.baseline().replace(
        ...     node_set_size=8, redundancy_set_size=4,
        ...     node_mttf_hours=500.0, drive_mttf_hours=400.0)
        >>> sim = Simulator()
        >>> recorder = TraceRecorder()
        >>> process = NoRaidFailureProcess(
        ...     sim, params, 2, StreamFactory(0),
        ...     on_data_loss=recorder.on_loss)
        >>> recorder.attach(sim, process)
        >>> sim.run(stop_when=lambda: process.has_lost_data, max_events=10**6)
        >>> recorder.records[-1].kind
        'loss'
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._sim: Optional[Simulator] = None
        self._process = None
        self._last_depth = 0

    # ------------------------------------------------------------------ #

    def attach(self, sim: Simulator, process) -> None:
        """Start observing ``process`` (which must expose
        ``outstanding_failures``) across ``sim``'s event loop."""
        self._sim = sim
        self._process = process
        self._last_depth = process.outstanding_failures
        original_step = sim.step

        def traced_step() -> bool:
            progressed = original_step()
            if progressed:
                self._observe()
            return progressed

        sim.step = traced_step  # type: ignore[method-assign]

    def on_loss(self, event) -> None:
        """Use as the process's ``on_data_loss`` callback."""
        self.records.append(
            TraceRecord(
                time_hours=event.time_hours,
                kind="loss",
                depth=self._process.outstanding_failures if self._process else -1,
                detail=f"{event.cause}: {event.detail}",
            )
        )

    def _observe(self) -> None:
        if self._process is None or self._sim is None:
            return
        depth = self._process.outstanding_failures
        if depth > self._last_depth:
            kind = "failure"
        elif depth < self._last_depth:
            kind = "repair"
        else:
            self._last_depth = depth
            return
        self.records.append(
            TraceRecord(
                time_hours=self._sim.now,
                kind=kind,
                depth=depth,
                detail=getattr(self._process, "failure_word", ""),
            )
        )
        self._last_depth = depth

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #

    def depth_timeline(self) -> List[Tuple[float, int]]:
        """(time, depth) steps, for plotting or assertions."""
        return [
            (r.time_hours, r.depth) for r in self.records if r.kind != "loss"
        ]

    def max_depth(self) -> int:
        return max((r.depth for r in self.records), default=0)

    def time_at_depth(self, depth: int, until: Optional[float] = None) -> float:
        """Total time spent at exactly ``depth`` outstanding failures."""
        total = 0.0
        current_depth = 0
        current_time = 0.0
        for r in self.records:
            if r.kind == "loss":
                break
            if current_depth == depth:
                total += r.time_hours - current_time
            current_time = r.time_hours
            current_depth = r.depth
        if until is not None and current_depth == depth:
            total += max(0.0, until - current_time)
        return total

    def validate(self) -> None:
        """Structural sanity: times non-decreasing, depth steps by one,
        at most one loss and only at the end."""
        last_time = 0.0
        last_depth = 0
        for i, r in enumerate(self.records):
            if r.time_hours < last_time - 1e-12:
                raise AssertionError(f"time went backwards at record {i}")
            last_time = r.time_hours
            if r.kind == "loss":
                if i != len(self.records) - 1:
                    raise AssertionError("loss record is not terminal")
                continue
            step = r.depth - last_depth
            if r.kind == "failure" and step < 1:
                raise AssertionError(f"failure without depth increase at {i}")
            if r.kind == "repair" and step != -1:
                raise AssertionError(f"repair with depth step {step} at {i}")
            last_depth = r.depth

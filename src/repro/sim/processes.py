"""Physical failure/rebuild processes over the event kernel.

These processes re-create the paper's modeling assumptions from *physical*
events — individual node failures, drive failures, re-stripes, rebuilds
and hard-error draws — instead of a pre-built Markov chain.  Run to the
first data-loss event they yield empirical MTTDL samples; agreement with
the analytic chains (which make the same assumptions) validates both the
chain constructions and the closed forms.

Two processes mirror the paper's two families:

* :class:`NoRaidFailureProcess` — drives participate directly in the
  cross-node code (Figures 8-10 family).  Repairs are LIFO (the most
  recent failure is worked first), matching the chains' single repair
  edge per state.
* :class:`InternalRaidFailureProcess` — nodes run internal RAID 5/6
  (Figures 5-7 family).  Drive failures trigger node-local re-stripes;
  concurrent drive failures beyond the array's tolerance escalate to an
  array failure, which costs a full node rebuild; hard errors discovered
  by a re-stripe only lose data when a redundancy set is critical
  (Section 5.2's ``k_t`` filter).

Fidelity notes (all inherited from the paper's models, see DESIGN.md):
nodes with an outstanding failure are excluded from generating further
failures (the chains' ``(N - j)`` multipliers); a repaired failure fully
restores redundancy (fail-in-place spare capacity); repair durations are
exponential by default so the comparison against the chains is exact in
distribution, with deterministic durations available as an ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..models.critical_sets import critical_fraction, h_parameters
from ..models.parameters import Parameters
from ..models.raid import InternalRaid, Raid5Model, Raid6Model
from ..models.rebuild import RebuildModel
from .events import EventHandle, SimulationError, Simulator
from .rng import StreamFactory, bernoulli, exponential

__all__ = [
    "DataLossEvent",
    "NoRaidFailureProcess",
    "InternalRaidFailureProcess",
]


@dataclass(frozen=True)
class DataLossEvent:
    """A data-loss occurrence.

    Attributes:
        time_hours: simulation time of the loss.
        cause: short machine-readable cause tag, e.g.
            ``"failure-beyond-tolerance"`` or ``"hard-error-critical-rebuild"``.
        detail: free-form context (which failure word, which node...).
    """

    time_hours: float
    cause: str
    detail: str = ""


class _RepairClock:
    """Samples repair durations, exponential or deterministic."""

    def __init__(self, distribution: str) -> None:
        if distribution not in ("exponential", "deterministic"):
            raise ValueError("distribution must be exponential or deterministic")
        self._distribution = distribution

    def sample(self, rng, rate: float) -> float:
        if rate <= 0:
            raise ValueError("repair rate must be positive")
        if self._distribution == "exponential":
            return exponential(rng, rate)
        return 1.0 / rate


class NoRaidFailureProcess:
    """Physical simulation of the no-internal-RAID configurations.

    Args:
        sim: the event-driven clock.
        params: system parameters.
        fault_tolerance: cross-node tolerance ``t >= 1``.
        streams: random streams (one process per replica).
        repair_distribution: ``"exponential"`` (matches the chains) or
            ``"deterministic"`` (ablation).
        on_data_loss: callback invoked with each :class:`DataLossEvent`.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Parameters,
        fault_tolerance: int,
        streams: StreamFactory,
        repair_distribution: str = "exponential",
        on_data_loss: Optional[Callable[[DataLossEvent], None]] = None,
        burst_fraction: float = 0.0,
        burst_size: int = 2,
    ) -> None:
        """See class docstring.  The burst parameters model *correlated*
        node failures (shared power/cooling domains): a fraction
        ``burst_fraction`` of all node failures arrive in simultaneous
        groups of ``burst_size`` (total node-failure rate is preserved, so
        independent vs correlated runs are directly comparable)."""
        if fault_tolerance < 1:
            raise ValueError("fault_tolerance must be >= 1")
        if params.node_set_size <= fault_tolerance:
            raise ValueError("node set must exceed the fault tolerance")
        if not 0.0 <= burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in [0, 1]")
        if burst_size < 2:
            raise ValueError("burst_size must be >= 2")
        self._sim = sim
        self._p = params
        self._t = fault_tolerance
        self._burst_fraction = burst_fraction
        self._burst_size = burst_size
        self._rng_fail = streams.stream("no-raid-failures")
        self._rng_repair = streams.stream("no-raid-repairs")
        self._rng_hard = streams.stream("no-raid-hard-errors")
        self._clock = _RepairClock(repair_distribution)
        self._on_loss = on_data_loss
        rebuild = RebuildModel(params)
        self._mu_n = rebuild.node_rebuild_rate(fault_tolerance)
        self._mu_d = rebuild.drive_rebuild_rate(fault_tolerance)
        self._h = h_parameters(params, fault_tolerance)

        self._stack: List[str] = []  # outstanding failures, letters N / d
        self._failure_event: Optional[EventHandle] = None
        self._repair_event: Optional[EventHandle] = None
        self.losses: List[DataLossEvent] = []
        self._schedule_next_failure()

    # ------------------------------------------------------------------ #

    @property
    def outstanding_failures(self) -> int:
        return len(self._stack)

    @property
    def failure_word(self) -> str:
        """Current outstanding-failure word, oldest first (e.g. ``"Nd"``)."""
        return "".join(self._stack)

    @property
    def has_lost_data(self) -> bool:
        return bool(self.losses)

    # ------------------------------------------------------------------ #

    def _active_nodes(self) -> int:
        """Nodes currently generating failures: the chains exclude one node
        per outstanding failure."""
        return self._p.node_set_size - len(self._stack)

    def _event_rates(self) -> Tuple[float, float, float]:
        """(independent node rate, drive rate, burst rate) right now."""
        active = self._active_nodes()
        lam_n = self._p.node_failure_rate
        independent_node = active * lam_n * (1.0 - self._burst_fraction)
        drive = active * self._p.drives_per_node * self._p.drive_failure_rate
        # Bursts preserve the total node-failure rate: each burst carries
        # burst_size node failures.
        burst = active * lam_n * self._burst_fraction / self._burst_size
        return independent_node, drive, burst

    def _schedule_next_failure(self) -> None:
        if self._failure_event is not None:
            self._failure_event.cancel()
        node_rate, drive_rate, burst_rate = self._event_rates()
        delay = exponential(self._rng_fail, node_rate + drive_rate + burst_rate)
        self._failure_event = self._sim.schedule_after(delay, self._on_failure)

    def _schedule_repair(self) -> None:
        if self._repair_event is not None:
            self._repair_event.cancel()
            self._repair_event = None
        if not self._stack:
            return
        letter = self._stack[-1]
        rate = self._mu_n if letter == "N" else self._mu_d
        delay = self._clock.sample(self._rng_repair, rate)
        self._repair_event = self._sim.schedule_after(delay, self._on_repair)

    def _on_failure(self) -> None:
        node_rate, drive_rate, burst_rate = self._event_rates()
        pick = self._rng_fail.random() * (node_rate + drive_rate + burst_rate)
        if pick < burst_rate:
            count = self._burst_size
            cause = "correlated burst"
        elif pick < burst_rate + node_rate:
            count, cause = 1, "N failure"
        else:
            count, cause = 0, "d failure"  # count 0 => one drive failure

        letters = ["N"] * count if count else ["d"]
        for letter in letters:
            if len(self._stack) >= self._t:
                self._record_loss(
                    "failure-beyond-tolerance",
                    f"{cause} with word {self.failure_word!r}",
                )
                return
            self._stack.append(letter)
            if len(self._stack) == self._t:
                # Entering the critical state: does the rebuild hit a hard
                # error?
                word = self.failure_word
                if bernoulli(self._rng_hard, self._h[word]):
                    self._record_loss(
                        "hard-error-critical-rebuild", f"word {word!r}"
                    )
                    return
        self._schedule_repair()
        self._schedule_next_failure()

    def _on_repair(self) -> None:
        if not self._stack:
            raise SimulationError("repair completion with empty failure stack")
        self._stack.pop()
        self._repair_event = None
        self._schedule_repair()
        self._schedule_next_failure()

    def _record_loss(self, cause: str, detail: str) -> None:
        event = DataLossEvent(self._sim.now, cause, detail)
        self.losses.append(event)
        if self._failure_event is not None:
            self._failure_event.cancel()
        if self._repair_event is not None:
            self._repair_event.cancel()
        if self._on_loss is not None:
            self._on_loss(event)


class InternalRaidFailureProcess:
    """Physical simulation of the internal-RAID configurations.

    Per active node, a node-local drive process runs the Figure 1/4
    lifecycle (drive failure -> re-stripe -> either completion, a hard
    error, or escalation to array failure).  Node failures and array
    failures feed a LIFO node-level rebuild stack; exceeding the erasure
    code's tolerance, or a re-stripe hard error while exactly ``t`` nodes
    are down and the affected stripe is critical (probability ``k_t``),
    loses data.
    """

    def __init__(
        self,
        sim: Simulator,
        params: Parameters,
        raid_level: InternalRaid,
        fault_tolerance: int,
        streams: StreamFactory,
        repair_distribution: str = "exponential",
        on_data_loss: Optional[Callable[[DataLossEvent], None]] = None,
    ) -> None:
        if raid_level is InternalRaid.NONE:
            raise ValueError("use NoRaidFailureProcess for nodes without RAID")
        if fault_tolerance < 1:
            raise ValueError("fault_tolerance must be >= 1")
        if params.node_set_size <= fault_tolerance:
            raise ValueError("node set must exceed the fault tolerance")
        min_drives = 2 if raid_level is InternalRaid.RAID5 else 3
        if params.drives_per_node < min_drives:
            raise ValueError(f"{raid_level.value} needs >= {min_drives} drives")
        self._sim = sim
        self._p = params
        self._level = raid_level
        self._t = fault_tolerance
        self._rng_fail = streams.stream("ir-failures")
        self._rng_repair = streams.stream("ir-repairs")
        self._rng_hard = streams.stream("ir-hard-errors")
        self._clock = _RepairClock(repair_distribution)
        self._on_loss = on_data_loss

        rebuild = RebuildModel(params)
        self._mu_n = rebuild.node_rebuild_rate(fault_tolerance)
        self._mu_d = rebuild.restripe_rate()
        d = params.drives_per_node
        tolerance = raid_level.drive_fault_tolerance
        self._array_tolerance = tolerance
        # Hard error probability when re-striping with the array critical.
        self._h_restripe = min(
            (d - tolerance) * params.hard_error_per_drive_read, 1.0
        )
        self._k_t = (
            1.0
            if fault_tolerance == 1
            else critical_fraction(
                params.node_set_size, params.redundancy_set_size, fault_tolerance
            )
        )

        # Node-local array state: outstanding failed drives per active node.
        self._array_failures: Dict[int, int] = {
            i: 0 for i in range(params.node_set_size)
        }
        self._restripe_events: Dict[int, EventHandle] = {}
        self._node_stack: List[int] = []  # node ids down, oldest first
        self._failure_event: Optional[EventHandle] = None
        self._node_repair_event: Optional[EventHandle] = None
        self.losses: List[DataLossEvent] = []
        self._schedule_next_failure()

    # ------------------------------------------------------------------ #

    @property
    def nodes_down(self) -> int:
        return len(self._node_stack)

    @property
    def has_lost_data(self) -> bool:
        return bool(self.losses)

    # ------------------------------------------------------------------ #

    def _active_node_ids(self) -> List[int]:
        return sorted(self._array_failures)

    def _schedule_next_failure(self) -> None:
        """One aggregate exponential clock for all failure causes.

        Total rate = sum over active nodes of (node failure + drive
        failures in its current array state); the specific cause is chosen
        proportionally when the clock fires.  Valid because all the
        constituent clocks are memoryless.
        """
        if self._failure_event is not None:
            self._failure_event.cancel()
        total = self._total_failure_rate()
        if total <= 0:
            self._failure_event = None
            return
        delay = exponential(self._rng_fail, total)
        self._failure_event = self._sim.schedule_after(delay, self._on_failure)

    def _drive_rate(self, node_id: int) -> float:
        """Drive-failure rate of a node given its array state."""
        d = self._p.drives_per_node
        failed = self._array_failures[node_id]
        return (d - failed) * self._p.drive_failure_rate

    def _total_failure_rate(self) -> float:
        lam_n = self._p.node_failure_rate
        return sum(
            lam_n + self._drive_rate(node_id) for node_id in self._array_failures
        )

    def _on_failure(self) -> None:
        # Select the cause proportionally to its rate contribution.
        total = self._total_failure_rate()
        pick = self._rng_fail.random() * total
        lam_n = self._p.node_failure_rate
        for node_id in self._active_node_ids():
            node_total = lam_n + self._drive_rate(node_id)
            if pick < node_total:
                if pick < lam_n:
                    self._node_failure(node_id, cause="node")
                else:
                    self._drive_failure(node_id)
                return
            pick -= node_total
        # Floating-point tail: attribute to the last node's drive pool.
        self._drive_failure(self._active_node_ids()[-1])

    # -- node-local array lifecycle ------------------------------------ #

    def _drive_failure(self, node_id: int) -> None:
        self._array_failures[node_id] += 1
        if self._array_failures[node_id] > self._array_tolerance:
            # Beyond the internal RAID's tolerance: array failure.
            handle = self._restripe_events.pop(node_id, None)
            if handle is not None:
                handle.cancel()
            self._node_failure(node_id, cause="array")
            return
        # (Re)start the re-stripe for the most recent failure if none runs.
        if node_id not in self._restripe_events:
            self._schedule_restripe(node_id)
        self._schedule_next_failure()

    def _schedule_restripe(self, node_id: int) -> None:
        delay = self._clock.sample(self._rng_repair, self._mu_d)
        self._restripe_events[node_id] = self._sim.schedule_after(
            delay, lambda: self._on_restripe_done(node_id)
        )

    def _on_restripe_done(self, node_id: int) -> None:
        self._restripe_events.pop(node_id, None)
        if node_id not in self._array_failures:
            return  # node died while re-striping
        was_critical = self._array_failures[node_id] == self._array_tolerance
        # Did the re-stripe hit an uncorrectable error in the surviving data?
        if was_critical and bernoulli(self._rng_hard, self._h_restripe):
            if len(self._node_stack) == self._t and bernoulli(
                self._rng_hard, self._k_t
            ):
                self._record_loss(
                    "hard-error-critical-restripe",
                    f"node {node_id} re-stripe with {self._t} nodes down",
                )
                return
        self._array_failures[node_id] = max(0, self._array_failures[node_id] - 1)
        if self._array_failures[node_id] > 0:
            self._schedule_restripe(node_id)
        self._schedule_next_failure()

    # -- node-level lifecycle ------------------------------------------ #

    def _node_failure(self, node_id: int, cause: str) -> None:
        if len(self._node_stack) >= self._t:
            self._record_loss(
                "failure-beyond-tolerance",
                f"{cause} failure of node {node_id} with {len(self._node_stack)} down",
            )
            return
        handle = self._restripe_events.pop(node_id, None)
        if handle is not None:
            handle.cancel()
        self._array_failures.pop(node_id, None)
        self._node_stack.append(node_id)
        self._schedule_node_repair()
        self._schedule_next_failure()

    def _schedule_node_repair(self) -> None:
        if self._node_repair_event is not None:
            self._node_repair_event.cancel()
            self._node_repair_event = None
        if not self._node_stack:
            return
        delay = self._clock.sample(self._rng_repair, self._mu_n)
        self._node_repair_event = self._sim.schedule_after(
            delay, self._on_node_repaired
        )

    def _on_node_repaired(self) -> None:
        if not self._node_stack:
            raise SimulationError("node repair with empty stack")
        node_id = self._node_stack.pop()
        self._node_repair_event = None
        # The node's data now lives on the survivors' spare space; the
        # replacement capacity presents a fresh, fully-redundant array.
        self._array_failures[node_id] = 0
        self._schedule_node_repair()
        self._schedule_next_failure()

    def _record_loss(self, cause: str, detail: str) -> None:
        event = DataLossEvent(self._sim.now, cause, detail)
        self.losses.append(event)
        if self._failure_event is not None:
            self._failure_event.cancel()
        if self._node_repair_event is not None:
            self._node_repair_event.cancel()
        for handle in self._restripe_events.values():
            handle.cancel()
        self._restripe_events.clear()
        if self._on_loss is not None:
            self._on_loss(event)

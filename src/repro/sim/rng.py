"""Reproducible random-number streams for the simulator.

Each stochastic process (node failures, drive failures, hard-error draws,
repair durations) gets its own independent child stream spawned from a
single master seed, so adding a new consumer never perturbs the draws an
existing one sees — runs stay comparable across code versions and
parameter sweeps (common random numbers).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["StreamFactory", "exponential", "bernoulli", "phase_type"]


class StreamFactory:
    """Named, independent random streams from one master seed.

    Example:
        >>> streams = StreamFactory(seed=7)
        >>> a = streams.stream("node-failures")
        >>> b = streams.stream("drive-failures")
        >>> a is streams.stream("node-failures")
        True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        if name not in self._streams:
            # Derive a child seed deterministically from the name so the
            # mapping is stable regardless of request order.  Every byte
            # of the name feeds the spawn key (padded to whole uint32
            # words) — truncating would alias long names that share a
            # prefix onto one stream (e.g. per-replica names "...-10"
            # and "...-100"), silently replaying identical draws.
            raw = name.encode("utf-8")
            width = max(16, (len(raw) + 3) // 4 * 4)
            digest = np.frombuffer(raw.ljust(width, b"\0"), dtype=np.uint32)
            child = np.random.SeedSequence(
                entropy=self._seed_seq.entropy, spawn_key=tuple(int(x) for x in digest)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]


def exponential(rng: np.random.Generator, rate: float) -> float:
    """Sample an exponential holding time with the given rate (per hour)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return float(rng.exponential(1.0 / rate))


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """Sample a Bernoulli trial; probabilities are clamped into [0, 1]."""
    p = min(max(probability, 0.0), 1.0)
    return bool(rng.random() < p)


def phase_type(rng, rates, continues) -> float:
    """Sample an absorption time from an acyclic (Coxian) phase-type
    distribution: from stage ``i`` hold ``Exp(rates[i])``, then advance
    with probability ``continues[i]`` or absorb.

    This is the Gillespie leg for non-exponential brick lifetimes
    (:class:`repro.fleet.phasetype.PhaseType` unpacks into exactly these
    two sequences); a single stage with ``continues == (0,)`` reproduces
    :func:`exponential` draw-for-draw.
    """
    if len(rates) != len(continues) or not rates:
        raise ValueError("rates and continues must be equal-length, non-empty")
    total = 0.0
    for rate, cont in zip(rates, continues):
        total += exponential(rng, rate)
        if not (cont and bernoulli(rng, cont)):
            break
    return total

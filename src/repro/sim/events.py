"""Discrete-event simulation kernel.

A minimal, deterministic event queue: events are (time, sequence,
callback) triples ordered by time with FIFO tie-breaking; handles support
cancellation (lazy deletion).  The failure/rebuild processes in
:mod:`repro.sim.processes` are built on it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["EventHandle", "EventQueue", "Simulator", "SimulationError"]

Callback = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised on invalid simulator operations (e.g. scheduling in the past)."""


@dataclass
class EventHandle:
    """Cancelable reference to a scheduled event."""

    time: float
    seq: int
    callback: Optional[Callback]

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event (no-op if already fired or cancelled)."""
        self.callback = None


class EventQueue:
    """Priority queue of timed events with stable ordering."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def push(self, time: float, callback: Callback) -> EventHandle:
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        handle = EventHandle(time, next(self._counter), callback)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def pop(self) -> Optional[EventHandle]:
        """Next non-cancelled event, or None if empty."""
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                return handle
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap:
            time, _, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None


class Simulator:
    """Event-driven clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(2.0, lambda: fired.append(sim.now))
        >>> _ = sim.schedule_after(1.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, callback)

    def schedule_after(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        handle = self._queue.pop()
        if handle is None:
            return False
        self._now = handle.time
        callback, handle.callback = handle.callback, None
        assert callback is not None
        self._events_processed += 1
        callback()
        return True

    def run(
        self,
        until: float = math.inf,
        max_events: int = 100_000_000,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, ``stop_when``
        returns True (checked after each event), or ``max_events`` fire.

        The clock advances to ``until`` if the horizon (not the queue)
        ends the run, so time-based statistics cover the full window.
        """
        processed = 0
        while processed < max_events:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > until:
                if math.isfinite(until):
                    self._now = max(self._now, until)
                return
            self.step()
            processed += 1
            if stop_when is not None and stop_when():
                return
        raise SimulationError(f"exceeded max_events = {max_events}")

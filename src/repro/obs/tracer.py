"""Structured tracing: nested spans with cross-process propagation.

A :class:`Span` is one timed region of work — name, wall/CPU time,
free-form attributes and a parent id — and a :class:`Tracer` collects
finished spans into an in-memory buffer that the exporters in
:mod:`repro.obs.export` turn into JSONL traces and run reports.

Design constraints, in order:

* **Zero overhead when disabled.**  The module-level :func:`span` helper
  returns one shared no-op context manager when tracing is off; entering
  and leaving it allocates nothing and touches no locks, so hot paths
  (per-chain solves, per-batch binds) can be instrumented unconditionally.
* **Thread-safe nesting.**  The active-span stack is thread-local, so
  spans opened on different threads parent correctly and never interleave.
* **Process-safe shipping.**  Pool workers cannot write into the parent's
  tracer, so a worker records into its own tracer (see
  :func:`capture_spans`), ships the finished spans back with its results,
  and the parent re-parents them under its current span with
  :func:`adopt_spans`.  Span ids embed the producing pid plus a
  process-wide sequence number, so ids from any mix of forked workers and
  the parent never collide.

Wall time is measured with ``time.perf_counter`` (monotonic, high
resolution); span start instants are reconstructed on a shared
``time.time`` epoch (via a per-process clock anchor) so spans from
different processes order on one clock; CPU time uses
``time.thread_time`` so a span charges only the work of its own thread.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "adopt_spans",
    "capture_spans",
    "current_span_id",
    "current_tracer",
    "set_tracer",
    "span",
    "tracing_active",
    "use_tracer",
]

#: Process-wide span-id sequence.  Shared by every tracer in the process
#: so a worker that runs several capture sessions never reissues an id;
#: forked children inherit the counter state but differ in pid, so the
#: combined ``pid-seq`` id stays unique across the whole process tree.
_SEQ = itertools.count(1)

#: Cached pid (an attribute load beats the ``os.getpid`` syscall on the
#: per-span hot path) and the realtime-vs-monotonic clock offset used to
#: reconstruct a span's wall-clock start from its ``perf_counter`` stamp.
#: Both clocks are system-wide on POSIX, so the anchor survives ``fork``;
#: the pid does not, hence the fork hook.
_PID = os.getpid()
_UNIX_ANCHOR = time.time() - time.perf_counter()


def _after_fork() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_after_fork)


class Span:
    """One timed region: identity, timings and attributes.

    A :class:`Span` is its own context manager — timing starts at
    ``__enter__`` and the span records itself into its tracer at
    ``__exit__``.  One object per span (no separate handle), plain
    ``list.append`` to record (atomic under the GIL): the enabled hot
    path stays cheap enough to wrap per-chain solves (guarded by
    ``benchmarks/bench_obs_overhead.py``).

    Attributes:
        name: dotted span name (see the taxonomy in docs/observability.md).
        span_id: unique ``"<pid hex>-<seq>"`` identifier.
        parent_id: enclosing span's id, or None for a root.
        attrs: free-form JSON-serializable attributes.
        start_unix: wall-clock start (``time.time()``), comparable across
            processes.
        wall_s / cpu_s: elapsed wall and same-thread CPU seconds (set when
            the span finishes).
        pid: producing process id.
    """

    __slots__ = (
        "name",
        "attrs",
        "wall_s",
        "cpu_s",
        "pid",
        "_seq",
        "_sid",
        "_parent",
        "_wall0",
        "_cpu0",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the live span."""
        self.attrs[key] = value

    @property
    def span_id(self) -> str:
        """The ``"<pid hex>-<seq>"`` id (formatted lazily, then cached)."""
        sid = self._sid
        if sid is None:
            sid = self._sid = f"{self.pid:x}-{self._seq}"
        return sid

    @property
    def parent_id(self) -> Optional[str]:
        """The enclosing span's id, or None for a root."""
        parent = self._parent
        if parent is None:
            return None
        return parent.span_id

    @property
    def start_unix(self) -> float:
        """Wall-clock start instant, comparable across processes."""
        return _UNIX_ANCHOR + self._wall0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self.pid = _PID
        self._seq = next(_SEQ)
        self._sid = None
        stack.append(self)
        # Clocks read last so the span charges none of its own setup.
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall1 = time.perf_counter()
        cpu1 = time.thread_time()
        stack = self._tracer._stack()
        # Pop down to this span even if an inner span leaked (an exception
        # escaping a hand-opened span); never corrupt the stack.
        while stack:
            if stack.pop() is self:
                break
        self.wall_s = max(0.0, wall1 - self._wall0)
        self.cpu_s = max(0.0, cpu1 - self._cpu0)
        self._tracer._finished.append(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, id={self.span_id}, wall={self.wall_s:.6f}s)"


class _NullSpan:
    """The shared no-op span: reentrant, allocation-free, attribute-silent."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


#: The one no-op span context manager (reentrant; safe to nest freely).
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    :meth:`span` always returns the shared :data:`NULL_SPAN` singleton, so
    instrumented hot paths cost one attribute check and one call when
    tracing is off — no allocation is retained per span (guarded by
    ``tests/obs/test_tracer.py``).
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def current_span_id(self) -> Optional[str]:
        return None

    def finished(self) -> List[Dict[str, Any]]:
        return []

    def adopt(
        self,
        span_dicts: Iterable[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> None:
        pass


#: The one shared disabled tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects finished spans; thread-safe; one instance per process.

    Recording a span is one ``list.append`` (atomic under the GIL, so the
    hot path takes no lock); :meth:`finished` converts to the plain-dict
    wire form that ships across process boundaries and feeds the
    exporters.  Because children exit before their parents, the buffer is
    naturally ordered children-first.
    """

    enabled = True

    def __init__(self) -> None:
        # Mixed Span objects (recorded here) and dicts (adopted from
        # shipped workers); finished() normalizes to dicts.
        self._finished: List[Any] = []
        self._lock = threading.Lock()
        self._tls = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one region under the current span."""
        return Span(self, name, attrs)

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def finished(self) -> List[Dict[str, Any]]:
        """A snapshot of every finished span (dict form), children first."""
        with self._lock:
            snapshot = list(self._finished)
        return [
            s.to_dict() if isinstance(s, Span) else s for s in snapshot
        ]

    def adopt(
        self,
        span_dicts: Iterable[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> None:
        """Absorb spans shipped from another process (or capture session).

        Shipped roots — spans whose parent is absent from the shipped set
        — are re-parented under ``parent_id`` (default: this thread's
        current span), grafting the worker's subtree into the caller's.
        """
        span_dicts = [dict(d) for d in span_dicts]
        if not span_dicts:
            return
        if parent_id is None:
            parent_id = self.current_span_id()
        shipped_ids = {d["span_id"] for d in span_dicts}
        for d in span_dicts:
            if d.get("parent_id") not in shipped_ids:
                d["parent_id"] = parent_id
        with self._lock:
            self._finished.extend(span_dicts)


# --------------------------------------------------------------------- #
# the process-global tracer
# --------------------------------------------------------------------- #

_active: Any = NULL_TRACER


def current_tracer():
    """The process-global tracer (a :class:`NullTracer` when disabled)."""
    return _active


def set_tracer(tracer) -> Any:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def tracing_active() -> bool:
    """Whether an enabled tracer is currently installed."""
    return _active.enabled


def span(name: str, **attrs: Any):
    """Open a span on the global tracer (the shared no-op when disabled)."""
    tracer = _active
    if tracer.enabled:
        return tracer.span(name, **attrs)
    return NULL_SPAN


def current_span_id() -> Optional[str]:
    """The active span's id on the global tracer (None when disabled)."""
    return _active.current_span_id()


def adopt_spans(
    span_dicts: Sequence[Dict[str, Any]],
    parent_id: Optional[str] = None,
) -> None:
    """Graft shipped spans into the global tracer (no-op when disabled)."""
    tracer = _active
    if tracer.enabled and span_dicts:
        tracer.adopt(span_dicts, parent_id)


class capture_spans:
    """Record into a fresh tracer; yield the list the spans land in.

    Used inside pool workers (and the in-process broken-pool fallback):
    the worker wraps its chunk in ``with capture_spans() as shipped:``,
    returns ``shipped`` with its results, and the parent calls
    :func:`adopt_spans` to graft them under its own span tree.  The
    previous global tracer is restored on exit, so nesting captures (an
    in-process fallback inside a traced run) composes.
    """

    __slots__ = ("_previous", "_tracer", "_shipped")

    def __enter__(self) -> List[Dict[str, Any]]:
        self._tracer = Tracer()
        self._previous = set_tracer(self._tracer)
        self._shipped: List[Dict[str, Any]] = []
        return self._shipped

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        self._shipped.extend(self._tracer.finished())
        return False


class use_tracer:
    """Temporarily install ``tracer`` as the process-global tracer."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer) -> None:
        self._tracer = tracer

    def __enter__(self):
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False

"""Metrics: counters, gauges and histograms with associative merging.

A :class:`Metrics` registry owns named instruments.  Components that used
to carry ad-hoc integer attributes (``DiskCache.hits``,
``ChainStructureMemo.structure_rebuilds``, ``CompiledSpecCache.misses``,
the sweep engine's pooled-worker tallies) now create their counters in a
registry and expose the old attributes as read-through properties — the
numbers are identical, but every registry can be merged into one flat
``metrics.json`` snapshot at the end of a run.

Merging is **associative and commutative** (guarded by
``tests/obs/test_metrics.py``), so per-worker registries can be folded in
any order — chunk arrival order, pool size and broken-pool recoveries
cannot change the exported totals:

* counters add,
* histograms combine ``(count, sum, min, max)`` componentwise,
* gauges keep the value with the largest update version (ties resolve to
  the larger value, keeping the merge order-free).

Instrument creation uses ``dict.setdefault`` so concurrent get-or-create
races resolve to one instrument; increments on a single instrument are
plain attribute updates (each instrument is owned by one component).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "Histogram",
    "Metrics",
    "global_metrics",
]

Number = Union[int, float]


class Counter:
    """A monotonically-increasing (by convention) integer tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value instrument; merges keep the most recent update."""

    __slots__ = ("name", "value", "version")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.version = 0

    def set(self, value: Number) -> None:
        self.value = value
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A streaming summary: count, sum, min, max of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Metrics:
    """A registry of named instruments with snapshot/merge/export.

    Names are dotted, lowercase, and globally meaningful (the taxonomy
    lives in docs/observability.md); one registry never holds two
    instruments of different kinds under one name.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    # -- get-or-create -------------------------------------------------- #

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            # setdefault keeps concurrent creators converging on one object.
            instrument = self._instruments.setdefault(name, cls(name))
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- inspection ----------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list:
        return sorted(self._instruments)

    def value(self, name: str, default: Optional[Number] = None) -> Any:
        """The current value of a counter/gauge (histograms return their
        mean); ``default`` when the instrument does not exist."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.mean
        return instrument.value

    # -- snapshot / merge ----------------------------------------------- #

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A typed, JSON-serializable snapshot (the cross-process wire
        form: workers ship this, parents merge it)."""
        counters: Dict[str, Number] = {}
        gauges: Dict[str, list] = {}
        histograms: Dict[str, list] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = [instrument.value, instrument.version]
            else:
                histograms[name] = [
                    instrument.count,
                    instrument.total,
                    instrument.min,
                    instrument.max,
                ]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snap: Dict[str, Dict[str, Any]]) -> "Metrics":
        """Fold a :meth:`snapshot` into this registry (associatively)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, (value, version) in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            if (version, value) > (gauge.version, gauge.value):
                gauge.value = value
                gauge.version = version
        for name, (count, total, lo, hi) in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += count
            hist.total += total
            if lo < hist.min:
                hist.min = lo
            if hi > hist.max:
                hist.max = hi
        return self

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another registry into this one; returns self."""
        return self.merge_snapshot(other.snapshot())

    @classmethod
    def merged(cls, registries: Iterable["Metrics"]) -> "Metrics":
        """A fresh registry holding the fold of ``registries``."""
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out

    # -- export --------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """The flat export form (``metrics.json``): counters and gauges
        map name -> value; histograms flatten to ``name.count`` /
        ``name.sum`` / ``name.min`` / ``name.max`` / ``name.mean``."""
        flat: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                flat[f"{name}.count"] = instrument.count
                flat[f"{name}.sum"] = instrument.total
                if instrument.count:
                    flat[f"{name}.min"] = instrument.min
                    flat[f"{name}.max"] = instrument.max
                    flat[f"{name}.mean"] = instrument.mean
            else:
                flat[name] = instrument.value
        return flat

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Metrics({len(self._instruments)} instruments)"


#: The process-global registry for cross-cutting counters (simulation
#: replica tallies, verification check counts, span totals).  Component
#: caches keep instance-local registries and are merged in at export time.
GLOBAL_METRICS = Metrics()


def global_metrics() -> Metrics:
    """The process-global :class:`Metrics` registry."""
    return GLOBAL_METRICS

"""Metrics: counters, gauges and histograms with associative merging.

A :class:`Metrics` registry owns named instruments.  Components that used
to carry ad-hoc integer attributes (``DiskCache.hits``,
``ChainStructureMemo.structure_rebuilds``, ``CompiledSpecCache.misses``,
the sweep engine's pooled-worker tallies) now create their counters in a
registry and expose the old attributes as read-through properties — the
numbers are identical, but every registry can be merged into one flat
``metrics.json`` snapshot at the end of a run.

Merging is **associative and commutative** (guarded by
``tests/obs/test_metrics.py``), so per-worker registries can be folded in
any order — chunk arrival order, pool size and broken-pool recoveries
cannot change the exported totals:

* counters add,
* histograms combine ``(count, sum, min, max)`` componentwise,
* gauges keep the value with the largest update version (ties resolve to
  the larger value, keeping the merge order-free).

Instrument creation uses ``dict.setdefault`` so concurrent get-or-create
races resolve to one instrument; increments on a single instrument are
plain attribute updates (each instrument is owned by one component).
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, Iterable, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "Histogram",
    "LogLinearHistogram",
    "Metrics",
    "WINDOWS_S",
    "WindowSummary",
    "WindowedHistogram",
    "global_metrics",
]

Number = Union[int, float]

#: The decaying time windows every windowed instrument reports on
#: (seconds).  Chosen so /healthz answers "is it burning *right now*"
#: (1s), "over the last scrape interval" (10s) and "over the last
#: minute" (60s) from one ring of slots.
WINDOWS_S = (1.0, 10.0, 60.0)

#: The quantiles the live endpoints report.
QUANTILES = (0.5, 0.95, 0.99, 0.999)

_QUANTILE_LABELS = {0.5: "p50", 0.95: "p95", 0.99: "p99", 0.999: "p999"}


class Counter:
    """A monotonically-increasing (by convention) integer tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value instrument; merges keep the most recent update."""

    __slots__ = ("name", "value", "version")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.version = 0

    def set(self, value: Number) -> None:
        self.value = value
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A streaming summary: count, sum, min, max of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


# --------------------------------------------------------------------- #
# log-linear histograms and decaying time windows
# --------------------------------------------------------------------- #

#: Linear sub-buckets per power of two.  16 sub-buckets bound the
#: relative quantile error at 1/16 ≈ 6.25% — comfortably inside the
#: noise floor of any latency measurement this repo makes.
_SUBBUCKETS = 16

#: Bucketable range: ~0.95 microseconds to 128 seconds.  Values outside
#: clamp to the edge buckets (the count and sum stay exact either way).
_EXP_MIN = -20
_EXP_MAX = 8
_BUCKETS = (_EXP_MAX - _EXP_MIN) * _SUBBUCKETS


def _bucket_index(value: float) -> int:
    """The log-linear bucket for a positive value.

    ``math.frexp`` gives value = m * 2**e with m in [0.5, 1); the
    exponent picks the power-of-two decade and the significand picks one
    of the :data:`_SUBBUCKETS` linear sub-buckets inside it.
    """
    if value <= 0.0:
        return 0
    m, e = math.frexp(value)
    if e < _EXP_MIN:
        return 0
    if e >= _EXP_MAX:
        return _BUCKETS - 1
    sub = int((m - 0.5) * 2.0 * _SUBBUCKETS)
    if sub >= _SUBBUCKETS:  # m == 1.0 - epsilon rounding
        sub = _SUBBUCKETS - 1
    return (e - _EXP_MIN) * _SUBBUCKETS + sub


def _bucket_upper(index: int) -> float:
    """The inclusive upper edge of a bucket (quantiles report this)."""
    e = index // _SUBBUCKETS + _EXP_MIN
    sub = index % _SUBBUCKETS
    return math.ldexp(0.5 + (sub + 1) / (2.0 * _SUBBUCKETS), e)


class LogLinearHistogram:
    """A fixed-bucket log-linear histogram with quantile estimation.

    Buckets are sparse (a dict of index -> count), merge by summing
    matching buckets, and quantiles report the upper edge of the bucket
    the rank lands in — a deterministic over-estimate with relative
    error bounded by ``1/_SUBBUCKETS``.  The same bucketing runs on the
    server (windowed instruments) and in the load generator's report,
    so client-side and server-side p99 are directly comparable.
    """

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value: Number) -> None:
        value = float(value)
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value

    @classmethod
    def from_values(cls, values: Iterable[Number]) -> "LogLinearHistogram":
        hist = cls()
        for value in values:
            hist.observe(value)
        return hist

    def merge(self, other: "LogLinearHistogram") -> "LogLinearHistogram":
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return _bucket_upper(index)
        return _bucket_upper(max(self.buckets))  # pragma: no cover

    def quantiles(
        self, qs: Sequence[float] = QUANTILES
    ) -> Dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogLinearHistogram(n={self.count}, mean={self.mean:.4g})"


class WindowSummary:
    """What one decaying window reports: count, rate and quantiles."""

    __slots__ = ("window_s", "hist")

    def __init__(self, window_s: float, hist: LogLinearHistogram) -> None:
        self.window_s = window_s
        self.hist = hist

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def total(self) -> float:
        return self.hist.total

    @property
    def mean(self) -> float:
        return self.hist.mean

    @property
    def rate(self) -> float:
        """Observations per second over the window."""
        return self.hist.count / self.window_s

    def quantile(self, q: float) -> float:
        return self.hist.quantile(q)

    def to_dict(self) -> Dict[str, Number]:
        out: Dict[str, Number] = {
            "count": self.count,
            "rate": self.rate,
            "mean": self.mean,
        }
        if self.count:
            for q, label in _QUANTILE_LABELS.items():
                out[label] = self.hist.quantile(q)
        return out


class WindowedHistogram:
    """A log-linear histogram over wall-clock-aligned decaying windows.

    Observations land in a ring of fixed-width slots keyed by the
    **absolute** slot index ``int(now / SLOT_S)``.  Because slots align
    on the wall clock, two processes observing concurrently produce
    slot maps that merge by plain addition — the cross-process merge
    stays associative and commutative like every other instrument.
    The 1s/10s/60s windows are *derived at read time* by merging the
    slots younger than the window, so one ring serves every window.
    """

    #: Slot width.  0.25s gives the 1s window four slots of resolution.
    SLOT_S = 0.25

    #: Slots older than the widest window are pruned on write.
    _HORIZON_SLOTS = int(max(WINDOWS_S) / SLOT_S) + 1

    __slots__ = ("name", "count", "total", "_slots", "_clock")

    def __init__(self, name: str) -> None:
        self.name = name
        # All-time tallies survive window decay (rate baselines, merges).
        self.count = 0
        self.total = 0.0
        # slot index -> [count, total, {bucket: n}]
        self._slots: Dict[int, list] = {}
        self._clock = time.time  # injectable for tests

    def observe(self, value: Number, now: Optional[float] = None) -> None:
        value = float(value)
        if now is None:
            now = self._clock()
        slot_index = int(now / self.SLOT_S)
        slot = self._slots.get(slot_index)
        if slot is None:
            self._prune(slot_index)
            slot = self._slots.setdefault(slot_index, [0, 0.0, {}])
        bucket = _bucket_index(value)
        slot[0] += 1
        slot[1] += value
        slot[2][bucket] = slot[2].get(bucket, 0) + 1
        self.count += 1
        self.total += value

    def _prune(self, newest_slot: int) -> None:
        floor = newest_slot - self._HORIZON_SLOTS
        if len(self._slots) > self._HORIZON_SLOTS:
            for slot_index in [s for s in self._slots if s < floor]:
                del self._slots[slot_index]

    # -- reads ---------------------------------------------------------- #

    def window(
        self, window_s: float, now: Optional[float] = None
    ) -> WindowSummary:
        """The merged histogram of slots younger than ``window_s``."""
        if now is None:
            now = self._clock()
        newest = int(now / self.SLOT_S)
        oldest = newest - int(window_s / self.SLOT_S) + 1
        hist = LogLinearHistogram()
        for slot_index, (count, total, buckets) in self._slots.items():
            if oldest <= slot_index <= newest:
                hist.count += count
                hist.total += total
                for bucket, n in buckets.items():
                    hist.buckets[bucket] = hist.buckets.get(bucket, 0) + n
        return WindowSummary(window_s, hist)

    def windows(
        self,
        windows_s: Sequence[float] = WINDOWS_S,
        now: Optional[float] = None,
    ) -> Dict[float, WindowSummary]:
        if now is None:
            now = self._clock()
        return {w: self.window(w, now=now) for w in windows_s}

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- snapshot / merge ----------------------------------------------- #

    def state(self) -> list:
        """The wire form: all-time tallies plus the live slot ring."""
        return [
            self.count,
            self.total,
            {
                slot: [count, total, dict(buckets)]
                for slot, (count, total, buckets) in self._slots.items()
            },
        ]

    def merge_state(self, state: list) -> None:
        count, total, slots = state
        self.count += count
        self.total += total
        for slot_index, (s_count, s_total, s_buckets) in slots.items():
            slot_index = int(slot_index)
            slot = self._slots.get(slot_index)
            if slot is None:
                slot = self._slots.setdefault(slot_index, [0, 0.0, {}])
            slot[0] += s_count
            slot[1] += s_total
            for bucket, n in s_buckets.items():
                bucket = int(bucket)
                slot[2][bucket] = slot[2].get(bucket, 0) + n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowedHistogram({self.name!r}, n={self.count})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Metrics:
    """A registry of named instruments with snapshot/merge/export.

    Names are dotted, lowercase, and globally meaningful (the taxonomy
    lives in docs/observability.md); one registry never holds two
    instruments of different kinds under one name.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    # -- get-or-create -------------------------------------------------- #

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            # setdefault keeps concurrent creators converging on one object.
            instrument = self._instruments.setdefault(name, cls(name))
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def windowed(self, name: str) -> WindowedHistogram:
        return self._get(name, WindowedHistogram)

    # -- inspection ----------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list:
        return sorted(self._instruments)

    def value(self, name: str, default: Optional[Number] = None) -> Any:
        """The current value of a counter/gauge (histograms return their
        mean); ``default`` when the instrument does not exist."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.mean
        if isinstance(instrument, WindowedHistogram):
            return instrument.count
        return instrument.value

    # -- snapshot / merge ----------------------------------------------- #

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A typed, JSON-serializable snapshot (the cross-process wire
        form: workers ship this, parents merge it)."""
        counters: Dict[str, Number] = {}
        gauges: Dict[str, list] = {}
        histograms: Dict[str, list] = {}
        windowed: Dict[str, list] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = [instrument.value, instrument.version]
            elif isinstance(instrument, WindowedHistogram):
                windowed[name] = instrument.state()
            else:
                histograms[name] = [
                    instrument.count,
                    instrument.total,
                    instrument.min,
                    instrument.max,
                ]
        snap = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        # Only emitted when present: older snapshots without the key
        # still merge (merge_snapshot reads every section with .get).
        if windowed:
            snap["windowed"] = windowed
        return snap

    def merge_snapshot(self, snap: Dict[str, Dict[str, Any]]) -> "Metrics":
        """Fold a :meth:`snapshot` into this registry (associatively)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, (value, version) in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            if (version, value) > (gauge.version, gauge.value):
                gauge.value = value
                gauge.version = version
        for name, (count, total, lo, hi) in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += count
            hist.total += total
            if lo < hist.min:
                hist.min = lo
            if hi > hist.max:
                hist.max = hi
        for name, state in snap.get("windowed", {}).items():
            self.windowed(name).merge_state(state)
        return self

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another registry into this one; returns self."""
        return self.merge_snapshot(other.snapshot())

    @classmethod
    def merged(cls, registries: Iterable["Metrics"]) -> "Metrics":
        """A fresh registry holding the fold of ``registries``."""
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out

    # -- export --------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """The flat export form (``metrics.json``): counters and gauges
        map name -> value; histograms flatten to ``name.count`` /
        ``name.sum`` / ``name.min`` / ``name.max`` / ``name.mean``."""
        flat: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                flat[f"{name}.count"] = instrument.count
                flat[f"{name}.sum"] = instrument.total
                if instrument.count:
                    flat[f"{name}.min"] = instrument.min
                    flat[f"{name}.max"] = instrument.max
                    flat[f"{name}.mean"] = instrument.mean
            elif isinstance(instrument, WindowedHistogram):
                flat[f"{name}.count"] = instrument.count
                flat[f"{name}.sum"] = instrument.total
                for window, summary in instrument.windows().items():
                    prefix = f"{name}.w{window:g}s"
                    for key, value in summary.to_dict().items():
                        flat[f"{prefix}.{key}"] = value
            else:
                flat[name] = instrument.value
        return flat

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Metrics({len(self._instruments)} instruments)"


#: The process-global registry for cross-cutting counters (simulation
#: replica tallies, verification check counts, span totals).  Component
#: caches keep instance-local registries and are merged in at export time.
GLOBAL_METRICS = Metrics()


def global_metrics() -> Metrics:
    """The process-global :class:`Metrics` registry."""
    return GLOBAL_METRICS

"""The serialized progress reporter.

Engine ``verbose`` output used to ``print`` straight to ``sys.stderr``
from wherever a batch finished, so two engines (or a traced run and a
progress line) could interleave mid-line.  :class:`Reporter` funnels
every progress line through one lock: a line is emitted atomically, and
the stream is resolved at emit time so test harnesses that swap
``sys.stderr`` (pytest's capsys) see the output.
"""

from __future__ import annotations

import sys
import threading
from typing import Optional, TextIO

__all__ = ["Reporter", "reporter", "set_reporter"]


class Reporter:
    """Thread-safe line-at-a-time progress output.

    Args:
        stream: destination; None means "``sys.stderr`` at emit time".
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def emit(self, message: str) -> None:
        """Write one complete line, atomically, flushed."""
        with self._lock:
            print(message, file=self.stream, flush=True)


_reporter = Reporter()


def reporter() -> Reporter:
    """The process-global reporter every progress line routes through."""
    return _reporter


def set_reporter(new: Reporter) -> Reporter:
    """Replace the global reporter; returns the old one (for tests)."""
    global _reporter
    previous = _reporter
    _reporter = new
    return previous

"""Exporters: JSONL traces, ``metrics.json``, and the human run report.

Three output forms, all derived from the same finished-span dicts:

* :func:`write_trace` — one JSON object per line: a header line
  (``{"type": "trace", "version": 1, ...}``) followed by one ``span``
  line per finished span.  :func:`validate_trace` is the matching schema
  check (used by tests and the CI trace-wellformedness leg).
* :func:`write_metrics` — a flat ``{name: value}`` JSON file from a
  :class:`~repro.obs.metrics.Metrics` registry.
* :func:`render_report` — the per-phase time tree plus the top-N hot
  spans, aggregated by span name at each tree position.

Note on pooled runs: spans shipped from concurrent workers overlap in
wall time, so a parent's children may sum to more than the parent's own
wall clock — percentages above 100% mean parallelism, not an error.
:func:`tree_coverage` (children wall over root wall, clamped to 1.0) is
the acceptance metric for "the trace explains the run".
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    WindowedHistogram,
)

__all__ = [
    "PROM_CONTENT_TYPE",
    "PromFormatError",
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "render_prom",
    "render_report",
    "tree_coverage",
    "validate_prom_text",
    "validate_trace",
    "write_metrics",
    "write_trace",
]

#: Bump when the trace line schema changes incompatibly.
TRACE_FORMAT_VERSION = 1

_REQUIRED_SPAN_FIELDS = {
    "span_id": str,
    "name": str,
    "start_unix": (int, float),
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "pid": int,
    "attrs": dict,
}


class TraceFormatError(ValueError):
    """Raised by :func:`validate_trace` for a malformed trace file."""


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to something ``json`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def write_trace(
    spans: Sequence[Mapping[str, Any]],
    path: str,
    *,
    generator: str = "repro.obs",
) -> None:
    """Write a JSONL trace: one header line, then one line per span."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "trace",
                    "version": TRACE_FORMAT_VERSION,
                    "generator": generator,
                    "spans": len(spans),
                }
            )
            + "\n"
        )
        for span in spans:
            record = dict(span)
            record["attrs"] = _jsonable(record.get("attrs", {}))
            record.setdefault("type", "span")
            fh.write(json.dumps(record) + "\n")


def validate_trace(path: str) -> List[Dict[str, Any]]:
    """Parse and schema-check a JSONL trace; returns the span dicts.

    Raises:
        TraceFormatError: on any malformation — unparseable line, missing
            header, bad field types, duplicate span ids, a parent
            reference that resolves nowhere, or a parent cycle.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise TraceFormatError(f"{path}: empty trace")
    records = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: invalid JSON ({exc})")
        if not isinstance(record, dict):
            raise TraceFormatError(f"{path}:{lineno}: line is not an object")
        records.append(record)
    header, spans = records[0], records[1:]
    if header.get("type") != "trace":
        raise TraceFormatError(f"{path}:1: first line must be the trace header")
    if header.get("version") != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}:1: unsupported trace version {header.get('version')!r}"
        )
    seen = set()
    for i, span in enumerate(spans, start=2):
        if span.get("type") != "span":
            raise TraceFormatError(f"{path}:{i}: expected a span line")
        for field, types in _REQUIRED_SPAN_FIELDS.items():
            value = span.get(field)
            if not isinstance(value, types) or isinstance(value, bool):
                raise TraceFormatError(
                    f"{path}:{i}: span field {field!r} is "
                    f"{type(value).__name__}, not {types}"
                )
        if span["wall_s"] < 0 or span["cpu_s"] < 0:
            raise TraceFormatError(f"{path}:{i}: negative span duration")
        if span["span_id"] in seen:
            raise TraceFormatError(
                f"{path}:{i}: duplicate span id {span['span_id']!r}"
            )
        seen.add(span["span_id"])
        parent = span.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            raise TraceFormatError(f"{path}:{i}: parent_id must be str or null")
    by_id = {span["span_id"]: span for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            raise TraceFormatError(
                f"{path}: span {span['span_id']} references missing parent "
                f"{parent!r}"
            )
        # Walk to a root; ids are unique so a revisit means a cycle.
        hops, node = set(), span
        while node.get("parent_id") is not None:
            if node["span_id"] in hops:
                raise TraceFormatError(
                    f"{path}: parent cycle through {span['span_id']}"
                )
            hops.add(node["span_id"])
            node = by_id[node["parent_id"]]
    return spans


def write_metrics(metrics: Metrics, path: str) -> None:
    """Write the flat ``metrics.json`` snapshot of a registry."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #

#: Content type of the text exposition format we emit.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PROM_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: The quantile labels windowed instruments export.
_PROM_QUANTILES = (0.5, 0.95, 0.99, 0.999)


class PromFormatError(ValueError):
    """Raised by :func:`validate_prom_text` for malformed exposition."""


def _prom_name(name: str) -> str:
    """A dotted metric name mapped to the prom grammar (dots -> _)."""
    sanitized = _PROM_BAD_CHARS.sub("_", name)
    if not sanitized or not _PROM_NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value: Any) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value) if not value.is_integer() else str(int(value))


def render_prom(metrics: Metrics) -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Counters map to ``counter``, gauges to ``gauge``, histograms to an
    untyped summary triple (``_count`` / ``_sum`` / ``_min`` / ``_max``),
    and windowed instruments export their per-window quantiles as
    ``{window="10s",quantile="0.99"}`` labelled gauges plus per-window
    ``_count`` and ``_rate`` series — exactly what ``repro-top`` and the
    CI scrape consume.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, series: List[Tuple[str, Any]]) -> None:
        lines.append(f"# HELP {name} repro metric {kind}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in series:
            lines.append(f"{name}{labels} {_prom_value(value)}")

    for raw_name in metrics.names():
        instrument = metrics._instruments[raw_name]
        name = _prom_name(raw_name)
        if isinstance(instrument, Counter):
            emit(name, "counter", [("", instrument.value)])
        elif isinstance(instrument, Gauge):
            emit(name, "gauge", [("", instrument.value)])
        elif isinstance(instrument, WindowedHistogram):
            series: List[Tuple[str, Any]] = []
            for window, summary in sorted(instrument.windows().items()):
                label = f'window="{window:g}s"'
                series.append((f"{{{label}}}", summary.count))
                for q in _PROM_QUANTILES:
                    value = summary.quantile(q) if summary.count else 0.0
                    series.append(
                        (f'{{{label},quantile="{q:g}"}}', value)
                    )
            emit(f"{name}_window", "gauge", series)
            emit(f"{name}_count", "counter", [("", instrument.count)])
            emit(f"{name}_sum", "counter", [("", instrument.total)])
        elif isinstance(instrument, Histogram):
            emit(f"{name}_count", "counter", [("", instrument.count)])
            emit(f"{name}_sum", "counter", [("", instrument.total)])
            if instrument.count:
                emit(f"{name}_min", "gauge", [("", instrument.min)])
                emit(f"{name}_max", "gauge", [("", instrument.max)])
    return "\n".join(lines) + "\n"


_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)"
    r"( (?P<timestamp>-?\d+))?$"
)
_PROM_LABEL = re.compile(
    r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
)
_PROM_TYPES = {
    "counter", "gauge", "histogram", "summary", "untyped",
}


def validate_prom_text(text: str) -> Dict[str, int]:
    """A tiny exposition-format linter (the CI scrape check).

    Checks every line is a comment, blank, or a well-formed sample;
    ``# TYPE`` lines declare a known type and precede the samples of
    their family; sample values parse as floats (or ±Inf/NaN).  Returns
    ``{family: sample_count}``.

    Raises:
        PromFormatError: on the first malformed line.
    """
    families: Dict[str, int] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3:
                    raise PromFormatError(
                        f"line {lineno}: # {parts[1]} without a metric name"
                    )
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in _PROM_TYPES:
                        raise PromFormatError(
                            f"line {lineno}: unknown TYPE "
                            f"{parts[3] if len(parts) > 3 else None!r}"
                        )
                    typed[parts[2]] = parts[3]
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            raise PromFormatError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        if labels is not None:
            inner = labels[1:-1].strip()
            if inner:
                for part in inner.split(","):
                    if not _PROM_LABEL.match(part.strip()):
                        raise PromFormatError(
                            f"line {lineno}: malformed label {part!r}"
                        )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise PromFormatError(
                    f"line {lineno}: non-numeric value {value!r}"
                )
        # A sample belongs to the longest declared family whose name
        # prefixes it (histogram/summary samples carry _count/_sum
        # suffixes); undeclared samples count under their own name.
        family = ""
        for declared in typed:
            if (
                name == declared or name.startswith(declared + "_")
            ) and len(declared) > len(family):
                family = declared
        family = family or name
        families[family] = families.get(family, 0) + 1
    if not families:
        raise PromFormatError("no samples in exposition")
    return families


# --------------------------------------------------------------------- #
# the run report
# --------------------------------------------------------------------- #


def _children_index(
    spans: Sequence[Mapping[str, Any]],
) -> Tuple[List[Mapping[str, Any]], Dict[Optional[str], List[Mapping[str, Any]]]]:
    """(roots, parent_id -> children) with unresolvable parents as roots."""
    ids = {span["span_id"] for span in spans}
    roots: List[Mapping[str, Any]] = []
    children: Dict[Optional[str], List[Mapping[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is None or parent not in ids:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    return roots, children


def tree_coverage(spans: Sequence[Mapping[str, Any]]) -> float:
    """How much of the longest root span its children explain (0..1).

    The acceptance metric for "the span tree covers the run": the wall
    time of the longest root's direct children divided by the root's own
    wall time, clamped to 1.0 (pooled children overlap in wall time).
    """
    roots, children = _children_index(spans)
    if not roots:
        return 0.0
    root = max(roots, key=lambda s: s["wall_s"])
    if root["wall_s"] <= 0.0:
        return 0.0
    covered = sum(c["wall_s"] for c in children.get(root["span_id"], ()))
    return min(1.0, covered / root["wall_s"])


class _Agg:
    """One aggregated tree node: all same-named spans at one position."""

    __slots__ = ("name", "wall", "cpu", "count", "child_wall", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall = 0.0
        self.cpu = 0.0
        self.count = 0
        self.child_wall = 0.0
        self.children: Dict[str, _Agg] = {}


def _aggregate(
    members: Sequence[Mapping[str, Any]],
    name: str,
    children: Dict[Optional[str], List[Mapping[str, Any]]],
) -> _Agg:
    node = _Agg(name)
    grouped: Dict[str, List[Mapping[str, Any]]] = {}
    for span in members:
        node.wall += span["wall_s"]
        node.cpu += span["cpu_s"]
        node.count += 1
        for child in children.get(span["span_id"], ()):
            grouped.setdefault(child["name"], []).append(child)
    for child_name in sorted(
        grouped, key=lambda n: -sum(s["wall_s"] for s in grouped[n])
    ):
        child = _aggregate(grouped[child_name], child_name, children)
        node.child_wall += child.wall
        node.children[child_name] = child
    return node


def _self_times(node: _Agg, acc: Dict[str, List[float]]) -> None:
    entry = acc.setdefault(node.name, [0.0, 0])
    entry[0] += max(0.0, node.wall - node.child_wall)
    entry[1] += node.count
    for child in node.children.values():
        _self_times(child, acc)


def render_report(
    spans: Sequence[Mapping[str, Any]],
    *,
    top: int = 10,
) -> str:
    """The human-readable run report: time tree plus hot spans.

    The tree aggregates spans by name at each position (so 27 sibling
    ``solve.gth`` spans render as one ``×27`` row); percentages are
    relative to the total root wall time and can exceed 100% under
    process-pool parallelism.
    """
    if not spans:
        return "run report: no spans recorded"
    roots, children = _children_index(spans)
    grouped_roots: Dict[str, List[Mapping[str, Any]]] = {}
    for root in roots:
        grouped_roots.setdefault(root["name"], []).append(root)
    total_wall = sum(r["wall_s"] for r in roots)
    processes = len({span["pid"] for span in spans})
    lines = [
        f"run report — {len(spans)} spans, "
        f"{processes} process{'es' if processes != 1 else ''}, "
        f"root wall {total_wall:.3f}s"
    ]
    lines.append("")
    lines.append("span tree (wall time):")

    def emit(node: _Agg, depth: int) -> None:
        pct = 100.0 * node.wall / total_wall if total_wall > 0 else 0.0
        label = "  " * depth + node.name
        lines.append(
            f"  {label:<44} {node.wall:>9.3f}s {pct:>6.1f}%  ×{node.count}"
        )
        for child in node.children.values():
            emit(child, depth + 1)

    aggregated = [
        _aggregate(members, name, children)
        for name, members in grouped_roots.items()
    ]
    for node in sorted(aggregated, key=lambda n: -n.wall):
        emit(node, 0)
    coverage = tree_coverage(spans)
    lines.append("")
    lines.append(f"coverage: {100.0 * coverage:.1f}% of root wall time in child spans")

    acc: Dict[str, List[float]] = {}
    for node in aggregated:
        _self_times(node, acc)
    hot = sorted(acc.items(), key=lambda item: -item[1][0])[: max(0, top)]
    lines.append("")
    lines.append(f"hot spans (self wall time, top {len(hot)}):")
    for name, (self_wall, count) in hot:
        lines.append(f"  {name:<44} {self_wall:>9.3f}s  ×{int(count)}")
    return "\n".join(lines)

"""repro.obs — zero-dependency observability: spans, metrics, exporters.

The one front door for "what did this run actually spend its time on?":

* :func:`span` opens a nested, thread-safe span on the process-global
  tracer (a free no-op while tracing is disabled), and
  :func:`capture_spans` / :func:`adopt_spans` ship spans out of pool
  workers and re-parent them under the caller's tree.
* :class:`Metrics` registries absorb the counters that used to live as
  ad-hoc attributes on ``DiskCache``, ``ChainStructureMemo`` and
  ``CompiledSpecCache``; registries merge associatively into one flat
  ``metrics.json``.
* :func:`trace` is the run-level hook: install a tracer, do the work,
  and get a JSONL trace, a metrics snapshot and/or a human run report::

      import repro, repro.obs as obs

      with obs.trace("run.jsonl", report=True):
          repro.evaluate(config, params)

  The CLIs expose the same session via ``--trace PATH`` / ``--report`` /
  ``--metrics PATH``; benchmarks and CI enable it with the
  ``REPRO_TRACE`` / ``REPRO_METRICS`` / ``REPRO_REPORT`` environment
  variables (see :func:`session_from_env`).

Span and metric naming taxonomies are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, List, Optional

from .export import (
    PROM_CONTENT_TYPE,
    PromFormatError,
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    render_prom,
    render_report,
    tree_coverage,
    validate_prom_text,
    validate_trace,
    write_metrics,
    write_trace,
)
from .live import (
    FlightRecorder,
    LiveTelemetry,
    NULL_LIVE,
    RotatingTraceWriter,
    SloTracker,
    TraceCollector,
    TraceSampler,
)
from .metrics import (
    Counter,
    Gauge,
    GLOBAL_METRICS,
    Histogram,
    LogLinearHistogram,
    Metrics,
    WINDOWS_S,
    WindowSummary,
    WindowedHistogram,
    global_metrics,
)
from .reporter import Reporter, reporter, set_reporter
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    adopt_spans,
    capture_spans,
    current_span_id,
    current_tracer,
    set_tracer,
    span,
    tracing_active,
    use_tracer,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "GLOBAL_METRICS",
    "Histogram",
    "LiveTelemetry",
    "LogLinearHistogram",
    "Metrics",
    "NULL_LIVE",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "PROM_CONTENT_TYPE",
    "PromFormatError",
    "Reporter",
    "RotatingTraceWriter",
    "SloTracker",
    "Span",
    "TRACE_FORMAT_VERSION",
    "TraceCollector",
    "TraceFormatError",
    "TraceSampler",
    "TraceSession",
    "Tracer",
    "WINDOWS_S",
    "WindowSummary",
    "WindowedHistogram",
    "adopt_spans",
    "capture_spans",
    "current_span_id",
    "current_tracer",
    "global_metrics",
    "render_prom",
    "render_report",
    "reporter",
    "session_from_env",
    "set_reporter",
    "set_tracer",
    "span",
    "trace",
    "tracing_active",
    "tree_coverage",
    "use_tracer",
    "validate_prom_text",
    "validate_trace",
    "write_metrics",
    "write_trace",
]


class TraceSession:
    """One traced run: install a tracer, collect, export on exit.

    Args:
        trace_path: write the JSONL trace here on exit (optional).
        metrics_path: write the flat metrics snapshot here on exit
            (optional) — the global registry folded with every registered
            :meth:`add_metrics_source`.
        report: render the run report on exit.
        report_stream: destination for the report (default: ``sys.stderr``
            at exit time).
        root: open a root span of this name for the session's duration,
            so every span of the run hangs off one tree.
        top: hot-span count in the report.

    After exit, :attr:`spans` holds the finished span dicts and
    :meth:`collect_metrics` the merged registry — tests and callers can
    inspect a run without re-reading the files.
    """

    def __init__(
        self,
        trace_path: Optional[str] = None,
        *,
        metrics_path: Optional[str] = None,
        report: bool = False,
        report_stream=None,
        root: Optional[str] = None,
        top: int = 10,
    ) -> None:
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.report = report
        self._report_stream = report_stream
        self.root = root
        self.top = top
        self.tracer = Tracer()
        self.spans: List[Dict[str, Any]] = []
        self._sources: List[Callable[[], Metrics]] = []
        self._previous = None
        self._root_handle = None

    def add_metrics_source(self, source: Callable[[], Metrics]) -> None:
        """Register a registry provider folded into the exported metrics
        (e.g. ``engine.metrics_snapshot``); called once, at exit."""
        self._sources.append(source)

    def collect_metrics(self) -> Metrics:
        """The global registry folded with every registered source."""
        merged = Metrics()
        merged.merge(GLOBAL_METRICS)
        for source in self._sources:
            merged.merge(source())
        merged.gauge("obs.spans").set(len(self.spans) or len(self.tracer.finished()))
        return merged

    def __enter__(self) -> "TraceSession":
        self._previous = set_tracer(self.tracer)
        if self.root:
            self._root_handle = self.tracer.span(self.root)
            self._root_handle.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._root_handle is not None:
            self._root_handle.__exit__(exc_type, exc, tb)
            self._root_handle = None
        set_tracer(self._previous)
        self.spans = self.tracer.finished()
        if self.trace_path:
            write_trace(self.spans, self.trace_path)
        if self.metrics_path:
            write_metrics(self.collect_metrics(), self.metrics_path)
        if self.report:
            stream = (
                self._report_stream
                if self._report_stream is not None
                else sys.stderr
            )
            print(render_report(self.spans, top=self.top), file=stream)
        return False


def trace(
    trace_path: Optional[str] = None,
    *,
    metrics_path: Optional[str] = None,
    report: bool = False,
    report_stream=None,
    root: Optional[str] = None,
    top: int = 10,
) -> TraceSession:
    """A run-level tracing session (context manager); see
    :class:`TraceSession`."""
    return TraceSession(
        trace_path,
        metrics_path=metrics_path,
        report=report,
        report_stream=report_stream,
        root=root,
        top=top,
    )


def session_from_env(environ=None) -> Optional[TraceSession]:
    """A :class:`TraceSession` configured from the environment, or None.

    Reads ``REPRO_TRACE`` (JSONL path), ``REPRO_METRICS`` (metrics.json
    path) and ``REPRO_REPORT`` (any non-empty value prints the run report
    to stderr).  This is how CI's ``bench-smoke`` job traces the
    benchmark suite without the benchmarks growing CLI flags.
    """
    if environ is None:
        environ = os.environ
    trace_path = environ.get("REPRO_TRACE") or None
    metrics_path = environ.get("REPRO_METRICS") or None
    report = bool(environ.get("REPRO_REPORT"))
    if not (trace_path or metrics_path or report):
        return None
    return TraceSession(
        trace_path,
        metrics_path=metrics_path,
        report=report,
        root=environ.get("REPRO_TRACE_ROOT", "env"),
    )

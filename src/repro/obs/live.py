"""Live fleet telemetry: SLO burn, trace sampling, flight recording.

:mod:`repro.obs` started as a batch-run profiler — traces and metrics
written once at process exit.  This module is the serving-side layer on
top of it: everything a fleet operator needs *while the server is up*.

* :class:`SloTracker` — consumes each request's ``deadline_ms`` outcome
  and reports good/bad counts plus error-budget burn rate over the
  standard 1s/10s/60s windows (surfaced in ``/healthz``).
* :class:`TraceSampler` — a seeded head-based sampler: the keep/drop
  decision is made once at request arrival, so a kept request yields a
  complete stitched span tree and a dropped one costs a single RNG draw.
* :class:`TraceCollector` — gathers the worker-side spans a sampled
  request produced (shipped back over the shard pipe in the batch
  reply) and stitches them under the request's root span with fresh
  span ids, so two sampled requests sharing one batch never collide.
* :class:`RotatingTraceWriter` — streams stitched trees to a JSONL file
  with size-based rotation; every rotated file carries its own header
  and passes :func:`repro.obs.validate_trace` on its own.
* :class:`FlightRecorder` — a bounded ring of recent request and batch
  summaries, dumped to disk on ``WorkerCrashed`` or any 5xx so the
  crash drill leaves an actionable postmortem artifact.
* :class:`LiveTelemetry` — the bundle the server owns, wiring the above
  to a :class:`~repro.obs.metrics.Metrics` registry's windowed
  instruments.  :data:`NULL_LIVE` is the disabled variant: every hook is
  a no-op, preserving the free-when-off overhead contract.

Windowed instruments live under the ``serve.live.*`` namespace so they
never collide with the cumulative ``serve.*`` counters and histograms
that the batch exporter already owns.
"""

from __future__ import annotations

import collections
import json
import os
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from .export import TRACE_FORMAT_VERSION, _jsonable
from .metrics import WINDOWS_S, Metrics

__all__ = [
    "FlightRecorder",
    "LiveTelemetry",
    "NULL_LIVE",
    "RotatingTraceWriter",
    "SloTracker",
    "TraceCollector",
    "TraceSampler",
]


# --------------------------------------------------------------------- #
# SLO tracking
# --------------------------------------------------------------------- #


class SloTracker:
    """Good/bad request counts and error-budget burn per time window.

    Classification (documented in docs/observability.md):

    * **good** — a 2xx answer delivered inside the request's deadline
      (or with no deadline declared);
    * **bad** — a 5xx, a 429 shed, or a 2xx that blew its deadline;
    * 4xx client errors other than 429 are excluded entirely — a caller
      sending garbage does not burn the server's budget.

    Burn rate is the usual SRE definition: the fraction of requests that
    were bad over the window, divided by the error budget ``1 - target``.
    Burn 1.0 means the budget is being consumed exactly as provisioned;
    sustained burn above 1.0 means the SLO will be missed.

    Slots align on the wall clock exactly like
    :class:`~repro.obs.metrics.WindowedHistogram`, so trackers merge by
    addition if they ever need to.
    """

    SLOT_S = 0.25
    _HORIZON_SLOTS = int(max(WINDOWS_S) / SLOT_S) + 1

    __slots__ = ("target", "good", "bad", "_slots", "_clock")

    def __init__(self, target: float = 0.99) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target {target!r} outside (0, 1)")
        self.target = target
        self.good = 0
        self.bad = 0
        self._slots: Dict[int, list] = {}  # slot -> [good, bad]
        self._clock = time.time

    @staticmethod
    def classify(
        status: int, wall_s: float, deadline_ms: Optional[float]
    ) -> Optional[bool]:
        """True = good, False = bad, None = excluded from the SLO."""
        if 200 <= status < 300:
            if deadline_ms is not None and wall_s * 1e3 > deadline_ms:
                return False
            return True
        if status == 429 or status >= 500:
            return False
        return None

    def record(
        self,
        status: int,
        wall_s: float,
        deadline_ms: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Optional[bool]:
        verdict = self.classify(status, wall_s, deadline_ms)
        if verdict is None:
            return None
        if now is None:
            now = self._clock()
        slot_index = int(now / self.SLOT_S)
        slot = self._slots.get(slot_index)
        if slot is None:
            if len(self._slots) > self._HORIZON_SLOTS:
                floor = slot_index - self._HORIZON_SLOTS
                for stale in [s for s in self._slots if s < floor]:
                    del self._slots[stale]
            slot = self._slots.setdefault(slot_index, [0, 0])
        if verdict:
            slot[0] += 1
            self.good += 1
        else:
            slot[1] += 1
            self.bad += 1
        return verdict

    def window(
        self, window_s: float, now: Optional[float] = None
    ) -> Dict[str, float]:
        if now is None:
            now = self._clock()
        newest = int(now / self.SLOT_S)
        oldest = newest - int(window_s / self.SLOT_S) + 1
        good = bad = 0
        for slot_index, (s_good, s_bad) in self._slots.items():
            if oldest <= slot_index <= newest:
                good += s_good
                bad += s_bad
        total = good + bad
        bad_fraction = bad / total if total else 0.0
        return {
            "good": good,
            "bad": bad,
            "burn_rate": bad_fraction / (1.0 - self.target),
        }

    def to_dict(
        self,
        windows_s: Sequence[float] = WINDOWS_S,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        if now is None:
            now = self._clock()
        return {
            "target": self.target,
            "good": self.good,
            "bad": self.bad,
            "windows": {
                f"{w:g}s": self.window(w, now=now) for w in windows_s
            },
        }


# --------------------------------------------------------------------- #
# trace sampling
# --------------------------------------------------------------------- #


class TraceSampler:
    """A seeded head-based sampler issuing trace ids.

    The keep/drop decision happens once, at request arrival, from a
    seeded RNG — so a replayed seeded load samples the *same* requests
    run over run.  Trace ids are ``"<pid hex>-r<seq>"``: unique within a
    server process and disjoint from tracer span ids (``<pid>-<seq>``)
    and synthetic span ids (``<pid>-q<seq>``).
    """

    __slots__ = ("rate", "_rng", "_seq", "_lock")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate {rate!r} outside [0, 1]")
        self.rate = rate
        self._rng = random.Random(seed ^ 0x7ACE)
        self._seq = 0
        self._lock = threading.Lock()

    def sample(self, force: bool = False) -> Optional[str]:
        """A fresh trace id when this request is kept, else None."""
        with self._lock:
            if not force:
                if self.rate <= 0.0:
                    return None
                if self._rng.random() >= self.rate:
                    return None
            self._seq += 1
            return f"{os.getpid():x}-r{self._seq}"


class TraceCollector:
    """Pending worker spans per sampled trace id, stitched on finish.

    The batcher deposits the span dicts a batch reply carried for every
    sampled task in the batch; the HTTP layer calls :meth:`finish` when
    the request completes.  Stitching **clones** every collected span
    with a fresh id (``<orig>-t<seq>``) and re-parents the roots under
    the request's root span — two sampled requests that shared a batch
    each get a self-contained tree and ids never collide in the output
    file.
    """

    __slots__ = ("_pending", "_lock", "_seq", "max_traces", "dropped")

    def __init__(self, max_traces: int = 64) -> None:
        self._pending: "collections.OrderedDict[str, List[Dict[str, Any]]]" = (
            collections.OrderedDict()
        )
        self._lock = threading.Lock()
        self._seq = 0
        self.max_traces = max_traces
        self.dropped = 0

    def add(self, trace_id: str, spans: Sequence[Dict[str, Any]]) -> None:
        with self._lock:
            bucket = self._pending.get(trace_id)
            if bucket is None:
                while len(self._pending) >= self.max_traces:
                    self._pending.popitem(last=False)
                    self.dropped += 1
                bucket = self._pending.setdefault(trace_id, [])
            bucket.extend(spans)

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def finish(
        self, trace_id: str, root: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        """The stitched tree: the root span plus re-identified clones of
        every span collected for ``trace_id``, parented under it."""
        with self._lock:
            collected = self._pending.pop(trace_id, [])
            mapping: Dict[str, str] = {}
            clones: List[Dict[str, Any]] = []
            for span in collected:
                self._seq += 1
                clone = dict(span)
                mapping[clone["span_id"]] = new_id = (
                    f"{clone['span_id']}-t{self._seq}"
                )
                clone["span_id"] = new_id
                clones.append(clone)
        root = dict(root)
        root.setdefault("type", "span")
        root["parent_id"] = None
        attrs = dict(root.get("attrs") or {})
        attrs["trace_id"] = trace_id
        root["attrs"] = attrs
        for clone in clones:
            parent = clone.get("parent_id")
            clone["parent_id"] = mapping.get(parent, root["span_id"])
        return [root] + clones


class RotatingTraceWriter:
    """Streams span trees to a JSONL trace file with size rotation.

    Each file opens with the standard trace header (so every rotated
    file independently passes ``validate_trace``) and rotates to
    ``<path>.1``, ``<path>.2``, ... when it exceeds ``max_bytes``.
    """

    __slots__ = ("path", "max_bytes", "backups", "trees", "spans", "_lock")

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int = 4 * 1024 * 1024,
        backups: int = 3,
    ) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self.trees = 0
        self.spans = 0
        self._lock = threading.Lock()

    def _header(self) -> str:
        return json.dumps(
            {
                "type": "trace",
                "version": TRACE_FORMAT_VERSION,
                "generator": "repro.obs.live",
                "streaming": True,
            }
        )

    def _rotate(self) -> None:
        for i in range(self.backups - 1, 0, -1):
            src, dst = f"{self.path}.{i}", f"{self.path}.{i + 1}"
            if os.path.exists(src):
                os.replace(src, dst)
        if self.backups >= 1:
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)

    def write(self, spans: Sequence[Dict[str, Any]]) -> None:
        """Append one stitched tree (header written on a fresh file)."""
        if not spans:
            return
        lines = []
        for span in spans:
            record = dict(span)
            record["attrs"] = _jsonable(record.get("attrs", {}))
            record.setdefault("type", "span")
            lines.append(json.dumps(record))
        blob = "\n".join(lines) + "\n"
        with self._lock:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = -1
            if size > self.max_bytes:
                self._rotate()
                size = -1
            with open(self.path, "a", encoding="utf-8") as fh:
                if size <= 0:
                    fh.write(self._header() + "\n")
                fh.write(blob)
            self.trees += 1
            self.spans += len(spans)


# --------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------- #


class FlightRecorder:
    """A bounded ring of recent request/batch summaries, dumpable.

    Recording is one deque append (O(1), drops the oldest entry at
    capacity).  :meth:`dump` serializes the ring to a timestamped JSON
    file — called on ``WorkerCrashed`` and on any 5xx response, so the
    postmortem shows exactly what the server was doing when it went
    wrong, including the failing request itself (the HTTP layer records
    the request summary *before* triggering the dump).
    """

    __slots__ = ("capacity", "directory", "_ring", "_lock", "dumps",
                 "min_interval_s", "_last_dump")

    def __init__(
        self,
        directory: Optional[str],
        capacity: int = 256,
        min_interval_s: float = 1.0,
    ) -> None:
        self.directory = directory
        self.capacity = capacity
        self._ring: "collections.deque" = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dumps = 0
        self.min_interval_s = min_interval_s
        # Throttle per reason: a crash surfaces as both a worker-crash
        # dump (runtime hook) and an http-5xx dump (response path), in
        # either order — neither may suppress the other.
        self._last_dump: Dict[str, float] = {}

    def record(self, kind: str, **fields: Any) -> None:
        entry = {"unix": time.time(), "kind": kind}
        entry.update(fields)
        self._ring.append(entry)

    def last(self) -> Optional[Dict[str, Any]]:
        try:
            return self._ring[-1]
        except IndexError:
            return None

    def dump(
        self, reason: str, extra: Optional[Dict[str, Any]] = None
    ) -> Optional[str]:
        """Write the ring to ``<dir>/flight-<unixms>-<reason>.json``;
        returns the path, or None when no directory is configured or a
        dump for the same reason landed less than ``min_interval_s`` ago
        (a 5xx storm must not turn the recorder into a disk-filling
        amplifier)."""
        if self.directory is None:
            return None
        with self._lock:
            now = time.monotonic()
            if now - self._last_dump.get(reason, -1e9) < self.min_interval_s:
                return None
            self._last_dump[reason] = now
            records = list(self._ring)
            self.dumps += 1
        os.makedirs(self.directory, exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in reason)
        path = os.path.join(
            self.directory,
            f"flight-{int(time.time() * 1e3)}-{safe}.json",
        )
        payload = {
            "reason": reason,
            "dumped_unix": time.time(),
            "pid": os.getpid(),
            "capacity": self.capacity,
            "records": [
                {k: _jsonable(v) for k, v in record.items()}
                for record in records
            ],
        }
        if extra:
            payload["extra"] = {k: _jsonable(v) for k, v in extra.items()}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        return path


# --------------------------------------------------------------------- #
# the bundle the server owns
# --------------------------------------------------------------------- #


class LiveTelemetry:
    """Windowed instruments + SLO + sampler + flight recorder, wired up.

    One instance per :class:`~repro.serve.service.ReliabilityService`.
    Sub-features switch off independently: windowed metrics via
    ``windowed=False``, sampling via ``sample_rate=0`` with no writer,
    flight dumps via ``flight_dir=None``.  When *everything* is off the
    service holds :data:`NULL_LIVE` instead and the serving path pays
    only attribute reads that short-circuit.
    """

    enabled = True

    def __init__(
        self,
        metrics: Metrics,
        *,
        windowed: bool = True,
        slo_target: float = 0.99,
        sample_rate: float = 0.0,
        sample_seed: int = 0,
        trace_path: Optional[str] = None,
        flight_dir: Optional[str] = None,
        flight_capacity: int = 256,
    ) -> None:
        self.metrics = metrics
        self.windowed = windowed
        self.slo = SloTracker(slo_target)
        self.sampler = TraceSampler(sample_rate, seed=sample_seed)
        self.collector = TraceCollector()
        self.writer = (
            RotatingTraceWriter(trace_path) if trace_path else None
        )
        self.flight = FlightRecorder(flight_dir, capacity=flight_capacity)
        if windowed:
            self._request_s = metrics.windowed("serve.live.request_s")
            self._queue_wait_s = metrics.windowed("serve.live.queue_wait_s")
        else:
            self._request_s = None
            self._queue_wait_s = None
        self._shard_batch: Dict[int, Any] = {}
        self._shard_solve: Dict[int, Any] = {}

    # -- sampling ------------------------------------------------------- #

    def sample(self, force: bool = False) -> Optional[str]:
        return self.sampler.sample(force=force)

    def collect(
        self, trace_id: str, spans: Sequence[Dict[str, Any]]
    ) -> None:
        self.collector.add(trace_id, spans)

    def finish_trace(
        self, trace_id: str, root: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        """Stitch and (when a writer is configured) persist the tree."""
        tree = self.collector.finish(trace_id, root)
        self.metrics.counter("serve.live.traces.sampled").inc()
        if self.writer is not None:
            self.writer.write(tree)
        return tree

    # -- per-request / per-batch hooks ---------------------------------- #

    def record_request(
        self,
        status: int,
        wall_s: float,
        deadline_ms: Optional[float] = None,
        *,
        method: str = "",
        path: str = "",
        detail: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        if self._request_s is not None:
            self._request_s.observe(wall_s)
        verdict = self.slo.record(status, wall_s, deadline_ms)
        if verdict is True:
            self.metrics.counter("serve.live.slo.good").inc()
        elif verdict is False:
            self.metrics.counter("serve.live.slo.bad").inc()
        entry: Dict[str, Any] = {
            "method": method,
            "path": path,
            "status": status,
            "wall_ms": round(wall_s * 1e3, 3),
        }
        if deadline_ms is not None:
            entry["deadline_ms"] = deadline_ms
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if detail:
            entry.update(detail)
        self.flight.record("request", **entry)

    def record_queue_wait(self, wall_s: float) -> None:
        if self._queue_wait_s is not None:
            self._queue_wait_s.observe(wall_s)

    def record_batch(
        self, shard: Optional[int], size: int, solve_s: float
    ) -> None:
        key = -1 if shard is None else shard
        if self.windowed:
            batch = self._shard_batch.get(key)
            if batch is None:
                label = "solver" if shard is None else str(shard)
                batch = self._shard_batch[key] = self.metrics.windowed(
                    f"serve.live.shard.{label}.batch_size"
                )
                self._shard_solve[key] = self.metrics.windowed(
                    f"serve.live.shard.{label}.solve_s"
                )
            batch.observe(size)
            self._shard_solve[key].observe(solve_s)
        self.flight.record(
            "batch", shard=shard, size=size,
            solve_ms=round(solve_s * 1e3, 3),
        )

    # -- postmortems ---------------------------------------------------- #

    def dump_flight(
        self, reason: str, extra: Optional[Dict[str, Any]] = None
    ) -> Optional[str]:
        path = self.flight.dump(reason, extra)
        if path is not None:
            self.metrics.counter("serve.live.flight.dumps").inc()
        return path

    def on_worker_crash(self, index: int, exit_code: Any) -> None:
        """Crash-dump hook handed to the worker topology (fires on the
        topology's reader thread — everything here is thread-safe)."""
        self.flight.record("worker-crash", shard=index, exit_code=exit_code)
        self.dump_flight(f"worker-crash-shard{index}")

    # -- health payload ------------------------------------------------- #

    def health(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"slo": self.slo.to_dict()}
        if self.sampler.rate > 0 or self.writer is not None:
            payload["trace_sampling"] = {
                "rate": self.sampler.rate,
                "pending": self.collector.pending(),
                "dropped": self.collector.dropped,
                "written": 0 if self.writer is None else self.writer.trees,
            }
        if self.flight.directory is not None:
            payload["flight_recorder"] = {
                "directory": self.flight.directory,
                "capacity": self.flight.capacity,
                "dumps": self.flight.dumps,
            }
        return payload


class _NullLiveTelemetry:
    """The disabled path: every hook is a no-op; sampling never keeps."""

    enabled = False
    writer = None
    flight = None

    def sample(self, force: bool = False) -> Optional[str]:
        return None

    def collect(self, trace_id, spans) -> None:
        pass

    def finish_trace(self, trace_id, root) -> List[Dict[str, Any]]:
        return []

    def record_request(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_queue_wait(self, wall_s: float) -> None:
        pass

    def record_batch(self, shard, size, solve_s) -> None:
        pass

    def dump_flight(self, reason, extra=None) -> Optional[str]:
        return None

    def on_worker_crash(self, index, exit_code) -> None:
        pass

    def health(self) -> Dict[str, Any]:
        return {}


#: The shared disabled instance.
NULL_LIVE = _NullLiveTelemetry()

"""repro-trace — inspect, validate and summarize a JSONL trace file.

CI smoke jobs used to re-implement trace validation as inline heredoc
scripts; this CLI is the one shared implementation::

    repro-trace run.jsonl                     # validate + report
    repro-trace run.jsonl --require serve.batch --min-coverage 0.5
    repro-trace run.jsonl --json              # machine-readable summary

Exit codes: 0 valid, 2 malformed trace, 3 a ``--require``/``--min-*``
expectation failed, 1 unreadable file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .export import (
    TraceFormatError,
    render_report,
    tree_coverage,
    validate_trace,
)

__all__ = ["build_parser", "main", "summarize"]


def summarize(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The machine-readable summary ``--json`` prints."""
    names: Dict[str, int] = {}
    for span in spans:
        names[span["name"]] = names.get(span["name"], 0) + 1
    trace_ids = {
        span["attrs"]["trace_id"]
        for span in spans
        if isinstance(span.get("attrs"), dict) and "trace_id" in span["attrs"]
    }
    roots = [s for s in spans if s.get("parent_id") is None]
    return {
        "spans": len(spans),
        "roots": len(roots),
        "processes": len({span["pid"] for span in spans}),
        "coverage": tree_coverage(spans),
        "wall_s": sum(s["wall_s"] for s in roots),
        "names": dict(sorted(names.items())),
        "sampled_traces": len(trace_ids),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Validate and summarize a repro JSONL trace file.",
    )
    parser.add_argument("path", help="JSONL trace file to inspect")
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable summary instead of the run report",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="hot-span rows in the report (default 10)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail (exit 3) unless a span of this name is present "
        "(repeatable)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="FRAC",
        help="fail (exit 3) when tree coverage is below this fraction",
    )
    parser.add_argument(
        "--min-spans",
        type=int,
        default=1,
        metavar="N",
        help="fail (exit 3) with fewer than N spans (default 1)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the report; only validate and check expectations",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spans = validate_trace(args.path)
    except TraceFormatError as exc:
        print(f"repro-trace: invalid trace: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-trace: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1

    summary = summarize(spans)
    failures = []
    present = set(summary["names"])
    for name in args.require:
        if name not in present:
            failures.append(f"required span {name!r} not present")
    if summary["spans"] < args.min_spans:
        failures.append(
            f"only {summary['spans']} spans (need >= {args.min_spans})"
        )
    if (
        args.min_coverage is not None
        and summary["coverage"] < args.min_coverage
    ):
        failures.append(
            f"coverage {summary['coverage']:.3f} below {args.min_coverage}"
        )

    if args.json:
        summary["valid"] = True
        summary["failures"] = failures
        print(json.dumps(summary, indent=2, sort_keys=True))
    elif not args.quiet:
        print(
            f"{args.path}: valid trace — {summary['spans']} spans, "
            f"{summary['roots']} roots, {summary['processes']} "
            f"process(es), coverage {summary['coverage']:.1%}"
        )
        if summary["sampled_traces"]:
            print(f"sampled traces: {summary['sampled_traces']}")
        print()
        print(render_report(spans, top=args.top))

    if failures:
        for failure in failures:
            print(f"repro-trace: {failure}", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

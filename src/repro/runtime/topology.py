"""Worker topologies: one execution substrate under engine and serve.

Both consumers of parallelism in this codebase used to own a private
fan-out path — ``engine/pool.py`` drove an ephemeral
``ProcessPoolExecutor`` per sweep, while ``repro.serve`` parked its
solver and aux lanes on hand-rolled single-thread executors.  This
module is the shared substrate beneath both: a :class:`WorkerTopology`
is a fixed-size set of worker slots with one lifecycle
(``start``/``health``/``stop``-with-drain/crash-restart), one submission
interface (``submit`` returning a ``concurrent.futures.Future``,
``asubmit`` for asyncio callers), per-worker state owned by the worker,
and obs span shipping built in.

Three implementations share that contract:

* :class:`InlineTopology` — runs the handler synchronously in the
  caller; the degenerate single-process case and a debugging aid.
* :class:`ThreadTopology` — one single-thread executor per slot, so a
  ``shard=`` hint pins work (and the slot's state) to a specific thread.
  This is serve's solver and aux lane in single-process mode.
* :class:`ProcessTopology` — forked worker processes with duplex pipes,
  one reader thread per worker, crash detection with optional
  restart, and fork-inherited state (compiled-spec caches, installed
  faultpoints).  This is the engine pool and serve's shard workers.

The handler contract is ``handler(state, payload) -> result`` where
``state`` is whatever the per-worker ``worker_state(index)`` factory
built inside the worker.  Results and exceptions travel back through the
future.  When tracing is active in the submitting process, process
workers record their spans via :func:`repro.obs.capture_spans` and the
parent adopts them under the span that was open at submission time — the
same cross-process adoption contract the engine pool pioneered.

Crash semantics: a worker that dies mid-task fails every in-flight
future on that worker with :class:`WorkerCrashed`; if ``restart=True``
the slot respawns (after a short backoff, so a deterministic crasher
cannot hot-loop) and subsequent submissions land on the replacement.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, List, Optional, Sequence

from .. import obs

__all__ = [
    "InlineTopology",
    "ProcessTopology",
    "ThreadTopology",
    "WorkerCrashed",
    "WorkerInfo",
    "WorkerTopology",
]

_RESTART_DELAY_S = 0.05


class WorkerCrashed(RuntimeError):
    """A worker process died with tasks in flight (or before accepting one)."""

    def __init__(self, message: str, exit_code: Optional[int] = None) -> None:
        super().__init__(message)
        self.exit_code = exit_code


@dataclass(frozen=True)
class WorkerInfo:
    """Point-in-time health of one worker slot."""

    index: int
    pid: Optional[int]
    alive: bool
    restarts: int
    pending: int
    #: Unix time of the slot's most recent crash; None if it never died.
    last_crash: Optional[float] = None


class WorkerTopology:
    """Common lifecycle and submission surface for all topologies."""

    name: str = "repro-worker"

    @property
    def size(self) -> int:
        raise NotImplementedError

    def start(self) -> None:
        raise NotImplementedError

    def stop(self, drain: bool = True) -> None:
        raise NotImplementedError

    def submit(self, payload: Any, shard: Optional[int] = None) -> Future:
        """Submit one task; returns a future of the handler's result.

        ``shard`` pins the task to slot ``shard % size`` (the caller's
        routing decision); without it, slots are picked round-robin.
        """
        raise NotImplementedError

    async def asubmit(self, payload: Any, shard: Optional[int] = None) -> Any:
        """Awaitable :meth:`submit` for asyncio front ends."""
        return await asyncio.wrap_future(self.submit(payload, shard=shard))

    def health(self) -> List[WorkerInfo]:
        raise NotImplementedError

    def __enter__(self) -> "WorkerTopology":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop(drain=exc_type is None)
        return False


class InlineTopology(WorkerTopology):
    """Run the handler synchronously in the calling thread."""

    def __init__(
        self,
        handler: Callable[[Any, Any], Any],
        *,
        worker_state: Optional[Callable[[int], Any]] = None,
        name: str = "repro-inline",
    ) -> None:
        self._handler = handler
        self._worker_state = worker_state
        self._state: Any = None
        self._started = False
        self.name = name

    @property
    def size(self) -> int:
        return 1

    def start(self) -> None:
        if self._started:
            return
        self._state = self._worker_state(0) if self._worker_state else None
        self._started = True

    def stop(self, drain: bool = True) -> None:
        self._started = False
        self._state = None

    def submit(self, payload: Any, shard: Optional[int] = None) -> Future:
        if not self._started:
            raise RuntimeError(f"{self.name}: topology is not started")
        future: Future = Future()
        try:
            future.set_result(self._handler(self._state, payload))
        except BaseException as exc:  # noqa: BLE001 — travels via the future
            future.set_exception(exc)
        return future

    def health(self) -> List[WorkerInfo]:
        return [
            WorkerInfo(
                index=0,
                pid=os.getpid(),
                alive=self._started,
                restarts=0,
                pending=0,
            )
        ]


class ThreadTopology(WorkerTopology):
    """One single-thread executor per slot, for shard-pinned thread work.

    A slot's state lives on its own thread and is only ever touched by
    tasks routed to that slot, so handler code needs no locking — the
    same isolation model the process topology gives, minus the fork.
    """

    def __init__(
        self,
        handler: Callable[[Any, Any], Any],
        size: int = 1,
        *,
        worker_state: Optional[Callable[[int], Any]] = None,
        name: str = "repro-thread",
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self._handler = handler
        self._size = size
        self._worker_state = worker_state
        self._executors: Optional[List[ThreadPoolExecutor]] = None
        self._states: List[Any] = [None] * size
        self._round_robin = itertools.count()
        self.name = name

    @property
    def size(self) -> int:
        return self._size

    def start(self) -> None:
        if self._executors is not None:
            return
        self._executors = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"{self.name}-{i}")
            for i in range(self._size)
        ]
        if self._worker_state is not None:
            for i, executor in enumerate(self._executors):
                executor.submit(self._init_state, i).result()

    def _init_state(self, index: int) -> None:
        self._states[index] = self._worker_state(index)

    def stop(self, drain: bool = True) -> None:
        executors, self._executors = self._executors, None
        for executor in executors or ():
            executor.shutdown(wait=drain, cancel_futures=not drain)
        self._states = [None] * self._size

    def submit(self, payload: Any, shard: Optional[int] = None) -> Future:
        if self._executors is None:
            raise RuntimeError(f"{self.name}: topology is not started")
        index = self._pick(shard)
        return self._executors[index].submit(self._handler, self._states[index], payload)

    def _pick(self, shard: Optional[int]) -> int:
        if shard is not None:
            return shard % self._size
        return next(self._round_robin) % self._size

    def health(self) -> List[WorkerInfo]:
        alive = self._executors is not None
        return [
            WorkerInfo(index=i, pid=os.getpid(), alive=alive, restarts=0, pending=0)
            for i in range(self._size)
        ]


def _process_worker_main(
    name: str,
    index: int,
    handler: Callable[[Any, Any], Any],
    worker_state: Optional[Callable[[int], Any]],
    conn,
) -> None:
    """Loop of one forked worker: recv tasks, run the handler, send replies.

    The fork inherits the parent's installed tracer; spans recorded into
    it would land in a buffer nobody drains, so the worker resets to the
    null tracer and only records under :func:`obs.capture_spans` when
    the submitting side said tracing was active for that task.
    """
    obs.set_tracer(None)
    state = worker_state(index) if worker_state is not None else None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, task_id, payload, tracing = message
        spans: Optional[List[dict]] = None
        try:
            if tracing:
                with obs.capture_spans() as shipped:
                    value = handler(state, payload)
                spans = shipped
            else:
                value = handler(state, payload)
            reply = (task_id, True, value, spans)
        except BaseException as exc:  # noqa: BLE001 — shipped to the parent
            reply = (task_id, False, exc, spans)
        try:
            conn.send(reply)
        except Exception as exc:  # unpicklable result or exception
            substitute = RuntimeError(
                f"{name}[{index}]: reply could not be serialized: {exc!r}"
            )
            try:
                conn.send((task_id, False, substitute, None))
            except Exception:
                break
    conn.close()


class _ProcessWorker:
    """One slot of a :class:`ProcessTopology`: process + pipe + reader."""

    __slots__ = ("index", "process", "conn", "reader", "lock", "pending", "alive")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.reader: Optional[threading.Thread] = None
        self.lock = threading.Lock()
        # task_id -> (future, parent span id captured at submission)
        self.pending: dict = {}
        self.alive = True


class ProcessTopology(WorkerTopology):
    """Forked worker processes with crash detection and optional restart.

    Uses the ``fork`` start method deliberately: workers inherit compiled
    caches, installed faultpoints, and module state built in the parent,
    and task payloads still cross a pipe (so the handler contract is the
    same as under spawn).  One daemon reader thread per worker resolves
    futures as replies arrive; span adoption happens on the reader thread
    *before* the future resolves, so by the time a caller observes a
    result its worker spans are already grafted into the parent trace.
    """

    def __init__(
        self,
        handler: Callable[[Any, Any], Any],
        size: int,
        *,
        worker_state: Optional[Callable[[int], Any]] = None,
        restart: bool = False,
        metrics: Optional[obs.Metrics] = None,
        on_crash: Optional[Callable[[int, Optional[int]], None]] = None,
        name: str = "repro-proc",
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self._handler = handler
        self._size = size
        self._worker_state = worker_state
        self._restart = restart
        # Crash-dump hook: called as on_crash(index, exit_code) from the
        # crashed worker's reader thread, after in-flight futures fail
        # but before any restart (the flight recorder's dump point).
        self._on_crash = on_crash
        self._ctx = get_context("fork")
        self._workers: List[_ProcessWorker] = []
        self._restart_counts = [0] * size
        self._last_crash: List[Optional[float]] = [None] * size
        self._stopping = False
        self._lock = threading.Lock()
        self._task_ids = itertools.count()
        self._round_robin = itertools.count()
        self.name = name
        registry = metrics if metrics is not None else obs.Metrics()
        self._spawned = registry.counter("runtime.worker.spawned")
        self._crashes = registry.counter("runtime.worker.crashes")
        self._restarts = registry.counter("runtime.worker.restarts")
        self._crash_failed = registry.counter("runtime.tasks.crash_failed")
        self._submitted = registry.counter("runtime.tasks.submitted")

    @property
    def size(self) -> int:
        return self._size

    def start(self) -> None:
        with self._lock:
            if self._workers:
                return
            self._stopping = False
            self._workers = [self._spawn(i) for i in range(self._size)]

    def _spawn(self, index: int) -> _ProcessWorker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(self.name, index, self._handler, self._worker_state, child_conn),
            name=f"{self.name}-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _ProcessWorker(index, process, parent_conn)
        worker.reader = threading.Thread(
            target=self._read_replies,
            args=(worker,),
            name=f"{self.name}-{index}-reader",
            daemon=True,
        )
        worker.reader.start()
        self._spawned.inc()
        return worker

    def submit(self, payload: Any, shard: Optional[int] = None) -> Future:
        if not self._workers:
            raise RuntimeError(f"{self.name}: topology is not started")
        if self._stopping:
            raise RuntimeError(f"{self.name}: topology is stopping")
        index = shard % self._size if shard is not None else next(self._round_robin) % self._size
        worker = self._workers[index]
        future: Future = Future()
        task_id = next(self._task_ids)
        tracing = obs.tracing_active()
        parent_span = obs.current_span_id() if tracing else None
        with worker.lock:
            if not worker.alive:
                future.set_exception(
                    WorkerCrashed(f"{self.name}[{index}]: worker is down (restarting)")
                )
                return future
            worker.pending[task_id] = (future, parent_span)
            try:
                worker.conn.send(("task", task_id, payload, tracing))
            except (OSError, ValueError) as exc:
                worker.pending.pop(task_id, None)
                future.set_exception(
                    WorkerCrashed(f"{self.name}[{index}]: worker pipe is closed: {exc}")
                )
                return future
        self._submitted.inc()
        return future

    def _read_replies(self, worker: _ProcessWorker) -> None:
        while True:
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                break
            task_id, ok, value, spans = reply
            with worker.lock:
                entry = worker.pending.pop(task_id, None)
            if entry is None:
                continue
            future, parent_span = entry
            if spans:
                obs.adopt_spans(spans, parent_span)
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)
        self._on_worker_exit(worker)

    def _on_worker_exit(self, worker: _ProcessWorker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=10)
        exit_code = worker.process.exitcode
        with worker.lock:
            worker.alive = False
            pending = list(worker.pending.values())
            worker.pending.clear()
        if self._stopping and exit_code == 0 and not pending:
            return  # clean drain
        self._crashes.inc()
        self._last_crash[worker.index] = time.time()
        crash = WorkerCrashed(
            f"{self.name}[{worker.index}]: worker pid {worker.process.pid} exited "
            f"with code {exit_code} ({len(pending)} task(s) in flight)",
            exit_code=exit_code,
        )
        if pending:
            self._crash_failed.inc(len(pending))
        for future, _parent in pending:
            if not future.done():
                future.set_exception(crash)
        if self._on_crash is not None:
            try:
                self._on_crash(worker.index, exit_code)
            except Exception:  # the hook must never kill the reader
                pass
        if not self._restart:
            return
        # Backoff keeps a deterministic crasher (e.g. a fork-inherited
        # faultpoint) from respawn-looping at CPU speed.
        time.sleep(_RESTART_DELAY_S)
        with self._lock:
            if self._stopping or not self._workers:
                return
            self._restart_counts[worker.index] += 1
            self._restarts.inc()
            self._workers[worker.index] = self._spawn(worker.index)

    def stop(self, drain: bool = True) -> None:
        with self._lock:
            if not self._workers:
                return
            self._stopping = True
            workers = list(self._workers)
        for worker in workers:
            if drain:
                with worker.lock:
                    if worker.alive:
                        try:
                            worker.conn.send(("stop",))
                        except (OSError, ValueError):
                            pass
            else:
                worker.process.terminate()
        for worker in workers:
            worker.process.join(timeout=10)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            if worker.reader is not None:
                worker.reader.join(timeout=10)
        with self._lock:
            self._workers = []

    def health(self) -> List[WorkerInfo]:
        with self._lock:
            workers = list(self._workers)
        infos = []
        for worker in workers:
            with worker.lock:
                pending = len(worker.pending)
                alive = worker.alive and worker.process.is_alive()
            infos.append(
                WorkerInfo(
                    index=worker.index,
                    pid=worker.process.pid,
                    alive=alive,
                    restarts=self._restart_counts[worker.index],
                    pending=pending,
                    last_crash=self._last_crash[worker.index],
                )
            )
        return infos

    def restart_count(self) -> int:
        """Total restarts across all slots since :meth:`start`."""
        return sum(self._restart_counts)


def gather(futures: Sequence[Future]) -> List[Any]:
    """Wait on futures in order, returning results (raises the first error)."""
    return [future.result() for future in futures]

"""Chunked fan-out over a :class:`~repro.runtime.topology.ProcessTopology`.

Work is split into one contiguous chunk per worker so each process gets
the largest possible batch for its structure memo and batched solves.
Because every execution path is bitwise-deterministic (see
:mod:`repro.engine.solver`), chunk boundaries and worker scheduling cannot
affect results — only wall-clock time.

That determinism is also the safety net: if a worker dies mid-batch (a
worker killed by the OOM killer, a signal, a crashed interpreter),
:func:`run_chunks` logs the failure and recomputes the crashed chunks in
the calling process, producing bitwise-identical results — a dead worker
can cost time, never correctness.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, List, Sequence, Tuple, TypeVar

from . import faultpoints
from .topology import ProcessTopology, WorkerCrashed

__all__ = ["MIN_TASKS_FOR_POOL", "default_jobs", "should_pool", "split_chunks", "run_chunks"]

logger = logging.getLogger("repro.runtime.chunks")

T = TypeVar("T")
R = TypeVar("R")

#: Below this many tasks the pool's startup cost outweighs any overlap.
MIN_TASKS_FOR_POOL = 8


def default_jobs() -> int:
    """The default worker count: ``os.cpu_count()`` (at least 1)."""
    return max(1, os.cpu_count() or 1)


def should_pool(jobs: int, total_tasks: int) -> bool:
    """Whether a process pool can actually help for this much work.

    Pooling loses when there is nothing to overlap with: a single
    requested job, too few tasks to amortize process startup, or a
    single-CPU host (forked workers would just time-slice one core while
    paying fork/pickle overhead and losing the caller's warm memos).
    Because every execution path is bitwise-deterministic, this choice
    affects wall-clock time only, never results.
    """
    return (
        jobs > 1
        and total_tasks >= MIN_TASKS_FOR_POOL
        and default_jobs() > 1
    )


def split_chunks(items: Sequence[T], parts: int) -> List[List[T]]:
    """Split ``items`` into at most ``parts`` contiguous, near-even chunks."""
    parts = max(1, min(parts, len(items)))
    size, remainder = divmod(len(items), parts)
    chunks: List[List[T]] = []
    start = 0
    for i in range(parts):
        stop = start + size + (1 if i < remainder else 0)
        chunks.append(list(items[start:stop]))
        start = stop
    return chunks


def _call_chunk(state: None, payload: Tuple[Callable[[List[T]], R], List[T]]) -> R:
    """Worker entry point: unwrap (worker, chunk) and run it.

    The :data:`~repro.runtime.faultpoints.POOL_WORKER_START` fault point
    fires here — inside the worker process, never on the in-process
    fallback path — so injected worker deaths exercise exactly the
    production recovery in :func:`run_chunks`.
    """
    worker, chunk = payload
    faultpoints.fire(faultpoints.POOL_WORKER_START)
    return worker(chunk)


def run_chunks(
    worker: Callable[[List[T]], R],
    chunks: List[List[T]],
    jobs: int,
) -> List[R]:
    """Apply ``worker`` to every chunk, in order, possibly in parallel.

    Falls back to in-process execution when a pool cannot help (see
    :func:`should_pool`) or when everything fits in one chunk.  ``worker``
    must be a module-level callable (picklable) for the pooled path.

    Chunks whose worker process died are recomputed in-process.  All
    paths are bitwise deterministic, so the recovery changes wall-clock
    time only.  Worker spans ship back automatically when tracing is
    active — the topology adopts them under the caller's current span.
    """
    total = sum(len(c) for c in chunks)
    if len(chunks) <= 1 or not should_pool(jobs, total):
        return [worker(chunk) for chunk in chunks]
    with ProcessTopology(
        _call_chunk, size=min(jobs, len(chunks)), name="repro-pool"
    ) as topology:
        futures = [
            topology.submit((worker, chunk), shard=i) for i, chunk in enumerate(chunks)
        ]
        results: List[R] = []
        crashed = 0
        for future, chunk in zip(futures, chunks):
            try:
                results.append(future.result())
            except WorkerCrashed:
                crashed += 1
                results.append(worker(chunk))
    if crashed:
        logger.warning(
            "%d pool worker(s) died mid-batch; recomputed %d chunk(s) in-process",
            crashed,
            crashed,
        )
    return results

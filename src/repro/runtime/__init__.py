"""repro.runtime — the one execution substrate under engine and serve.

Everything in this repo that fans work out — the sweep engine's process
pool, the Monte-Carlo replica runner, serve's solver/aux lanes and its
sharded multi-process topology — runs on the worker topologies defined
here.  One lifecycle (spawn / health / drain / crash-restart), one
submission interface (futures, with an asyncio bridge), per-worker state
owned by the worker, obs span adoption built in, and a shared
fault-injection registry (:mod:`repro.runtime.faultpoints`).

Layers:

* :mod:`~repro.runtime.topology` — :class:`InlineTopology`,
  :class:`ThreadTopology`, :class:`ProcessTopology` behind the common
  :class:`WorkerTopology` contract.
* :mod:`~repro.runtime.chunks` — the engine-style "split into contiguous
  chunks, one per worker" fan-out (:func:`run_chunks`) with in-process
  fallback and crash recovery, built on :class:`ProcessTopology`.
* :mod:`~repro.runtime.faultpoints` — named fault-injection points
  shared by every layer (the registry engine code historically imported
  from ``repro.engine.faultpoints``, which is now a shim onto this one).
"""

from __future__ import annotations

from . import faultpoints
from .chunks import (
    MIN_TASKS_FOR_POOL,
    default_jobs,
    run_chunks,
    should_pool,
    split_chunks,
)
from .topology import (
    InlineTopology,
    ProcessTopology,
    ThreadTopology,
    WorkerCrashed,
    WorkerInfo,
    WorkerTopology,
)

__all__ = [
    "InlineTopology",
    "MIN_TASKS_FOR_POOL",
    "ProcessTopology",
    "ThreadTopology",
    "WorkerCrashed",
    "WorkerInfo",
    "WorkerTopology",
    "default_jobs",
    "faultpoints",
    "run_chunks",
    "should_pool",
    "split_chunks",
]

"""Named fault-injection points for the execution substrate.

Failure handling — corrupt disk-cache entries, dying pool workers,
crashing shard workers, stale memo state — is only trustworthy if it can
be *exercised*, so the code paths that can fail in production call
:func:`fire` at a handful of named points.  By default nothing is
installed and ``fire`` is a single dict lookup; tests and
:mod:`repro.verify.faults` install actions that corrupt a file just
before it is read, kill a worker process as it starts a chunk, and so
on.

Actions installed before a worker process forks are inherited by the
workers (:class:`repro.runtime.ProcessTopology` uses the ``fork`` start
method), which is exactly what worker-death injection needs.

Example::

    from repro.runtime import faultpoints

    with faultpoints.injected(faultpoints.CACHE_READ, corrupt_the_file):
        engine.evaluate_many(pairs)   # every cache read is sabotaged
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Tuple

__all__ = [
    "CACHE_READ",
    "POOL_WORKER_START",
    "SERVE_WORKER_CRASH",
    "active",
    "clear",
    "fire",
    "injected",
    "install",
    "uninstall",
]

#: Fired with the entry's path just before the disk cache reads it.
CACHE_READ = "cache.read"

#: Fired inside a pool worker process before it evaluates a chunk.
POOL_WORKER_START = "pool.worker_start"

#: Fired inside a serve shard worker before it solves a batch.
SERVE_WORKER_CRASH = "serve.worker_crash"

_ACTIONS: Dict[str, Callable[..., Any]] = {}
_LOCK = threading.Lock()


def install(point: str, action: Callable[..., Any]) -> None:
    """Install ``action`` at ``point`` (replacing any previous action)."""
    with _LOCK:
        _ACTIONS[point] = action


def uninstall(point: str) -> None:
    """Remove the action at ``point`` (no-op if none installed)."""
    with _LOCK:
        _ACTIONS.pop(point, None)


def clear() -> None:
    """Remove every installed action."""
    with _LOCK:
        _ACTIONS.clear()


def active() -> Tuple[str, ...]:
    """Names of the points with an installed action, sorted."""
    with _LOCK:
        return tuple(sorted(_ACTIONS))


def fire(point: str, *args: Any, **kwargs: Any) -> Any:
    """Invoke the action installed at ``point``, if any.

    Production call sites pass whatever context the injector might want
    (e.g. the cache file's path).  Returns the action's result, or None
    when nothing is installed.  An action may raise — the caller's normal
    error handling is exactly what is under test.
    """
    action = _ACTIONS.get(point)
    if action is None:
        return None
    return action(*args, **kwargs)


@contextmanager
def injected(point: str, action: Callable[..., Any]) -> Iterator[None]:
    """Scoped :func:`install`: the action is removed on exit."""
    install(point, action)
    try:
        yield
    finally:
        uninstall(point)

"""repro.fleet — heterogeneous, time-varying fleet modelling.

The paper assumes ``N`` identical exponential bricks.  This package
relaxes both assumptions on top of the compile-bind-solve pipeline:

* :mod:`~repro.fleet.cohorts` — :class:`FleetSpec`: the fleet as
  cohorts (vintages, batches) with per-cohort ``Parameters`` overrides,
  repair-interval delays and repair costs, in the spirit of the
  tahoe-lafs lossmodel's non-uniform peer MTBFs;
* :mod:`~repro.fleet.phasetype` — Weibull infant-mortality / wear-out
  lifetimes fitted to 2-3 stage Coxian / mixed-Erlang phase-type
  distributions with measured, certifiable moment errors;
* :mod:`~repro.fleet.chain` — the fleet CTMC (per-cohort failure counts
  x lifetime stages) rendered through one canonical topology walker
  into both a declarative :class:`ModelSpec` (dense backend) and an
  indirect sparse build, bitwise-consistently; homogeneous fleets
  collapse bitwise onto the paper's uniform chain;
* :mod:`~repro.fleet.scenarios` — the seeded scenario generator and
  corpus runner behind the ``repro-scenarios`` CLI: thousands of
  deterministic scenarios through the sweep engine and both solver
  backends, every one held to differential oracles;
* :mod:`~repro.fleet.simulate` — the entity-level Gillespie leg drawing
  phase-type lifetimes, cross-checking the stage expansion.

The matching verification lattice lives in :mod:`repro.verify.fleet`
(the ``fleet-*`` invariants).
"""

from .chain import (
    DEFAULT_SPEC_STATE_LIMIT,
    FleetModel,
    count_states,
    fleet_edges,
    fleet_env,
    fleet_model_spec,
    fleet_structure,
    initial_state,
)
from .cohorts import Cohort, CohortRates, FleetError, FleetSpec
from .phasetype import (
    DEFAULT_MAX_STAGES,
    PhaseType,
    PhaseTypeError,
    PhaseTypeFit,
    fit_lifetime,
    fit_weibull,
    weibull_moments,
)
from .scenarios import (
    FAMILIES,
    CorpusHeader,
    CorpusRun,
    Scenario,
    ScenarioGenerator,
    ScenarioResult,
    canonical_fleets,
    read_corpus,
    run_corpus,
    write_corpus,
)
from .simulate import FleetMonteCarloResult, estimate_fleet_mttdl

__all__ = [
    "Cohort",
    "CohortRates",
    "CorpusHeader",
    "CorpusRun",
    "DEFAULT_MAX_STAGES",
    "DEFAULT_SPEC_STATE_LIMIT",
    "FAMILIES",
    "FleetError",
    "FleetModel",
    "FleetMonteCarloResult",
    "FleetSpec",
    "PhaseType",
    "PhaseTypeError",
    "PhaseTypeFit",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioResult",
    "canonical_fleets",
    "count_states",
    "estimate_fleet_mttdl",
    "fit_lifetime",
    "fit_weibull",
    "fleet_edges",
    "fleet_env",
    "fleet_model_spec",
    "fleet_structure",
    "initial_state",
    "read_corpus",
    "run_corpus",
    "weibull_moments",
    "write_corpus",
]

"""Fleet CTMCs: per-cohort failure counts and phase-type stages.

State encoding
--------------

A fleet state is a tuple with one entry per cohort; cohort ``c``'s
entry is ``(s_1, ..., s_K, f)`` — healthy bricks per lifetime stage
plus the failed count — with ``s_1 + ... + s_K + f == nodes_c``.  The
absorbing state is the shared ``"loss"`` label.  Transitions:

* *failure*: a stage-``i`` brick fails (stage exit x (1 - continue),
  plus the cohort's internal-array rate ``lambda_D`` from every stage);
* *ageing*: a stage-``i`` brick advances to stage ``i + 1``;
* *repair*: each failed brick rebuilds independently at the cohort's
  effective rate — ``f_c * mu_c`` in aggregate.  Fully parallel repair
  is what makes MTTDL invariant under cohort permutation *and* makes an
  all-equal fleet lump exactly onto the paper's uniform chain with
  ``parallel_repair=True`` (the scheduling ablation of
  :func:`repro.models.specs.internal_raid_spec`);
* *loss*: with ``t`` bricks already down, any further failure — or a
  critical-restripe hard error at rate ``(n_c - f_c) k_t lambda_S_c``
  per cohort — absorbs.

Bitwise differential contract
-----------------------------

One walker (:func:`fleet_edges`) is the single source of truth for the
topology.  It emits, per source state, an ordered list of
``(target, ((coeff, param), ...))`` entries with **at most one edge per
(source, target) pair** — parallel contributions are pre-merged into a
left-nested term sum.  The spec path renders each entry as
``const(c1)*param(p1) + const(c2)*param(p2) + ...`` and the sparse
:func:`~repro.core.sparse.build_indirect` path accumulates
``c1*env[p1] + c2*env[p2] + ...`` left-to-right: identical IEEE
operation order, so the dense and sparse generators agree bitwise.
For a single exponential cohort the chain reduces edge-for-edge to
``internal_raid_spec(t, parallel_repair=True)`` — the environment
pre-computes ``lam = lambda_N + lambda_D`` and
``loss = lam + k_t * lambda_S`` with exactly the float-op order of the
uniform spec's rate expressions, which the homogeneous-collapse oracle
in :mod:`repro.verify.fleet` checks bitwise.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core import CTMC
from ..core.solvers import (
    SolveOptions,
    SolveRequest,
    solve,
)
from ..core.sparse import SparseChain, build_indirect
from ..core.spec import ModelSpec, RateExpr, SpecBuilder, const, param
from ..models.specs import compiled, internal_raid_env, internal_raid_spec
from .cohorts import FleetError, FleetSpec

__all__ = [
    "DEFAULT_SPEC_STATE_LIMIT",
    "FleetModel",
    "LOSS",
    "count_states",
    "fleet_edges",
    "fleet_env",
    "fleet_model_spec",
    "fleet_structure",
    "initial_state",
]

LOSS = "loss"

#: Beyond this many states the declarative-spec path (which enumerates
#: every state into a ModelSpec) refuses; use the sparse indirect path.
DEFAULT_SPEC_STATE_LIMIT = 20_000

#: ``(nodes, stages)`` per cohort — everything the topology depends on.
Structure = Tuple[Tuple[int, int], ...]
CohortState = Tuple[int, ...]
FleetState = Union[str, Tuple[CohortState, ...]]
EdgeTerms = Tuple[Tuple[int, str], ...]


def fleet_structure(fleet: FleetSpec) -> Structure:
    """The ``(nodes, stages)`` shape of each cohort."""
    return tuple((c.nodes, c.stages) for c in fleet.cohorts)


def initial_state(structure: Structure) -> FleetState:
    """All bricks healthy, in lifetime stage 1."""
    return tuple(
        (nodes,) + (0,) * (stages - 1) + (0,) for nodes, stages in structure
    )


def count_states(structure: Structure, fault_tolerance: int) -> int:
    """Exact transient-state count (+1 for loss), without enumeration.

    Per cohort with ``f_c`` failed bricks the healthy remainder can sit
    in any stage composition — ``C(healthy + K - 1, K - 1)`` of them —
    and the fleet-level count convolves cohorts under
    ``sum f_c <= t``.  Every composition is reachable (ageing moves one
    brick at a time), so this matches the BFS exactly.
    """
    dp = [1] + [0] * fault_tolerance
    for nodes, stages in structure:
        new = [0] * (fault_tolerance + 1)
        for f_prev, ways in enumerate(dp):
            if not ways:
                continue
            for f_c in range(0, min(nodes, fault_tolerance - f_prev) + 1):
                healthy = nodes - f_c
                new[f_prev + f_c] += ways * comb(
                    healthy + stages - 1, stages - 1
                )
        dp = new
    return sum(dp) + 1


def _with_cohort(
    state: Tuple[CohortState, ...], index: int, entry: CohortState
) -> Tuple[CohortState, ...]:
    return state[:index] + (entry,) + state[index + 1 :]


def fleet_edges(
    state: FleetState, structure: Structure, fault_tolerance: int
) -> Iterator[Tuple[FleetState, EdgeTerms]]:
    """Outgoing edges of ``state``, merged per target, in canonical
    order (cohorts in declaration order; within a cohort: failures by
    stage, ageing by stage, critical sector loss, repair)."""
    if state == LOSS:
        return
    failed_total = sum(cs[-1] for cs in state)
    critical = failed_total == fault_tolerance
    terms: Dict[FleetState, List[Tuple[int, str]]] = {}

    def add(target: FleetState, coeff: int, name: str) -> None:
        terms.setdefault(target, []).append((coeff, name))

    for c, (cohort_state, (nodes, stages)) in enumerate(zip(state, structure)):
        failed = cohort_state[-1]
        healthy = nodes - failed
        for i in range(stages):
            count = cohort_state[i]
            if not count:
                continue
            if stages == 1:
                name = f"loss_{c}" if critical else f"lam_{c}"
            else:
                name = f"fail_{c}_{i + 1}"
            if critical:
                add(LOSS, count, name)
            else:
                entry = list(cohort_state)
                entry[i] -= 1
                entry[-1] += 1
                add(_with_cohort(state, c, tuple(entry)), count, name)
        for i in range(stages - 1):
            count = cohort_state[i]
            if not count:
                continue
            entry = list(cohort_state)
            entry[i] -= 1
            entry[i + 1] += 1
            add(_with_cohort(state, c, tuple(entry)), count, f"adv_{c}_{i + 1}")
        if critical and stages > 1 and healthy:
            add(LOSS, healthy, f"crit_{c}")
        if failed:
            entry = list(cohort_state)
            entry[0] += 1
            entry[-1] -= 1
            add(_with_cohort(state, c, tuple(entry)), failed, f"mu_{c}")
    for target, parts in terms.items():
        yield target, tuple(parts)


def _terms_expr(parts: EdgeTerms) -> RateExpr:
    """``const(c1)*param(p1) + const(c2)*param(p2) + ...`` left-nested —
    the same association order the sparse path's float accumulation
    uses, keeping both generators bitwise identical."""
    coeff, name = parts[0]
    expr = const(float(coeff)) * param(name)
    for coeff, name in parts[1:]:
        expr = expr + const(float(coeff)) * param(name)
    return expr


@lru_cache(maxsize=None)
def fleet_model_spec(structure: Structure, fault_tolerance: int) -> ModelSpec:
    """The fleet chain as a declarative :class:`ModelSpec`.

    Structurally identical fleets (same cohort sizes and stage counts)
    share one spec — and therefore one compiled topology in the
    :func:`repro.models.specs.compiled` cache — regardless of their
    rates; heterogeneity lives entirely in the binding environment.
    """
    total = sum(nodes for nodes, _ in structure)
    if fault_tolerance < 1:
        raise FleetError("fault_tolerance must be >= 1")
    if total <= fault_tolerance:
        raise FleetError("fleet must be larger than the fault tolerance")
    start = initial_state(structure)
    builder = SpecBuilder()
    order: List[FleetState] = [start]
    seen = {start}
    pos = 0
    while pos < len(order):
        source = order[pos]
        for target, parts in fleet_edges(source, structure, fault_tolerance):
            builder.add_rate(source, target, _terms_expr(parts))
            if target not in seen:
                seen.add(target)
                order.append(target)
        pos += 1
    name = f"fleet_t{fault_tolerance}_" + "_".join(
        f"{nodes}x{stages}" for nodes, stages in structure
    )
    return builder.build(name, initial_state=start)


def fleet_env(fleet: FleetSpec) -> Dict[str, float]:
    """Binding environment for :func:`fleet_model_spec`.

    Exponential cohorts pre-compute ``lam_c = lambda_N + lambda_D`` and
    ``loss_c = lam_c + k_t * lambda_S`` in exactly the float-op order of
    the uniform spec's rate tree, so a homogeneous fleet binds to a
    generator bitwise equal to the paper's chain.  Phase-type cohorts
    expose per-stage ageing (``adv``) and failure (``fail``, with
    ``lambda_D`` competing from every stage) rates plus the critical
    sector term ``crit_c = k_t * lambda_S``.
    """
    k_t = fleet.critical_sector_fraction
    env: Dict[str, float] = {}
    for c, cohort in enumerate(fleet.cohorts):
        rates = fleet.cohort_rates(cohort)
        lambda_d = rates.array_failure_rate
        lambda_s = rates.restripe_sector_loss_rate
        lifetime = cohort.lifetime
        if lifetime is None or lifetime.num_stages == 1:
            if lifetime is None:
                node_hazard = rates.node_failure_rate
            else:
                node_hazard = lifetime.rates[0] * (1.0 - lifetime.continues[0])
            lam = node_hazard + lambda_d
            env[f"lam_{c}"] = lam
            env[f"loss_{c}"] = lam + k_t * lambda_s
        else:
            for i, (rate, cont) in enumerate(
                zip(lifetime.rates, lifetime.continues), start=1
            ):
                if i < lifetime.num_stages:
                    env[f"adv_{c}_{i}"] = rate * cont
                env[f"fail_{c}_{i}"] = rate * (1.0 - cont) + lambda_d
            env[f"crit_{c}"] = k_t * lambda_s
        env[f"mu_{c}"] = rates.repair_rate
    return env


class FleetModel:
    """MTTDL model for a heterogeneous fleet.

    Wraps a :class:`FleetSpec` with the compile-bind-solve machinery:
    a shared declarative spec for the dense path, an indirect BFS build
    for the sparse path, and backend routing through
    :func:`repro.core.solvers.solve` (small fleets solve densely, large
    ones through the sparse/iterative backend, per
    :class:`SolveOptions`).
    """

    def __init__(
        self,
        fleet: FleetSpec,
        *,
        max_spec_states: int = DEFAULT_SPEC_STATE_LIMIT,
    ) -> None:
        self._fleet = fleet
        self._max_spec_states = max_spec_states
        self._structure = fleet_structure(fleet)
        self._num_states = count_states(self._structure, fleet.fault_tolerance)
        self._env: Optional[Dict[str, float]] = None

    @property
    def fleet(self) -> FleetSpec:
        return self._fleet

    @property
    def structure(self) -> Structure:
        return self._structure

    @property
    def num_states(self) -> int:
        """Exact state count (loss included), computed combinatorially."""
        return self._num_states

    def env(self) -> Dict[str, float]:
        if self._env is None:
            self._env = fleet_env(self._fleet)
        return self._env

    def spec(self) -> ModelSpec:
        if self._num_states > self._max_spec_states:
            raise FleetError(
                f"fleet has {self._num_states} states, beyond the spec "
                f"path's limit of {self._max_spec_states}; use "
                "sparse_chain() / the sparse_iterative backend"
            )
        return fleet_model_spec(self._structure, self._fleet.fault_tolerance)

    def chain(self) -> CTMC:
        """The dense CTMC, bound through the compiled shared spec."""
        return compiled(self.spec()).bind(self.env())

    def sparse_chain(self, *, max_states: int = 2_000_000) -> SparseChain:
        """The same chain grown indirectly — no dense materialization."""
        env = self.env()
        structure = self._structure
        fault_tolerance = self._fleet.fault_tolerance

        def transitions(state: FleetState):
            out = []
            for target, parts in fleet_edges(state, structure, fault_tolerance):
                coeff, name = parts[0]
                value = coeff * env[name]
                for coeff, name in parts[1:]:
                    value = value + coeff * env[name]
                out.append((target, value))
            return out

        return build_indirect(
            initial_state(structure), transitions, max_states=max_states
        )

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #

    def solve_request(
        self, options: Optional[SolveOptions] = None
    ) -> SolveRequest:
        """The :class:`SolveRequest` for this fleet's MTTDL: a dense
        chain payload when the state count fits the dense backend (or it
        was asked for explicitly), the sparse payload otherwise."""
        options = options if options is not None else SolveOptions()
        wants_sparse = options.backend == "sparse_iterative" or (
            options.backend == "auto"
            and self._num_states > options.dense_state_limit
        )
        if wants_sparse:
            return SolveRequest(
                sparse=self.sparse_chain(), query="mttdl", options=options
            )
        return SolveRequest(
            chains=(self.chain(),), query="mttdl", options=options
        )

    def mttdl_hours(self, options: Optional[SolveOptions] = None) -> float:
        """MTTDL in hours through the solver-strategy API."""
        return float(solve(self.solve_request(options)).values[0])

    # ------------------------------------------------------------------ #
    # differential-oracle references
    # ------------------------------------------------------------------ #

    def uniform_reference_chain(self) -> CTMC:
        """The paper's uniform chain this fleet must collapse onto when
        homogeneous: ``internal_raid_spec(t, parallel_repair=True)``
        bound with cohort 0's rates at the fleet's full node count.

        Built from the same :class:`CohortRates` pipeline as the fleet
        environment, so for a homogeneous single-stage fleet the
        generator is *bitwise* the collapsed fleet chain's.
        """
        first = self._fleet.cohorts[0]
        if first.stages != 1:
            raise FleetError(
                "the uniform reference requires exponential lifetimes "
                "(1 stage); phase-type cohorts have no paper counterpart"
            )
        rates = self._fleet.cohort_rates(first)
        lifetime = first.lifetime
        if lifetime is None:
            node_hazard = rates.node_failure_rate
        else:
            node_hazard = lifetime.rates[0] * (1.0 - lifetime.continues[0])
        env = internal_raid_env(
            self._fleet.fault_tolerance,
            self._fleet.total_nodes,
            node_hazard,
            rates.array_failure_rate,
            rates.restripe_sector_loss_rate,
            rates.repair_rate,
            self._fleet.critical_sector_fraction,
        )
        spec = internal_raid_spec(
            self._fleet.fault_tolerance, parallel_repair=True
        )
        return compiled(spec).bind(env)

"""``repro-scenarios`` — generate, solve and audit fleet corpora.

Examples::

    # 1000 deterministic scenarios, solved through both backends, with
    # the differential oracles enforced (non-zero exit on violation):
    repro-scenarios --count 1000 --seed 0 --out corpus.jsonl

    # generate only (no solves), e.g. to diff two generator versions:
    repro-scenarios --count 200 --no-solve --out corpus.jsonl

    # the CI smoke job: a reduced corpus with a validated trace artifact
    repro-scenarios --count 50 --out corpus.jsonl --trace trace.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional

from ..cli_common import (
    add_observability_arguments,
    apply_param_overrides,
    observed_session,
)
from ..models.parameters import Parameters
from .scenarios import (
    FAMILIES,
    CorpusHeader,
    ScenarioGenerator,
    run_corpus,
    write_corpus,
)

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description=(
            "Generate seeded heterogeneous-fleet scenarios, pump them "
            "through the sweep engine and both solver backends, and hold "
            "every one to the differential oracles."
        ),
    )
    parser.add_argument(
        "--count", type=int, default=100, help="scenarios to generate"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master generator seed"
    )
    parser.add_argument(
        "--families",
        default=",".join(FAMILIES),
        help=f"comma-separated families (default: all of {','.join(FAMILIES)})",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the JSONL corpus here ('-' or omitted: stdout)",
    )
    parser.add_argument(
        "--no-solve",
        action="store_true",
        help="emit scenarios only; skip solves and oracles",
    )
    parser.add_argument(
        "--dense-limit",
        type=int,
        default=2048,
        help="max states for the dense cross-check solve",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep-engine worker processes for the uniform baseline",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a base parameter (repeatable)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print a one-line human summary to stderr",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)

    if args.count < 1:
        parser.error("--count must be >= 1")
    families = tuple(f.strip() for f in args.families.split(",") if f.strip())
    base = apply_param_overrides(Parameters.baseline(), args.set, parser.error)

    session = observed_session(args, root="repro-scenarios")
    with session if session is not None else contextlib.nullcontext():
        generator = ScenarioGenerator(
            base=base, seed=args.seed, families=families
        )
        scenarios = list(generator.generate(args.count))
        if args.no_solve:
            header = CorpusHeader(
                seed=args.seed,
                count=len(scenarios),
                families=tuple(sorted({s.family for s in scenarios})),
                base_params_key=base.cache_key(),
                solved=False,
            )
            results = None
            violations = ()
        else:
            from ..engine import SweepEngine

            engine = SweepEngine(base, jobs=args.jobs, cache=False)
            run = run_corpus(
                scenarios,
                engine=engine,
                dense_check_limit=args.dense_limit,
            )
            header, results, violations = run.header, run.results, run.violations

        if args.out in (None, "-"):
            write_corpus(sys.stdout, header, scenarios, results)
        else:
            with open(args.out, "w", encoding="utf-8") as fh:
                write_corpus(fh, header, scenarios, results)

        if not args.quiet:
            solved = 0 if results is None else len(results)
            dense_checked = (
                0
                if results is None
                else sum(1 for r in results if r.dense_mttdl_hours is not None)
            )
            print(
                f"repro-scenarios: {len(scenarios)} scenarios "
                f"({', '.join(sorted({s.family for s in scenarios}))}); "
                f"{solved} solved, {dense_checked} dense-cross-checked, "
                f"{len(violations)} oracle violations",
                file=sys.stderr,
            )
        for violation in violations:
            print(
                "VIOLATION "
                + json.dumps(violation, sort_keys=True),
                file=sys.stderr,
            )
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Seeded fleet-scenario generation and the differential-testing corpus.

This is the scenario-diversity flywheel of ROADMAP item 3: a
deterministic generator emits thousands of heterogeneous fleet
scenarios across five families, pumps them through the solver stack
(sparse always, dense whenever the chain is small enough) and the
sweep engine (the uniform-baseline column), and holds every one to the
differential oracles — homogeneous-collapse, exponential-collapse and
sparse-vs-dense agreement.  Results land as a JSONL corpus artifact
with full provenance.

Determinism contract: the generator draws only from
``random.Random(f"{seed}:{index}")`` (seeded hashing is
version-stable), so the same ``(seed, count, families)`` triple yields
a bitwise-identical corpus file on every platform — the property the
hypothesis suite pins.

Scenario families
-----------------

* ``two-vintage`` — two exponential cohorts, the newer vintage with a
  degraded node MTTF (batch effects);
* ``infant-mortality`` — a Weibull shape < 1 cohort fitted to a
  2-stage Coxian (decreasing hazard), optionally next to a mature
  exponential cohort;
* ``wear-out`` — Weibull shape > 1 fitted to a mixed Erlang
  (increasing hazard);
* ``non-uniform-peers`` — 3-4 cohorts with spread MTBFs, the
  tahoe-lafs lossmodel's non-uniform peer reliabilities;
* ``repair-skew`` — repair-interval delays and per-cohort repair
  costs (non-aggressive repair).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from .. import obs
from ..core.solvers import SolveOptions
from ..models.configurations import Configuration
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from ..models.space import ConfigSpace
from .chain import FleetModel
from .cohorts import Cohort, FleetSpec
from .phasetype import fit_weibull

__all__ = [
    "CORPUS_KIND",
    "CORPUS_VERSION",
    "FAMILIES",
    "CorpusHeader",
    "CorpusRun",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioResult",
    "canonical_fleets",
    "read_corpus",
    "run_corpus",
    "write_corpus",
]

FAMILIES: Tuple[str, ...] = (
    "two-vintage",
    "infant-mortality",
    "wear-out",
    "non-uniform-peers",
    "repair-skew",
)

_INTERNAL_RAID_LEVELS = (InternalRaid.RAID5, InternalRaid.RAID6)

#: Per-family configuration grids the scenario builders draw from.  The
#: tuples' content *and order* pin the rng draw sequence, so the corpus
#: stays bitwise-identical across releases — change these only with a
#: corpus version bump.  (The cohort walker models internal-RAID bricks
#: only, hence no ``InternalRaid.NONE``; two-vintage fleets stay small
#: enough to afford t=3.)
CONFIG_SPACES: Dict[str, ConfigSpace] = {
    "two-vintage": ConfigSpace(_INTERNAL_RAID_LEVELS, (1, 2, 3)),
    "infant-mortality": ConfigSpace(_INTERNAL_RAID_LEVELS, (1, 2)),
    "wear-out": ConfigSpace(_INTERNAL_RAID_LEVELS, (1, 2)),
    "non-uniform-peers": ConfigSpace(_INTERNAL_RAID_LEVELS, (1, 2)),
    "repair-skew": ConfigSpace(_INTERNAL_RAID_LEVELS, (1, 2)),
}


def canonical_fleets(base: Parameters) -> Dict[str, FleetSpec]:
    """Three hand-pinned heterogeneous fleets for golden regression.

    Deliberately *not* drawn from :class:`ScenarioGenerator`, so the
    golden numbers survive generator evolution; each exemplifies one
    family the corpus sweeps (two-vintage batches, infant-mortality
    phase-type lifetimes, tahoe-style non-uniform peers)."""
    return {
        "two-vintage": FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=2,
            cohorts=(
                Cohort.make("vintage-a", 6),
                Cohort.make(
                    "vintage-b", 6, node_mttf_hours=base.node_mttf_hours * 0.5
                ),
            ),
        ),
        "infant-mortality": FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=1,
            cohorts=(
                Cohort.make(
                    "burn-in",
                    6,
                    lifetime=fit_weibull(
                        0.6, mean=base.node_mttf_hours * 0.8
                    ).dist,
                ),
                Cohort.make("mature", 6),
            ),
        ),
        "non-uniform-peers": FleetSpec(
            base=base,
            internal=InternalRaid.RAID6,
            fault_tolerance=2,
            cohorts=(
                Cohort.make(
                    "peers-0", 4, node_mttf_hours=base.node_mttf_hours * 0.5
                ),
                Cohort.make("peers-1", 4),
                Cohort.make(
                    "peers-2",
                    4,
                    node_mttf_hours=base.node_mttf_hours * 1.5,
                    repair_delay_hours=24.0,
                ),
            ),
        ),
    }

CORPUS_KIND = "repro-fleet-corpus"
CORPUS_VERSION = 1

#: Relative tolerance the corpus oracles hold solves to — the same
#: bound as the verify battery's sparse/dense invariant.
ORACLE_REL_TOL = 1e-9


@dataclass(frozen=True)
class Scenario:
    """One generated fleet scenario."""

    scenario_id: str
    family: str
    seed: int
    index: int
    fleet: FleetSpec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario_id": self.scenario_id,
            "family": self.family,
            "seed": self.seed,
            "index": self.index,
            "fleet": self.fleet.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        return cls(
            scenario_id=payload["scenario_id"],
            family=payload["family"],
            seed=int(payload["seed"]),
            index=int(payload["index"]),
            fleet=FleetSpec.from_dict(payload["fleet"]),
        )


class ScenarioGenerator:
    """Deterministic fleet-scenario source.

    Args:
        base: baseline parameters every scenario perturbs (the Section 6
            baseline when omitted).
        seed: master seed; scenario ``index`` draws from
            ``random.Random(f"{seed}:{index}")`` independently, so any
            subset of the corpus can be regenerated without replaying
            the rest.
        families: round-robin family cycle (defaults to all five).

    Generated fleets are sized for differential testing: every scenario
    stays within a few thousand CTMC states so the dense backend can
    cross-check the sparse one.
    """

    def __init__(
        self,
        base: Optional[Parameters] = None,
        seed: int = 0,
        families: Sequence[str] = FAMILIES,
    ) -> None:
        for family in families:
            if family not in FAMILIES:
                raise ValueError(
                    f"unknown scenario family {family!r}; "
                    f"known: {', '.join(FAMILIES)}"
                )
        if not families:
            raise ValueError("need at least one scenario family")
        self.base = base if base is not None else Parameters.baseline()
        self.seed = int(seed)
        self.families = tuple(families)

    # ------------------------------------------------------------------ #

    def generate(self, count: int) -> Iterator[Scenario]:
        """Yield ``count`` scenarios, round-robin over the families."""
        for index in range(count):
            family = self.families[index % len(self.families)]
            yield self.scenario(family, index)

    def scenario(self, family: str, index: int) -> Scenario:
        rng = random.Random(f"{self.seed}:{index}")
        builder = getattr(self, "_" + family.replace("-", "_"))
        fleet = builder(rng, CONFIG_SPACES[family])
        return Scenario(
            scenario_id=f"{family}-{index:05d}",
            family=family,
            seed=self.seed,
            index=index,
            fleet=fleet,
        )

    # ------------------------------------------------------------------ #
    # family builders (all draws go through rng — nothing else)
    # ------------------------------------------------------------------ #

    def _fleet(self, rng, cohorts, fault_tolerance, space) -> FleetSpec:
        return FleetSpec(
            base=self.base,
            internal=rng.choice(space.internal_levels),
            fault_tolerance=fault_tolerance,
            cohorts=tuple(cohorts),
        )

    def _mttf(self, rng: random.Random, lo: float, hi: float) -> float:
        return self.base.node_mttf_hours * rng.uniform(lo, hi)

    def _two_vintage(self, rng: random.Random, space: ConfigSpace) -> FleetSpec:
        t = rng.choice(space.fault_tolerances)
        old = rng.randrange(4, 13)
        new = rng.randrange(4, 13)
        while old + new < self.base.redundancy_set_size:
            new += 1
        cohorts = [
            Cohort.make("vintage-a", old),
            Cohort.make(
                "vintage-b", new, node_mttf_hours=self._mttf(rng, 0.3, 0.9)
            ),
        ]
        return self._fleet(rng, cohorts, t, space)

    def _infant_mortality(
        self, rng: random.Random, space: ConfigSpace
    ) -> FleetSpec:
        t = rng.choice(space.fault_tolerances)
        shape = rng.uniform(0.45, 0.9)
        mean = self._mttf(rng, 0.5, 1.2)
        fit = fit_weibull(shape, mean=mean)
        young = rng.randrange(4, 11)
        cohorts = [Cohort.make("burn-in", young, lifetime=fit.dist)]
        if rng.random() < 0.6:
            cohorts.append(Cohort.make("mature", rng.randrange(4, 11)))
        while sum(c.nodes for c in cohorts) < self.base.redundancy_set_size:
            cohorts[0] = Cohort.make(
                "burn-in", cohorts[0].nodes + 1, lifetime=fit.dist
            )
        return self._fleet(rng, cohorts, t, space)

    def _wear_out(self, rng: random.Random, space: ConfigSpace) -> FleetSpec:
        t = rng.choice(space.fault_tolerances)
        shape = rng.uniform(1.45, 1.75)  # cv^2 in (1/3, 1): exact 3-stage fit
        mean = self._mttf(rng, 0.6, 1.1)
        fit = fit_weibull(shape, mean=mean)
        aged = rng.randrange(4, 9)
        fresh = rng.randrange(4, 9)
        while aged + fresh < self.base.redundancy_set_size:
            fresh += 1
        cohorts = [
            Cohort.make("aged", aged, lifetime=fit.dist),
            Cohort.make("fresh", fresh),
        ]
        return self._fleet(rng, cohorts, t, space)

    def _non_uniform_peers(
        self, rng: random.Random, space: ConfigSpace
    ) -> FleetSpec:
        t = rng.choice(space.fault_tolerances)
        groups = rng.choice((3, 4))
        cohorts = []
        for g in range(groups):
            cohorts.append(
                Cohort.make(
                    f"peers-{g}",
                    rng.randrange(3, 8),
                    node_mttf_hours=self._mttf(rng, 0.4, 1.6),
                )
            )
        while sum(c.nodes for c in cohorts) < self.base.redundancy_set_size:
            first = cohorts[0]
            cohorts[0] = Cohort(
                name=first.name,
                nodes=first.nodes + 1,
                overrides=first.overrides,
            )
        return self._fleet(rng, cohorts, t, space)

    def _repair_skew(self, rng: random.Random, space: ConfigSpace) -> FleetSpec:
        t = rng.choice(space.fault_tolerances)
        groups = rng.choice((2, 3))
        cohorts = []
        for g in range(groups):
            cohorts.append(
                Cohort.make(
                    f"repair-{g}",
                    rng.randrange(4, 9),
                    repair_delay_hours=rng.choice((0.0, 24.0, 72.0, 168.0)),
                    repair_cost=rng.uniform(0.5, 3.0),
                    node_mttf_hours=self._mttf(rng, 0.6, 1.3),
                )
            )
        while sum(c.nodes for c in cohorts) < self.base.redundancy_set_size:
            first = cohorts[0]
            cohorts[0] = Cohort(
                name=first.name,
                nodes=first.nodes + 1,
                overrides=first.overrides,
                repair_delay_hours=first.repair_delay_hours,
                repair_cost=first.repair_cost,
            )
        return self._fleet(rng, cohorts, t, space)


# --------------------------------------------------------------------- #
# corpus artifact (JSONL)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CorpusHeader:
    """First line of a corpus file: identity and provenance."""

    seed: int
    count: int
    families: Tuple[str, ...]
    base_params_key: str
    solved: bool = False
    provenance: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": CORPUS_KIND,
            "version": CORPUS_VERSION,
            "seed": self.seed,
            "count": self.count,
            "families": list(self.families),
            "base_params_key": self.base_params_key,
            "solved": self.solved,
            "provenance": self.provenance,
        }


@dataclass(frozen=True)
class ScenarioResult:
    """Solver and oracle outcomes for one scenario."""

    scenario_id: str
    num_states: int
    nnz: int
    mttdl_hours: float
    backend: str
    dense_mttdl_hours: Optional[float]
    sparse_dense_rel_gap: Optional[float]
    uniform_mttdl_hours: float
    heterogeneity_ratio: float
    repairs_per_year: float
    repair_cost_per_year: float
    oracles: Dict[str, bool]

    @property
    def ok(self) -> bool:
        return all(self.oracles.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario_id": self.scenario_id,
            "num_states": self.num_states,
            "nnz": self.nnz,
            "mttdl_hours": self.mttdl_hours,
            "backend": self.backend,
            "dense_mttdl_hours": self.dense_mttdl_hours,
            "sparse_dense_rel_gap": self.sparse_dense_rel_gap,
            "uniform_mttdl_hours": self.uniform_mttdl_hours,
            "heterogeneity_ratio": self.heterogeneity_ratio,
            "repairs_per_year": self.repairs_per_year,
            "repair_cost_per_year": self.repair_cost_per_year,
            "oracles": dict(self.oracles),
        }


@dataclass(frozen=True)
class CorpusRun:
    """A solved corpus: per-scenario results plus oracle violations."""

    header: CorpusHeader
    scenarios: Tuple[Scenario, ...]
    results: Tuple[ScenarioResult, ...]
    violations: Tuple[Dict[str, Any], ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def write_corpus(
    out: TextIO,
    header: CorpusHeader,
    scenarios: Iterable[Scenario],
    results: Optional[Sequence[ScenarioResult]] = None,
) -> int:
    """Write the JSONL corpus: header line, then one scenario per line
    (with its result inlined when solved).  Returns lines written."""
    out.write(json.dumps(header.to_dict(), sort_keys=True) + "\n")
    lines = 1
    results = list(results) if results is not None else None
    for i, scenario in enumerate(scenarios):
        payload = scenario.to_dict()
        if results is not None:
            payload["result"] = results[i].to_dict()
        out.write(json.dumps(payload, sort_keys=True) + "\n")
        lines += 1
    return lines


def read_corpus(
    lines: Iterable[str],
) -> Tuple[Dict[str, Any], List[Tuple[Scenario, Optional[Dict[str, Any]]]]]:
    """Parse a corpus file back into its header and scenarios."""
    it = iter(lines)
    try:
        header = json.loads(next(it))
    except StopIteration:
        raise ValueError("empty corpus file") from None
    if header.get("kind") != CORPUS_KIND:
        raise ValueError(f"not a {CORPUS_KIND} file: kind={header.get('kind')!r}")
    if header.get("version") != CORPUS_VERSION:
        raise ValueError(f"unsupported corpus version {header.get('version')!r}")
    entries = []
    for line in it:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        entries.append((Scenario.from_dict(payload), payload.get("result")))
    return header, entries


# --------------------------------------------------------------------- #
# the corpus runner: solve + differential oracles
# --------------------------------------------------------------------- #


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b))


def _uniform_baseline(
    scenarios: Sequence[Scenario],
    engine,
    options: SolveOptions,
) -> List[float]:
    """The homogenized-to-base uniform MTTDL for each scenario, in one
    batched sweep-engine pass (grouped by spec hash internally)."""
    pairs = []
    for scenario in scenarios:
        fleet = scenario.fleet
        config = Configuration(
            internal=fleet.internal,
            node_fault_tolerance=fleet.fault_tolerance,
        )
        params = fleet.base.replace(node_set_size=fleet.total_nodes)
        pairs.append((config, params))
    results = engine.evaluate_many(pairs, options=options)
    return [r.mttdl_hours for r in results]


def _scenario_oracles(
    scenario: Scenario,
    model: FleetModel,
    mttdl: float,
    options: SolveOptions,
) -> Dict[str, bool]:
    """The per-scenario differential oracles.

    * ``homogeneous-collapse``: the all-cohorts-equal (exponentialized)
      variant agrees with the paper's uniform parallel-repair chain to
      1e-9, and its single-cohort merge is *bitwise* the uniform chain;
    * ``exponential-collapse``: replacing implicit exponential
      lifetimes with explicit 1-stage phase-types leaves spec hash,
      binding environment and MTTDL bitwise unchanged;
    * ``sparse-dense-agreement``: both backends agree to 1e-9 (checked
      by the caller, recorded here).
    """
    fleet = scenario.fleet
    oracles: Dict[str, bool] = {}

    # homogeneous collapse: strip to cohort 0's settings, exponential.
    template = fleet.cohorts[0]
    exponentialized = [
        Cohort(
            name=c.name,
            nodes=c.nodes,
            overrides=template.overrides,
            lifetime=None,
            repair_delay_hours=template.repair_delay_hours,
            repair_cost=template.repair_cost,
        )
        for c in fleet.cohorts
    ]
    homogeneous = fleet.with_cohorts(exponentialized)
    homo_model = FleetModel(homogeneous)
    uniform = homo_model.uniform_reference_chain()
    uniform_mttdl = uniform.mean_time_to_absorption()
    homo_mttdl = homo_model.mttdl_hours(options)
    collapse_ok = _rel(homo_mttdl, uniform_mttdl) <= ORACLE_REL_TOL
    merged_model = FleetModel(homogeneous.merged())
    collapse_bitwise = (
        merged_model.chain().mean_time_to_absorption() == uniform_mttdl
    )
    oracles["homogeneous-collapse"] = collapse_ok and collapse_bitwise

    # exponential collapse: explicit 1-stage phase-type == implicit.
    from .phasetype import PhaseType

    explicit = [
        (
            c
            if c.lifetime is not None
            else Cohort(
                name=c.name,
                nodes=c.nodes,
                overrides=c.overrides,
                lifetime=PhaseType.exponential(
                    fleet.cohort_params(c).node_failure_rate
                ),
                repair_delay_hours=c.repair_delay_hours,
                repair_cost=c.repair_cost,
            )
        )
        for c in fleet.cohorts
    ]
    explicit_fleet = fleet.with_cohorts(explicit)
    explicit_model = FleetModel(explicit_fleet)
    env_equal = explicit_model.env() == model.env()
    spec_equal = (
        explicit_model.spec().spec_hash == model.spec().spec_hash
    )
    mttdl_equal = explicit_model.mttdl_hours(options) == mttdl
    oracles["exponential-collapse"] = env_equal and spec_equal and mttdl_equal
    return oracles


def run_corpus(
    scenarios: Sequence[Scenario],
    *,
    engine=None,
    options: Optional[SolveOptions] = None,
    dense_check_limit: int = 2048,
    check_oracles: bool = True,
) -> CorpusRun:
    """Solve every scenario through the solver stack and the sweep
    engine, holding each to the differential oracles.

    Every scenario solves through the sparse backend; scenarios with at
    most ``dense_check_limit`` states also solve densely and the two
    answers must agree to 1e-9 (the acceptance bound).  The uniform
    baseline column batches through ``engine.evaluate_many`` so
    structurally-identical configurations share compiled specs.
    """
    from ..engine import SweepEngine

    engine = engine if engine is not None else SweepEngine(jobs=1, cache=False)
    options = options if options is not None else SolveOptions()
    scenarios = list(scenarios)
    started = time.perf_counter()
    results: List[ScenarioResult] = []
    violations: List[Dict[str, Any]] = []
    with obs.span("fleet.corpus", scenarios=len(scenarios)):
        uniform_col = _uniform_baseline(scenarios, engine, options)
        for scenario, uniform_mttdl in zip(scenarios, uniform_col):
            with obs.span(
                "fleet.scenario",
                scenario=scenario.scenario_id,
                family=scenario.family,
            ):
                model = FleetModel(scenario.fleet)
                sparse = model.sparse_chain()
                sparse_opts = SolveOptions(
                    backend="sparse_iterative",
                    rates_method=options.rates_method,
                    tolerance=options.tolerance,
                )
                sparse_mttdl = model.mttdl_hours(sparse_opts)
                dense_mttdl = None
                gap = None
                oracles: Dict[str, bool] = {}
                if model.num_states <= dense_check_limit:
                    dense_opts = SolveOptions(
                        backend="dense_gth", rates_method=options.rates_method
                    )
                    dense_mttdl = model.mttdl_hours(dense_opts)
                    gap = _rel(sparse_mttdl, dense_mttdl)
                    oracles["sparse-dense-agreement"] = gap <= ORACLE_REL_TOL
                    mttdl, backend = dense_mttdl, "dense_gth"
                else:
                    mttdl, backend = sparse_mttdl, "sparse_iterative"
                if check_oracles:
                    oracles.update(
                        _scenario_oracles(scenario, model, mttdl, options)
                    )
                result = ScenarioResult(
                    scenario_id=scenario.scenario_id,
                    num_states=model.num_states,
                    nnz=sparse.nnz,
                    mttdl_hours=mttdl,
                    backend=backend,
                    dense_mttdl_hours=dense_mttdl,
                    sparse_dense_rel_gap=gap,
                    uniform_mttdl_hours=uniform_mttdl,
                    heterogeneity_ratio=mttdl / uniform_mttdl,
                    repairs_per_year=scenario.fleet.expected_repairs_per_year(),
                    repair_cost_per_year=scenario.fleet.repair_cost_per_year(),
                    oracles=oracles,
                )
                results.append(result)
                registry = obs.global_metrics()
                for name, ok in oracles.items():
                    registry.counter("fleet.oracle.checks").inc()
                    if not ok:
                        violations.append(
                            {
                                "scenario_id": scenario.scenario_id,
                                "family": scenario.family,
                                "oracle": name,
                                "mttdl_hours": mttdl,
                                "sparse_dense_rel_gap": gap,
                            }
                        )
                        registry.counter("fleet.oracle.violations").inc()
    elapsed = time.perf_counter() - started
    first = scenarios[0] if scenarios else None
    header = CorpusHeader(
        seed=first.seed if first else 0,
        count=len(scenarios),
        families=tuple(sorted({s.family for s in scenarios})),
        base_params_key=(
            first.fleet.base.cache_key() if first else Parameters.baseline().cache_key()
        ),
        solved=True,
        provenance={
            "elapsed_seconds": elapsed,
            "dense_check_limit": dense_check_limit,
            "options": options.cache_key(),
            "oracle_rel_tol": ORACLE_REL_TOL,
            "violations": len(violations),
        },
    )
    return CorpusRun(
        header=header,
        scenarios=tuple(scenarios),
        results=tuple(results),
        violations=tuple(violations),
    )

"""Heterogeneous fleet description: cohorts of bricks over one base.

The paper models ``N`` identical bricks.  A :class:`FleetSpec` relaxes
that: the fleet is partitioned into *cohorts* (vintages, batches,
hardware generations), each carrying

* per-cohort :class:`~repro.models.parameters.Parameters` overrides
  (non-uniform peer MTBFs, slower links, denser drives, ...),
* an optional non-exponential lifetime as a
  :class:`~repro.fleet.phasetype.PhaseType`,
* a repair-interval delay and a relative repair cost, in the spirit of
  the tahoe-lafs lossmodel's non-aggressive repair: a failed brick
  waits ``repair_delay_hours`` on average before its rebuild starts,
  which folds into an effective exponential repair rate
  ``1 / (delay + 1/mu_N)`` matched on the mean.

Everything stays on top of the paper's machinery: per-cohort rates are
derived through the same :class:`~repro.models.internal_raid.InternalRaidNodeModel`
/ :class:`~repro.models.rebuild.RebuildModel` pipeline as the uniform
chains, which is what makes the homogeneous-collapse differential
oracle *bitwise* rather than merely approximate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..models.critical_sets import critical_fraction
from ..models.internal_raid import InternalRaidNodeModel
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from .phasetype import PhaseType

__all__ = [
    "Cohort",
    "CohortRates",
    "FleetError",
    "FleetSpec",
]


class FleetError(ValueError):
    """Raised for invalid fleet descriptions."""


#: Parameters fields that are fleet-global by construction: the state
#: space and the critical-set fraction k_t are defined over the whole
#: node set, so no cohort may disagree about them.
_FLEET_GLOBAL_FIELDS = ("node_set_size", "redundancy_set_size")

#: Overrides rescaled by :meth:`Cohort.scaled` — mirror exactly the
#: fields :func:`repro.verify.oracles.rescaled_parameters` touches.
_SCALE_DIVIDE = ("node_mttf_hours", "drive_mttf_hours")
_SCALE_MULTIPLY = ("drive_max_iops", "drive_sustained_bps", "link_speed_bps")

_PARAMETER_FIELDS = frozenset(f.name for f in dataclasses.fields(Parameters))


@dataclass(frozen=True)
class Cohort:
    """One homogeneous slice of the fleet.

    Attributes:
        name: unique label within the fleet.
        nodes: brick count, >= 1.
        overrides: ``Parameters`` field overrides for this cohort, as a
            sorted tuple of ``(field, value)`` pairs (hashable; use
            :meth:`make` to pass keyword overrides).
        lifetime: optional phase-type node-hardware lifetime replacing
            the exponential ``lambda_N`` hazard (internal-array failures
            stay exponential and compete from every stage).
        repair_delay_hours: mean wait before a failed brick's rebuild
            begins (repair-interval model); folded into the effective
            repair rate on the mean.
        repair_cost: relative cost per repair event, used by the
            fleet-level repair-cost bookkeeping only (never by the
            reliability chain).
    """

    name: str
    nodes: int
    overrides: Tuple[Tuple[str, float], ...] = ()
    lifetime: Optional[PhaseType] = None
    repair_delay_hours: float = 0.0
    repair_cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("cohort name must be non-empty")
        if self.nodes < 1:
            raise FleetError(f"cohort {self.name!r} needs >= 1 node")
        overrides = tuple(sorted((str(k), v) for k, v in self.overrides))
        object.__setattr__(self, "overrides", overrides)
        seen = set()
        for key, _ in overrides:
            if key in _FLEET_GLOBAL_FIELDS:
                raise FleetError(
                    f"cohort {self.name!r} may not override fleet-global "
                    f"field {key!r}"
                )
            if key not in _PARAMETER_FIELDS:
                raise FleetError(
                    f"cohort {self.name!r} overrides unknown Parameters "
                    f"field {key!r}"
                )
            if key in seen:
                raise FleetError(
                    f"cohort {self.name!r} overrides {key!r} twice"
                )
            seen.add(key)
        if self.repair_delay_hours < 0.0:
            raise FleetError("repair_delay_hours must be >= 0")
        if self.repair_cost < 0.0:
            raise FleetError("repair_cost must be >= 0")

    @classmethod
    def make(
        cls,
        name: str,
        nodes: int,
        *,
        lifetime: Optional[PhaseType] = None,
        repair_delay_hours: float = 0.0,
        repair_cost: float = 1.0,
        **overrides: float,
    ) -> "Cohort":
        """Keyword-friendly constructor: ``Cohort.make("vintage-b", 8,
        node_mttf_hours=200_000.0)``."""
        return cls(
            name=name,
            nodes=nodes,
            overrides=tuple(overrides.items()),
            lifetime=lifetime,
            repair_delay_hours=repair_delay_hours,
            repair_cost=repair_cost,
        )

    @property
    def overrides_dict(self) -> Dict[str, float]:
        return dict(self.overrides)

    @property
    def stages(self) -> int:
        """CTMC stages this cohort's healthy bricks occupy."""
        return self.lifetime.num_stages if self.lifetime is not None else 1

    def scaled(self, scale: float) -> "Cohort":
        """Time-rescaled copy (rates x ``scale``): MTTF-like overrides
        divide, bandwidth-like overrides multiply, the lifetime's stage
        rates multiply and the repair delay divides."""
        if scale <= 0.0:
            raise FleetError("scale must be positive")
        overrides = {}
        for key, value in self.overrides:
            if key in _SCALE_DIVIDE:
                overrides[key] = value / scale
            elif key in _SCALE_MULTIPLY:
                overrides[key] = value * scale
            else:
                overrides[key] = value
        return Cohort(
            name=self.name,
            nodes=self.nodes,
            overrides=tuple(overrides.items()),
            lifetime=(
                self.lifetime.scaled(scale)
                if self.lifetime is not None
                else None
            ),
            repair_delay_hours=self.repair_delay_hours / scale,
            repair_cost=self.repair_cost,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "nodes": self.nodes,
            "overrides": dict(self.overrides),
            "lifetime": (
                self.lifetime.to_dict() if self.lifetime is not None else None
            ),
            "repair_delay_hours": self.repair_delay_hours,
            "repair_cost": self.repair_cost,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Cohort":
        lifetime = payload.get("lifetime")
        return cls(
            name=payload["name"],
            nodes=int(payload["nodes"]),
            overrides=tuple(payload.get("overrides", {}).items()),
            lifetime=(
                PhaseType.from_dict(lifetime) if lifetime is not None else None
            ),
            repair_delay_hours=float(payload.get("repair_delay_hours", 0.0)),
            repair_cost=float(payload.get("repair_cost", 1.0)),
        )


@dataclass(frozen=True)
class CohortRates:
    """Numeric rates one cohort contributes to the fleet chain.

    All four come out of the same model pipeline the uniform chains
    use; ``repair_rate`` already folds in the cohort's repair delay.
    """

    node_failure_rate: float
    array_failure_rate: float
    restripe_sector_loss_rate: float
    repair_rate: float


@dataclass(frozen=True)
class FleetSpec:
    """A heterogeneous fleet: shared base parameters plus cohorts.

    The effective per-cohort parameter set is
    ``base.replace(node_set_size=total_nodes, **cohort.overrides)`` —
    the node-set size always reflects the *whole* fleet, because rebuild
    fan-out and the critical-set fraction are properties of the full
    redundancy group, not of a vintage.

    Attributes:
        base: shared baseline parameters.
        internal: internal RAID level of every brick (RAID5 or RAID6;
            the paper's no-RAID bricks track drives individually, which
            the cohort state encoding does not model — see docs/fleet.md).
        fault_tolerance: cross-node erasure-code tolerance ``t >= 1``.
        cohorts: the partition of the fleet, in declaration order.
        rates_method: how internal-array rates are derived ("approx" /
            "exact"), as in :class:`SolveOptions`.
    """

    base: Parameters
    internal: InternalRaid
    fault_tolerance: int
    cohorts: Tuple[Cohort, ...]
    rates_method: str = "approx"

    def __post_init__(self) -> None:
        object.__setattr__(self, "cohorts", tuple(self.cohorts))
        if self.internal is InternalRaid.NONE:
            raise FleetError(
                "FleetSpec models bricks with internal RAID (RAID5/RAID6); "
                "the no-RAID drive-level heterogeneity is future work"
            )
        if self.fault_tolerance < 1:
            raise FleetError("fault_tolerance must be >= 1")
        if not self.cohorts:
            raise FleetError("a fleet needs at least one cohort")
        names = [c.name for c in self.cohorts]
        if len(set(names)) != len(names):
            raise FleetError(f"cohort names must be unique, got {names}")
        if self.rates_method not in ("approx", "exact"):
            raise FleetError("rates_method must be 'approx' or 'exact'")
        total = self.total_nodes
        if total <= self.fault_tolerance:
            raise FleetError(
                f"fleet of {total} nodes cannot tolerate "
                f"{self.fault_tolerance} failures"
            )
        if total < self.base.redundancy_set_size:
            raise FleetError(
                f"fleet of {total} nodes is smaller than the redundancy "
                f"set size {self.base.redundancy_set_size}"
            )

    # ------------------------------------------------------------------ #
    # derived structure and rates
    # ------------------------------------------------------------------ #

    @property
    def total_nodes(self) -> int:
        return sum(c.nodes for c in self.cohorts)

    @property
    def critical_sector_fraction(self) -> float:
        """``k_t`` over the whole fleet (1 for t = 1, the Section 5.2.1
        fraction otherwise) — fleet-global, like the uniform models."""
        if self.fault_tolerance == 1:
            return 1.0
        return critical_fraction(
            self.total_nodes,
            self.base.redundancy_set_size,
            self.fault_tolerance,
        )

    def cohort_params(self, cohort: Cohort) -> Parameters:
        """The effective :class:`Parameters` for ``cohort``."""
        return self.base.replace(
            node_set_size=self.total_nodes, **cohort.overrides_dict
        )

    def cohort_rates(self, cohort: Cohort) -> CohortRates:
        """``cohort``'s chain rates, via the uniform models' pipeline."""
        params = self.cohort_params(cohort)
        model = InternalRaidNodeModel(
            params,
            self.internal,
            self.fault_tolerance,
            rates_method=self.rates_method,
        )
        rates = model.array_rates
        mu = model.node_rebuild_rate
        if cohort.repair_delay_hours > 0.0:
            # Repair-interval model: mean time in "failed" is the wait
            # plus the rebuild; matched on the mean as one exponential.
            mu = 1.0 / (cohort.repair_delay_hours + 1.0 / mu)
        return CohortRates(
            node_failure_rate=params.node_failure_rate,
            array_failure_rate=rates.array_failure_rate,
            restripe_sector_loss_rate=rates.restripe_sector_loss_rate,
            repair_rate=mu,
        )

    # ------------------------------------------------------------------ #
    # metamorphic / differential transforms
    # ------------------------------------------------------------------ #

    @property
    def is_homogeneous(self) -> bool:
        """Every cohort has identical settings (counts aside)."""
        first = self.cohorts[0]
        return all(
            c.overrides == first.overrides
            and c.lifetime == first.lifetime
            and c.repair_delay_hours == first.repair_delay_hours
            for c in self.cohorts
        )

    def with_cohorts(self, cohorts: Sequence[Cohort]) -> "FleetSpec":
        return dataclasses.replace(self, cohorts=tuple(cohorts))

    def homogenized(self, index: int = 0) -> "FleetSpec":
        """Every cohort replaced by cohort ``index``'s settings (names
        and node counts kept) — the homogeneous-collapse transform."""
        template = self.cohorts[index]
        return self.with_cohorts(
            dataclasses.replace(
                template, name=c.name, nodes=c.nodes
            )
            for c in self.cohorts
        )

    def merged(self) -> "FleetSpec":
        """The homogeneous fleet as a *single* cohort (node counts
        summed).  Only meaningful when :attr:`is_homogeneous`."""
        if not self.is_homogeneous:
            raise FleetError("merged() requires a homogeneous fleet")
        merged = dataclasses.replace(
            self.cohorts[0], name="fleet", nodes=self.total_nodes
        )
        return self.with_cohorts((merged,))

    def permuted(self, order: Sequence[int]) -> "FleetSpec":
        """Cohorts reordered by ``order`` (a permutation of indices) —
        MTTDL must be invariant under this."""
        if sorted(order) != list(range(len(self.cohorts))):
            raise FleetError(f"{order!r} is not a permutation")
        return self.with_cohorts(self.cohorts[i] for i in order)

    def scaled(self, scale: float) -> "FleetSpec":
        """Time-rescaled fleet (all physical rates x ``scale``): the
        exact metamorphic law is ``MTTDL(scaled) == MTTDL / scale``."""
        if scale <= 0.0:
            raise FleetError("scale must be positive")
        base = self.base.replace(
            node_mttf_hours=self.base.node_mttf_hours / scale,
            drive_mttf_hours=self.base.drive_mttf_hours / scale,
            drive_max_iops=self.base.drive_max_iops * scale,
            drive_sustained_bps=self.base.drive_sustained_bps * scale,
            link_speed_bps=self.base.link_speed_bps * scale,
        )
        return dataclasses.replace(
            self,
            base=base,
            cohorts=tuple(c.scaled(scale) for c in self.cohorts),
        )

    def split_degraded(
        self, index: int, nodes: int, factor: float
    ) -> "FleetSpec":
        """Split ``nodes`` bricks out of cohort ``index`` into a strictly
        *worse* cohort (node lifetimes shortened by ``factor < 1``),
        keeping the total node count — the dominance-law transform:
        the result's MTTDL must never exceed the original's.
        """
        if not 0.0 < factor < 1.0:
            raise FleetError("factor must be in (0, 1)")
        donor = self.cohorts[index]
        if nodes < 1 or nodes >= donor.nodes:
            raise FleetError(
                f"can split 1..{donor.nodes - 1} nodes out of cohort "
                f"{donor.name!r}, got {nodes}"
            )
        overrides = donor.overrides_dict
        effective_mttf = overrides.get(
            "node_mttf_hours", self.base.node_mttf_hours
        )
        overrides["node_mttf_hours"] = effective_mttf * factor
        worse = Cohort(
            name=f"{donor.name}-degraded",
            nodes=nodes,
            overrides=tuple(overrides.items()),
            lifetime=(
                donor.lifetime.scaled(1.0 / factor)
                if donor.lifetime is not None
                else None
            ),
            repair_delay_hours=donor.repair_delay_hours,
            repair_cost=donor.repair_cost,
        )
        shrunk = dataclasses.replace(donor, nodes=donor.nodes - nodes)
        cohorts = list(self.cohorts)
        cohorts[index] = shrunk
        cohorts.append(worse)
        return self.with_cohorts(cohorts)

    # ------------------------------------------------------------------ #
    # repair-cost bookkeeping (tahoe-style)
    # ------------------------------------------------------------------ #

    def expected_repairs_per_year(self) -> float:
        """Long-run repair events per year across the fleet, from each
        cohort's steady failure rate (1/mean for phase-type lifetimes)
        plus its internal-array failure rate."""
        from ..models.metrics import HOURS_PER_YEAR

        total = 0.0
        for cohort in self.cohorts:
            rates = self.cohort_rates(cohort)
            if cohort.lifetime is not None:
                node_rate = 1.0 / cohort.lifetime.mean()
            else:
                node_rate = rates.node_failure_rate
            total += cohort.nodes * (node_rate + rates.array_failure_rate)
        return total * HOURS_PER_YEAR

    def repair_cost_per_year(self) -> float:
        """Expected annual repair cost: per-cohort repair rate weighted
        by the cohort's relative ``repair_cost``."""
        from ..models.metrics import HOURS_PER_YEAR

        total = 0.0
        for cohort in self.cohorts:
            rates = self.cohort_rates(cohort)
            if cohort.lifetime is not None:
                node_rate = 1.0 / cohort.lifetime.mean()
            else:
                node_rate = rates.node_failure_rate
            total += (
                cohort.nodes
                * (node_rate + rates.array_failure_rate)
                * cohort.repair_cost
            )
        return total * HOURS_PER_YEAR

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "internal": self.internal.value,
            "fault_tolerance": self.fault_tolerance,
            "rates_method": self.rates_method,
            "cohorts": [c.to_dict() for c in self.cohorts],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetSpec":
        return cls(
            base=Parameters(**payload["base"]),
            internal=InternalRaid(payload["internal"]),
            fault_tolerance=int(payload["fault_tolerance"]),
            cohorts=tuple(
                Cohort.from_dict(c) for c in payload["cohorts"]
            ),
            rates_method=payload.get("rates_method", "approx"),
        )

    def cache_key(self) -> str:
        """Stable content digest (canonical-JSON SHA-256 of
        :meth:`to_dict`), for corpus provenance and result caching."""
        from ..engine.keys import stable_digest

        return stable_digest(self.to_dict())

"""Phase-type lifetime approximation for non-exponential bricks.

The paper's chains assume exponential node lifetimes; real fleets show
infant mortality (decreasing hazard, Weibull shape < 1) and wear-out
(increasing hazard, shape > 1).  Both are captured here by *acyclic
phase-type* (Coxian) distributions — a node walks a short chain of
exponential stages and "fails" when it exits — which expand naturally
into extra CTMC stages in :mod:`repro.fleet.chain`.

Fitting strategy (2-3 stages, the classic moment-matching menu):

* ``cv^2 == 1`` — a single exponential stage, exact;
* ``cv^2 > 1`` (infant mortality) — a 2-stage Coxian with
  ``r1 = 2/mean``, ``p = 1/(2 cv^2)``, ``r2 = p r1``: matches the first
  two moments exactly for every ``cv^2 >= 1``;
* ``cv^2 < 1`` (wear-out) — Tijms' mixed Erlang ``E_{k-1,k}`` fit with
  ``k = ceil(1/cv^2)`` equal-rate stages, exact in the first two moments
  whenever ``k`` fits within ``max_stages``; otherwise the stage budget
  clamps to an Erlang-``max_stages`` that matches the mean only.

Every fit returns a :class:`PhaseTypeFit` carrying the *measured*
relative moment errors (recomputed from the fitted distribution, not
assumed from the construction), so callers can certify the
approximation before trusting downstream MTTDLs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "DEFAULT_MAX_STAGES",
    "PhaseType",
    "PhaseTypeError",
    "PhaseTypeFit",
    "fit_lifetime",
    "fit_weibull",
    "weibull_moments",
]

#: The ISSUE's stage budget: 2-3 stage expansions keep the fleet state
#: spaces within reach of the dense backend for differential testing.
DEFAULT_MAX_STAGES = 3

#: ``cv^2`` this close to 1 is treated as exactly exponential.
_EXPONENTIAL_CV2_TOL = 1e-12


class PhaseTypeError(ValueError):
    """Raised for invalid phase-type parameters or fit targets."""


@dataclass(frozen=True)
class PhaseType:
    """An acyclic (Coxian) phase-type distribution.

    A fresh item starts in stage 1.  From stage ``i`` it leaves at rate
    ``rates[i]``; with probability ``continues[i]`` it advances to stage
    ``i + 1``, otherwise it fails.  The last stage always fails
    (``continues[-1] == 0``).  This canonical form covers exponential,
    Erlang, mixed-Erlang and hyperexponential-equivalent 2-stage shapes
    without an initial-distribution vector — exactly what the fleet
    chain expansion needs (every repaired node re-enters stage 1).

    Attributes:
        rates: per-stage exit rates (per hour), all positive.
        continues: per-stage advance probabilities; intermediate stages
            must have ``continues[i] > 0`` (a zero would strand
            unreachable stages), the final stage must have 0.
    """

    rates: Tuple[float, ...]
    continues: Tuple[float, ...]

    def __post_init__(self) -> None:
        rates = tuple(float(r) for r in self.rates)
        continues = tuple(float(p) for p in self.continues)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "continues", continues)
        if not rates:
            raise PhaseTypeError("a phase-type needs at least one stage")
        if len(rates) != len(continues):
            raise PhaseTypeError(
                f"rates ({len(rates)}) and continues ({len(continues)}) "
                "must have the same length"
            )
        for r in rates:
            if not math.isfinite(r) or r <= 0.0:
                raise PhaseTypeError(f"stage rates must be positive, got {r!r}")
        for i, p in enumerate(continues[:-1]):
            if not 0.0 < p <= 1.0:
                raise PhaseTypeError(
                    f"intermediate continue probability {p!r} at stage "
                    f"{i + 1} must be in (0, 1]"
                )
        if continues[-1] != 0.0:
            raise PhaseTypeError(
                "the final stage must absorb: continues[-1] must be 0"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def exponential(cls, rate: float) -> "PhaseType":
        """A single exponential stage with the given *rate* (not mean):
        bitwise-faithful to a legacy exponential brick, no ``1/(1/rate)``
        round trip."""
        return cls(rates=(rate,), continues=(0.0,))

    @classmethod
    def erlang(cls, stages: int, rate: float) -> "PhaseType":
        """Erlang-``stages`` with per-stage ``rate`` (mean ``stages/rate``)."""
        if stages < 1:
            raise PhaseTypeError("stages must be >= 1")
        return cls(
            rates=(float(rate),) * stages,
            continues=(1.0,) * (stages - 1) + (0.0,),
        )

    @classmethod
    def mixed_erlang(cls, stages: int, rate: float, short_prob: float) -> "PhaseType":
        """Tijms' ``E_{k-1,k}`` mixture: after stage ``k - 1`` fail with
        probability ``short_prob``, else traverse stage ``k`` too."""
        if stages < 2:
            raise PhaseTypeError("a mixed Erlang needs >= 2 stages")
        if not 0.0 <= short_prob < 1.0:
            raise PhaseTypeError("short_prob must be in [0, 1)")
        continues = (1.0,) * (stages - 2) + (1.0 - short_prob, 0.0)
        return cls(rates=(float(rate),) * stages, continues=continues)

    @classmethod
    def coxian2(cls, r1: float, r2: float, p: float) -> "PhaseType":
        """A 2-stage Coxian: exit stage 1 at ``r1``, advance w.p. ``p``."""
        if not 0.0 < p <= 1.0:
            raise PhaseTypeError("coxian2 advance probability must be in (0, 1]")
        return cls(rates=(float(r1), float(r2)), continues=(float(p), 0.0))

    # ------------------------------------------------------------------ #
    # moments
    # ------------------------------------------------------------------ #

    @property
    def num_stages(self) -> int:
        return len(self.rates)

    def moments(self) -> Tuple[float, float, float]:
        """The first three raw moments, by backward recursion over the
        stages (``T_i = Exp(r_i) + Bernoulli(p_i) * T_{i+1}``)."""
        m1 = m2 = m3 = 0.0
        for r, p in zip(reversed(self.rates), reversed(self.continues)):
            n1 = 1.0 / r + p * m1
            n2 = 2.0 / (r * r) + p * (2.0 * m1 / r + m2)
            n3 = 6.0 / (r * r * r) + p * (
                6.0 * m1 / (r * r) + 3.0 * m2 / r + m3
            )
            m1, m2, m3 = n1, n2, n3
        return m1, m2, m3

    def mean(self) -> float:
        return self.moments()[0]

    def cv2(self) -> float:
        """Squared coefficient of variation (1 for an exponential)."""
        m1, m2, _ = self.moments()
        return m2 / (m1 * m1) - 1.0

    def scaled(self, scale: float) -> "PhaseType":
        """Time-rescaled copy: every stage rate multiplied by ``scale``
        (lifetimes shrink by ``scale``) — the metamorphic-law transform."""
        if scale <= 0.0:
            raise PhaseTypeError("scale must be positive")
        return PhaseType(
            rates=tuple(r * scale for r in self.rates),
            continues=self.continues,
        )

    # ------------------------------------------------------------------ #
    # serialization (scenario corpus lines)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {"rates": list(self.rates), "continues": list(self.continues)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PhaseType":
        return cls(
            rates=tuple(payload["rates"]),
            continues=tuple(payload["continues"]),
        )


@dataclass(frozen=True)
class PhaseTypeFit:
    """A fitted distribution plus its *measured* moment-matching errors.

    ``rel_error_mean`` / ``rel_error_cv2`` are recomputed from the
    fitted :class:`PhaseType` via :meth:`PhaseType.moments`, so a bug in
    a closed-form fit cannot silently self-certify.
    """

    dist: PhaseType
    method: str
    target_mean: float
    target_cv2: float
    rel_error_mean: float
    rel_error_cv2: float
    target_third_moment: Optional[float] = None
    rel_error_third_moment: Optional[float] = None

    def certified(self, tolerance: float = 1e-9) -> bool:
        """Whether the first two moments match within ``tolerance``
        (relative).  Clamped fits (stage budget too small for the target
        ``cv^2``) report honest errors and fail certification."""
        return (
            self.rel_error_mean <= tolerance
            and self.rel_error_cv2 <= tolerance
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dist": self.dist.to_dict(),
            "method": self.method,
            "target_mean": self.target_mean,
            "target_cv2": self.target_cv2,
            "rel_error_mean": self.rel_error_mean,
            "rel_error_cv2": self.rel_error_cv2,
            "target_third_moment": self.target_third_moment,
            "rel_error_third_moment": self.rel_error_third_moment,
        }


def _measured_fit(
    dist: PhaseType,
    method: str,
    mean: float,
    cv2: float,
    third_moment: Optional[float],
) -> PhaseTypeFit:
    m1, m2, m3 = dist.moments()
    got_cv2 = m2 / (m1 * m1) - 1.0
    rel_m3 = None
    if third_moment is not None:
        rel_m3 = abs(m3 - third_moment) / third_moment
    return PhaseTypeFit(
        dist=dist,
        method=method,
        target_mean=mean,
        target_cv2=cv2,
        rel_error_mean=abs(m1 - mean) / mean,
        rel_error_cv2=abs(got_cv2 - cv2) / cv2,
        target_third_moment=third_moment,
        rel_error_third_moment=rel_m3,
    )


def fit_lifetime(
    mean: float,
    cv2: float,
    max_stages: int = DEFAULT_MAX_STAGES,
    *,
    third_moment: Optional[float] = None,
) -> PhaseTypeFit:
    """Fit a phase-type distribution to a target mean and ``cv^2``.

    Args:
        mean: target mean lifetime (hours), positive.
        cv2: target squared coefficient of variation, positive.
        max_stages: stage budget; fits needing more stages than this
            clamp and report the residual ``cv^2`` error.
        third_moment: optional target third raw moment (e.g. from a
            Weibull); reported as an informational error, never matched.

    Returns:
        A :class:`PhaseTypeFit`; call :meth:`PhaseTypeFit.certified` to
        check the two-moment match before relying on it.
    """
    if not math.isfinite(mean) or mean <= 0.0:
        raise PhaseTypeError(f"mean must be positive and finite, got {mean!r}")
    if not math.isfinite(cv2) or cv2 <= 0.0:
        raise PhaseTypeError(f"cv2 must be positive and finite, got {cv2!r}")
    if max_stages < 1:
        raise PhaseTypeError("max_stages must be >= 1")

    if abs(cv2 - 1.0) <= _EXPONENTIAL_CV2_TOL:
        dist = PhaseType.exponential(1.0 / mean)
        return _measured_fit(dist, "exponential", mean, cv2, third_moment)

    if cv2 > 1.0:
        if max_stages < 2:
            dist = PhaseType.exponential(1.0 / mean)
            return _measured_fit(
                dist, "exponential-clamped", mean, cv2, third_moment
            )
        # Two-moment-exact Coxian-2: mean splits evenly across the two
        # stages' expected contributions, and p carries the variance.
        r1 = 2.0 / mean
        p = 1.0 / (2.0 * cv2)
        r2 = p * r1
        dist = PhaseType.coxian2(r1, r2, p)
        return _measured_fit(dist, "coxian2", mean, cv2, third_moment)

    # cv2 < 1: Tijms' mixed Erlang E_{k-1,k} with 1/k <= cv2 <= 1/(k-1).
    k = math.ceil(1.0 / cv2 - 1e-12)
    if k > max_stages:
        dist = PhaseType.erlang(max_stages, max_stages / mean)
        return _measured_fit(dist, "erlang-clamped", mean, cv2, third_moment)
    if k < 2:  # pragma: no cover - cv2 < 1 forces k >= 2
        k = 2
    discriminant = max(k * (1.0 + cv2) - k * k * cv2, 0.0)
    p = (k * cv2 - math.sqrt(discriminant)) / (1.0 + cv2)
    p = min(max(p, 0.0), 1.0 - 1e-15)
    nu = (k - p) / mean
    dist = PhaseType.mixed_erlang(k, nu, p)
    return _measured_fit(dist, "mixed-erlang", mean, cv2, third_moment)


def weibull_moments(shape: float, scale: float) -> Tuple[float, float, float]:
    """First three raw moments of a Weibull(shape, scale):
    ``m_k = scale^k Gamma(1 + k/shape)``."""
    if shape <= 0.0 or scale <= 0.0:
        raise PhaseTypeError("Weibull shape and scale must be positive")
    return tuple(
        scale**k * math.gamma(1.0 + k / shape) for k in (1, 2, 3)
    )


def fit_weibull(
    shape: float,
    *,
    scale: Optional[float] = None,
    mean: Optional[float] = None,
    max_stages: int = DEFAULT_MAX_STAGES,
) -> PhaseTypeFit:
    """Fit a phase-type to a Weibull lifetime.

    ``shape < 1`` is infant mortality (hyperexponential-like, Coxian-2
    fit), ``shape > 1`` wear-out (mixed-Erlang fit), ``shape == 1``
    exactly exponential.  Exactly one of ``scale`` / ``mean`` selects
    the time scale; the Weibull's third moment is carried through as the
    informational target.
    """
    if (scale is None) == (mean is None):
        raise PhaseTypeError("pass exactly one of scale= or mean=")
    if shape <= 0.0:
        raise PhaseTypeError("Weibull shape must be positive")
    if scale is None:
        scale = mean / math.gamma(1.0 + 1.0 / shape)
    m1, m2, m3 = weibull_moments(shape, scale)
    cv2 = m2 / (m1 * m1) - 1.0
    return fit_lifetime(m1, cv2, max_stages, third_moment=m3)

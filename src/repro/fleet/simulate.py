"""Entity-level Monte-Carlo for fleet chains — the Gillespie leg.

The analytic fleet chain makes two structural commitments the uniform
models never had to: phase-type lifetime expansion and per-cohort
parallel repair.  This simulator re-derives MTTDL from *sampled brick
lifetimes* (phase-type draws via :func:`repro.sim.rng.phase_type`, with
the internal-array exponential competing) and independent exponential
repairs, so a chain bug in the stage expansion cannot self-certify.

Semantics mirror the chain exactly:

* each healthy brick's time-to-unavailability is
  ``min(PhaseType draw, Exp(lambda_D))`` (exponential cohorts draw
  ``Exp(lambda_N + lambda_D)`` directly);
* each failed brick repairs after ``Exp(mu_eff)`` — the repair-interval
  delay is already folded into ``mu_eff`` on the mean, matching the
  chain's single-exponential treatment;
* with ``t`` bricks down the fleet is critical: any further failure is
  data loss, and a restripe hard-error clock ticks at
  ``sum_c (n_c - f_c) k_t lambda_S_c`` (redrawn on each entry into
  criticality — valid by memorylessness).

Repaired bricks restart in lifetime stage 1 (fail-in-place rebuilds
reconstruct the data onto fresh spare space, not onto the aged brick).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.rng import StreamFactory, exponential, phase_type
from .chain import FleetModel
from .cohorts import FleetSpec

__all__ = ["FleetMonteCarloResult", "estimate_fleet_mttdl"]

_FAIL = 0
_REPAIR = 1


@dataclass(frozen=True)
class FleetMonteCarloResult:
    """Seeded Monte-Carlo MTTDL estimate for a fleet."""

    mean_hours: float
    std_error: float
    replicas: int
    seed: int

    def ci95(self) -> Tuple[float, float]:
        half = 1.96 * self.std_error
        return (self.mean_hours - half, self.mean_hours + half)

    def contains(self, value: float, sigmas: float = 4.0) -> bool:
        """Whether ``value`` lies within ``sigmas`` standard errors."""
        return abs(value - self.mean_hours) <= sigmas * self.std_error


def _draw_lifetime(rng, cohort, lam_exp: float, lambda_d: float) -> float:
    """Time until this brick becomes unavailable."""
    if cohort.lifetime is None:
        return exponential(rng, lam_exp)
    hardware = phase_type(
        rng, cohort.lifetime.rates, cohort.lifetime.continues
    )
    array = exponential(rng, lambda_d)
    return min(hardware, array)


def _replica_loss_hours(rng, fleet: FleetSpec, rates, k_t: float) -> float:
    """One replica: simulate until data loss, return the loss time."""
    t = fleet.fault_tolerance
    cohorts = fleet.cohorts
    failed = [0] * len(cohorts)
    healthy = [c.nodes for c in cohorts]
    events: List[Tuple[float, int, int, int]] = []  # (time, seq, kind, cohort)
    seq = 0
    for c, cohort in enumerate(cohorts):
        lam_exp = rates[c].node_failure_rate + rates[c].array_failure_rate
        for _ in range(cohort.nodes):
            when = _draw_lifetime(
                rng, cohort, lam_exp, rates[c].array_failure_rate
            )
            heapq.heappush(events, (when, seq, _FAIL, c))
            seq += 1
    now = 0.0
    sector_deadline = math.inf
    while True:
        when, _, kind, c = heapq.heappop(events)
        if when >= sector_deadline:
            return sector_deadline
        now = when
        if kind == _FAIL:
            if sum(failed) == t:
                return now  # a failure beyond the tolerance is loss
            failed[c] += 1
            healthy[c] -= 1
            heapq.heappush(
                events,
                (
                    now + exponential(rng, rates[c].repair_rate),
                    seq,
                    _REPAIR,
                    c,
                ),
            )
            seq += 1
            if sum(failed) == t:
                sector_rate = sum(
                    (cohorts[i].nodes - failed[i])
                    * k_t
                    * rates[i].restripe_sector_loss_rate
                    for i in range(len(cohorts))
                )
                if sector_rate > 0.0:
                    sector_deadline = now + exponential(rng, sector_rate)
        else:
            failed[c] -= 1
            healthy[c] += 1
            sector_deadline = math.inf  # left criticality
            lam_exp = rates[c].node_failure_rate + rates[c].array_failure_rate
            when = now + _draw_lifetime(
                rng, cohorts[c], lam_exp, rates[c].array_failure_rate
            )
            heapq.heappush(events, (when, seq, _FAIL, c))
            seq += 1


def estimate_fleet_mttdl(
    fleet: FleetSpec,
    *,
    replicas: int = 200,
    seed: int = 0,
    model: Optional[FleetModel] = None,
) -> FleetMonteCarloResult:
    """Seeded entity-level MTTDL estimate for ``fleet``.

    Each replica runs on its own named stream from one master seed, so
    estimates are reproducible and independent of replica order.  Use
    :meth:`FleetSpec.scaled` to accelerate rates before estimating —
    un-accelerated fleets lose data once per ten million years and a
    replica would grind through that many repair events.
    """
    if replicas < 2:
        raise ValueError("need at least 2 replicas for a standard error")
    model = model if model is not None else FleetModel(fleet)
    rates = tuple(fleet.cohort_rates(c) for c in fleet.cohorts)
    k_t = fleet.critical_sector_fraction
    streams = StreamFactory(seed=seed)
    losses = []
    for i in range(replicas):
        rng = streams.stream(f"fleet-replica-{i}")
        losses.append(_replica_loss_hours(rng, fleet, rates, k_t))
    mean = sum(losses) / replicas
    var = sum((x - mean) ** 2 for x in losses) / (replicas - 1)
    return FleetMonteCarloResult(
        mean_hours=mean,
        std_error=math.sqrt(var / replicas),
        replicas=replicas,
        seed=seed,
    )

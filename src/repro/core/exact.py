"""Exact (rational-arithmetic) absorption analysis for small chains.

Ground truth for the numerics: the MTTDL system is solved over Python's
``fractions.Fraction``, so the only error is in converting the input
rates to rationals (exact for float inputs, since every float is a
rational).  Unusable beyond a few dozen states (rational blow-up), but
perfect for validating the GTH solver and the closed forms on the
paper-sized chains.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List

from .ctmc import CTMC, NotAbsorbingError

__all__ = ["exact_mttdl", "exact_expected_times"]

State = Hashable


def _solve_rational(matrix: List[List[Fraction]], rhs: List[Fraction]) -> List[Fraction]:
    """Gauss-Jordan over Fractions; raises on singular systems."""
    n = len(matrix)
    work = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if work[r][col] != 0), None
        )
        if pivot is None:
            raise NotAbsorbingError(
                "exact solve: singular system (some state cannot reach "
                "absorption)"
            )
        work[col], work[pivot] = work[pivot], work[col]
        inv = Fraction(1) / work[col][col]
        work[col] = [x * inv for x in work[col]]
        for r in range(n):
            if r != col and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [x - factor * y for x, y in zip(work[r], work[col])]
    return [work[i][n] for i in range(n)]


def exact_expected_times(chain: CTMC) -> Dict[State, Fraction]:
    """Expected time in each transient state before absorption, exactly.

    Solves ``R^T tau = e_initial`` over the rationals.

    Raises:
        NotAbsorbingError: if the chain has no absorbing states or the
            initial state cannot reach one.
    """
    transient = list(chain.transient_states())
    if not chain.absorbing_states():
        raise NotAbsorbingError("chain has no absorbing states")
    if chain.initial_state not in transient:
        return {}
    n = len(transient)
    index = {s: i for i, s in enumerate(transient)}
    # Build R = -Q_B as Fractions from the float rates (exact conversion).
    r = [[Fraction(0)] * n for _ in range(n)]
    for s in transient:
        i = index[s]
        exit_rate = Fraction(0)
        for target, rate in chain.successors(s).items():
            frac = Fraction(rate)
            exit_rate += frac
            if target in index:
                r[i][index[target]] -= frac
        r[i][i] += exit_rate
    # Transpose for the tau system.
    rt = [[r[j][i] for j in range(n)] for i in range(n)]
    rhs = [Fraction(0)] * n
    rhs[index[chain.initial_state]] = Fraction(1)
    tau = _solve_rational(rt, rhs)
    return dict(zip(transient, tau))


def exact_mttdl(chain: CTMC) -> Fraction:
    """The MTTDL as an exact rational number."""
    times = exact_expected_times(chain)
    return sum(times.values(), Fraction(0))

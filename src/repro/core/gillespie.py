"""Stochastic simulation of a CTMC (Gillespie / kinetic Monte Carlo).

Sampling trajectories of the reliability chains gives an independent check
of the linear-algebra MTTDL solution: the empirical mean time to absorption
must agree with :meth:`repro.core.ctmc.CTMC.mean_time_to_absorption` within
sampling error.  The same machinery drives the validation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .ctmc import CTMC, CTMCError, NotAbsorbingError

__all__ = ["Trajectory", "SampleSummary", "sample_trajectory", "sample_absorption_times"]

State = Hashable


@dataclass(frozen=True)
class Trajectory:
    """One sampled path of a CTMC.

    Attributes:
        states: visited states in order, starting at the initial state.
        times: entry time of each visited state (``times[0] == 0``).
        absorbed: whether the path ended in an absorbing state.
        total_time: time of the final event (absorption or truncation).
    """

    states: Tuple[State, ...]
    times: Tuple[float, ...]
    absorbed: bool
    total_time: float


@dataclass(frozen=True)
class SampleSummary:
    """Monte-Carlo estimate of the mean time to absorption.

    Attributes:
        mean: sample mean of absorption times.
        std_error: standard error of the mean.
        n: number of samples.
        ci95: 95% confidence interval (normal approximation).
    """

    mean: float
    std_error: float
    n: int

    @property
    def ci95(self) -> Tuple[float, float]:
        half = 1.96 * self.std_error
        return (self.mean - half, self.mean + half)

    def contains(self, value: float, sigmas: float = 3.0) -> bool:
        """Whether ``value`` lies within ``sigmas`` standard errors of the mean."""
        return abs(value - self.mean) <= sigmas * self.std_error


def sample_trajectory(
    chain: CTMC,
    rng: np.random.Generator,
    max_time: float = math.inf,
    max_steps: int = 1_000_000,
) -> Trajectory:
    """Sample one trajectory until absorption, ``max_time`` or ``max_steps``.

    Args:
        chain: the chain to simulate.
        rng: numpy random generator (caller controls reproducibility).
        max_time: truncate the path at this time if not yet absorbed.
        max_steps: hard cap on the number of jumps.

    Returns:
        The sampled :class:`Trajectory`.
    """
    absorbing = set(chain.absorbing_states())
    state = chain.initial_state
    t = 0.0
    states: List[State] = [state]
    times: List[float] = [0.0]
    for _ in range(max_steps):
        if state in absorbing:
            return Trajectory(tuple(states), tuple(times), True, t)
        successors = chain.successors(state)
        total_rate = sum(successors.values())
        dwell = rng.exponential(1.0 / total_rate)
        if t + dwell > max_time:
            return Trajectory(tuple(states), tuple(times), False, max_time)
        t += dwell
        targets = list(successors)
        probs = np.array([successors[s] for s in targets]) / total_rate
        state = targets[rng.choice(len(targets), p=probs)]
        states.append(state)
        times.append(t)
    if state in absorbing:
        return Trajectory(tuple(states), tuple(times), True, t)
    return Trajectory(tuple(states), tuple(times), False, t)


def sample_absorption_times(
    chain: CTMC,
    n: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> SampleSummary:
    """Estimate the mean time to absorption by direct simulation.

    Args:
        chain: an absorbing chain.
        n: number of independent trajectories.
        seed: seed for a fresh generator (ignored when ``rng`` is given).
        rng: generator to use.

    Returns:
        A :class:`SampleSummary`; compare against
        :meth:`CTMC.mean_time_to_absorption`.

    Raises:
        NotAbsorbingError: if the chain has no absorbing state.
        CTMCError: if ``n`` is not positive.
    """
    if n <= 0:
        raise CTMCError("need at least one sample")
    if not chain.absorbing_states():
        raise NotAbsorbingError("chain has no absorbing states")
    if rng is None:
        rng = np.random.default_rng(seed)
    samples = np.empty(n)
    for i in range(n):
        traj = sample_trajectory(chain, rng)
        if not traj.absorbed:
            raise NotAbsorbingError(
                "trajectory hit the step cap before absorption; the chain "
                "may not be absorbing from its initial state"
            )
        samples[i] = traj.total_time
    mean = float(samples.mean())
    sem = float(samples.std(ddof=1) / math.sqrt(n)) if n > 1 else float("inf")
    return SampleSummary(mean=mean, std_error=sem, n=n)

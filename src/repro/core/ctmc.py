"""Continuous-time Markov chains with absorbing states.

This module implements the modeling machinery the paper takes from
Trivedi's textbook [6]: a continuous-time Markov chain (CTMC) is described
by its infinitesimal generator matrix ``Q`` whose off-diagonal entries are
the transition rates between states and whose diagonal entries make every
row sum to zero.  For reliability analysis the chain has one or more
*absorbing* states (data loss); the mean time to absorption starting from
the fully-operational state is the MTTDL.

Following the paper's appendix, with ``B`` the set of non-absorbing states,
``Q_B`` the generator restricted to ``B``, and ``R = -Q_B`` (the *absorption
matrix*, positive diagonal), the mean time to data loss is::

    MTTDL = <1, 0, ..., 0> . R^{-1} . <1, ..., 1>^t

The engine is deliberately general: the paper's RAID chains, the
hierarchical node chains and the recursive no-internal-RAID chains are all
built on top of it (see :mod:`repro.models`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
from scipy import linalg as _sla

from ..obs.tracer import span as _obs_span, tracing_active as _tracing_active

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .solvers import SolveOptions, SolveResult

__all__ = [
    "Transition",
    "CTMC",
    "AbsorptionResult",
    "CTMCError",
    "GeneratorDiagnostics",
    "NotAbsorbingError",
]

State = Hashable


class CTMCError(ValueError):
    """Raised when a chain is structurally invalid for the requested query."""


class NotAbsorbingError(CTMCError):
    """Raised when an absorption query is made on a chain with no absorbing state
    reachable from the initial state."""


@dataclass(frozen=True)
class Transition:
    """A single directed transition of a CTMC.

    Attributes:
        source: state the transition leaves.
        target: state the transition enters.
        rate: exponential rate in 1/time units; must be strictly positive
            (a zero rate is not a transition — drop it at build time, as
            :meth:`repro.core.builder.ChainBuilder.add_rate` does).
    """

    source: State
    target: State
    rate: float

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise CTMCError(f"self-loop transition on state {self.source!r}")
        if not math.isfinite(self.rate) or self.rate <= 0:
            raise CTMCError(f"transition rate must be finite and > 0, got {self.rate!r}")


@dataclass(frozen=True)
class AbsorptionResult:
    """Summary statistics of absorption from a fixed initial state.

    Attributes:
        mttdl: mean time to absorption (MTTDL when absorbing = data loss).
        expected_times: mean total time spent in each transient state before
            absorption, keyed by state (the paper's tau_i vector).
        absorption_probabilities: probability of being absorbed into each
            absorbing state, keyed by state.  Sums to 1.
    """

    mttdl: float
    expected_times: Dict[State, float]
    absorption_probabilities: Dict[State, float]


@dataclass(frozen=True)
class GeneratorDiagnostics:
    """Conservation diagnostics of a generator matrix.

    Every mathematically valid generator satisfies three structural laws:
    rows sum to zero (probability conservation), off-diagonal rates are
    non-negative, and absorbing rows are entirely null.  The chain
    constructors enforce these by build order, but memo re-binding, batch
    stacking and cache round-trips all re-assemble matrices — this report
    is the introspection hook the verification subsystem audits them
    through.

    Attributes:
        num_states: total states.
        num_absorbing: states with zero exit rate.
        max_row_residual: largest ``|sum(row)|`` over all rows — exact
            conservation gives 0.0; float assembly may leave a residual
            of a few ulps of the largest rate.
        min_off_diagonal: smallest off-diagonal entry (negative means an
            invalid rate slipped in; 0.0 is normal).
        absorbing_rows_null: whether every zero-diagonal row is entirely
            zero (an absorbing state must have no outgoing rate at all).
        initial_is_transient: whether the initial state can leave.
    """

    num_states: int
    num_absorbing: int
    max_row_residual: float
    min_off_diagonal: float
    absorbing_rows_null: bool
    initial_is_transient: bool

    def ok(self, atol: float = 1e-9) -> bool:
        """Whether the generator is conservative within ``atol``."""
        return (
            self.max_row_residual <= atol
            and self.min_off_diagonal >= 0.0
            and self.absorbing_rows_null
        )


class CTMC:
    """A finite continuous-time Markov chain.

    States may be arbitrary hashable labels.  The chain is immutable once
    constructed; use :class:`repro.core.builder.ChainBuilder` for incremental
    construction.

    Args:
        states: ordering of all states.  The order fixes row/column indices
            of the generator matrix.
        transitions: iterable of :class:`Transition`.  Parallel transitions
            between the same pair of states are summed.
        initial_state: state the chain starts in (defaults to the first).

    Raises:
        CTMCError: on duplicate states, unknown endpoints or invalid rates.
    """

    def __init__(
        self,
        states: Sequence[State],
        transitions: Iterable[Transition],
        initial_state: Optional[State] = None,
    ) -> None:
        states = list(states)
        if len(states) != len(set(states)):
            raise CTMCError("duplicate state labels")
        if not states:
            raise CTMCError("a CTMC needs at least one state")
        self._states: List[State] = states
        self._index: Dict[State, int] = {s: i for i, s in enumerate(states)}
        if initial_state is None:
            initial_state = states[0]
        if initial_state not in self._index:
            raise CTMCError(f"initial state {initial_state!r} not in state list")
        self._initial = initial_state

        n = len(states)
        q = np.zeros((n, n), dtype=float)
        for t in transitions:
            if t.source not in self._index:
                raise CTMCError(f"unknown source state {t.source!r}")
            if t.target not in self._index:
                raise CTMCError(f"unknown target state {t.target!r}")
            q[self._index[t.source], self._index[t.target]] += t.rate
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        self._q = q
        self._q.setflags(write=False)

    @classmethod
    def _from_assembled(
        cls,
        states: List[State],
        index: Dict[State, int],
        q: np.ndarray,
        initial_state: State,
    ) -> "CTMC":
        """Fast construction from a pre-assembled generator matrix.

        Used by :class:`repro.core.template.ChainTemplate` to re-bind rates
        onto a cached topology without re-running the per-transition checks
        (the template validated the structure when it was first built).
        ``q`` must already have its diagonal set to the negated row sums;
        ownership of ``q`` transfers to the chain.
        """
        self = cls.__new__(cls)
        self._states = states
        self._index = index
        self._initial = initial_state
        q.setflags(write=False)
        self._q = q
        return self

    # ------------------------------------------------------------------ #
    # basic structure
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> Tuple[State, ...]:
        """All states in index order."""
        return tuple(self._states)

    @property
    def initial_state(self) -> State:
        """The state the chain starts in."""
        return self._initial

    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self._states)

    def index_of(self, state: State) -> int:
        """Row/column index of ``state`` in the generator matrix."""
        try:
            return self._index[state]
        except KeyError:
            raise CTMCError(f"unknown state {state!r}") from None

    def generator_matrix(self) -> np.ndarray:
        """The infinitesimal generator ``Q`` (a copy; rows sum to zero)."""
        return self._q.copy()

    def rate(self, source: State, target: State) -> float:
        """Transition rate from ``source`` to ``target`` (0 if absent)."""
        if source == target:
            raise CTMCError("rate() is undefined for the diagonal")
        return float(self._q[self.index_of(source), self.index_of(target)])

    def exit_rate(self, state: State) -> float:
        """Total rate out of ``state`` (the negated diagonal entry)."""
        return float(-self._q[self.index_of(state), self.index_of(state)])

    def successors(self, state: State) -> Dict[State, float]:
        """Mapping of reachable next states to their transition rates."""
        i = self.index_of(state)
        row = self._q[i]
        return {
            self._states[j]: float(row[j])
            for j in range(self.num_states)
            if j != i and row[j] > 0.0
        }

    def absorbing_states(self) -> Tuple[State, ...]:
        """States with no outgoing transitions."""
        return tuple(
            s for i, s in enumerate(self._states) if self._q[i, i] == 0.0
        )

    def transient_states(self) -> Tuple[State, ...]:
        """States with at least one outgoing transition."""
        return tuple(
            s for i, s in enumerate(self._states) if self._q[i, i] != 0.0
        )

    # ------------------------------------------------------------------ #
    # absorption analysis (the paper's core computation)
    # ------------------------------------------------------------------ #

    def absorption_matrix(self) -> np.ndarray:
        """The paper's ``R = -Q_B``: the negated generator restricted to
        transient states, in transient-state order."""
        transient = [self.index_of(s) for s in self.transient_states()]
        if not transient:
            raise NotAbsorbingError("chain has no transient states")
        return -self._q[np.ix_(transient, transient)]

    def solve(self, options: Optional["SolveOptions"] = None) -> "SolveResult":
        """Solve this chain through the strategy interface.

        The instance-level door into :func:`repro.core.solvers.solve`:
        builds a single-chain ``"mttdl"`` request and dispatches to the
        backend the options select (``"auto"`` picks dense GTH below the
        state-count crossover, the sparse kernels above it).

        Args:
            options: a :class:`~repro.core.solvers.SolveOptions`;
                defaults apply when omitted.

        Returns:
            The backend's :class:`~repro.core.solvers.SolveResult`;
            ``result.values[0]`` is the MTTDL.
        """
        from .solvers import DEFAULT_SOLVE_OPTIONS, SolveRequest
        from .solvers import solve as _solve

        return _solve(
            SolveRequest(
                chains=(self,),
                query="mttdl",
                options=options if options is not None else DEFAULT_SOLVE_OPTIONS,
            )
        )

    def mean_time_to_absorption(self) -> float:
        """Mean time until the chain first enters any absorbing state.

        This is the MTTDL when the absorbing states model data loss.
        Computed as ``<pi_B(0)> . R^{-1} . 1`` per the appendix.

        Raises:
            NotAbsorbingError: if no absorbing state is reachable from the
                initial state (the expectation would be infinite).
        """
        # Guarded so the hot path pays one bool check when tracing is off.
        if _tracing_active():
            with _obs_span("ctmc.solve", states=len(self.states)):
                return self.absorb().mttdl
        return self.absorb().mttdl

    def absorption_system(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The assembled GTH input system for this chain.

        Returns ``(off_diagonal, absorb_rates, rates_to_absorbing)`` in
        transient-state order: the transient-to-transient off-diagonal rate
        matrix (zero diagonal), the total rate from each transient state to
        the absorbing set, and the per-absorbing-state rate matrix.  This is
        exactly what :meth:`absorb` feeds the GTH solver; the sweep engine
        uses it to stack structurally-identical chains into one batched
        solve with bit-identical assembly.
        """
        transient = list(self.transient_states())
        absorbing = list(self.absorbing_states())
        t_idx = [self.index_of(s) for s in transient]
        a_idx = [self.index_of(s) for s in absorbing]
        # The absorption matrix R = -Q_B is an M-matrix whose condition
        # number explodes as mu/lambda grows (the reliability regime), so
        # we use the subtraction-free GTH elimination: componentwise
        # accurate regardless of stiffness.
        off_diagonal = self._q[np.ix_(t_idx, t_idx)].copy()
        np.fill_diagonal(off_diagonal, 0.0)
        rates_to_absorbing = self._q[np.ix_(t_idx, a_idx)]
        absorb_rates = rates_to_absorbing.sum(axis=1)
        return off_diagonal, absorb_rates, rates_to_absorbing

    @staticmethod
    def stacked_absorption_system(
        chains: Sequence["CTMC"],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`absorption_system` for a batch of structurally identical
        chains, assembled in one pass.

        All chains must share state order and transient/absorbing
        partition (e.g. siblings bound from one
        :class:`~repro.core.template.ChainTemplate`); the caller is
        responsible for grouping.  Each returned slice ``[i]`` holds
        exactly the arrays ``chains[i].absorption_system()`` would — the
        assembly only gathers and sums the same matrix elements, so the
        floats are bitwise identical.
        """
        first = chains[0]
        transient = list(first.transient_states())
        absorbing = list(first.absorbing_states())
        if not transient:
            raise NotAbsorbingError("chain has no transient states")
        t_idx = np.array([first.index_of(s) for s in transient], dtype=np.intp)
        a_idx = np.array([first.index_of(s) for s in absorbing], dtype=np.intp)
        q = np.stack([chain._q for chain in chains])
        off_diagonal = q[:, t_idx[:, None], t_idx[None, :]].copy()
        n = len(transient)
        off_diagonal[:, np.arange(n), np.arange(n)] = 0.0
        rates_to_absorbing = q[:, t_idx[:, None], a_idx[None, :]]
        absorb_rates = rates_to_absorbing.sum(axis=2)
        return off_diagonal, absorb_rates, rates_to_absorbing

    def absorb(self) -> AbsorptionResult:
        """Full absorption analysis from the initial state.

        Routed through the ``dense_gth`` solver backend (the per-state
        tau vector needs the full fundamental matrix, a dense-only
        feature); the floats are the backend's verbatim GTH arithmetic.

        Returns:
            An :class:`AbsorptionResult` with the MTTDL, the expected total
            time spent in each transient state (tau vector), and the
            distribution over absorbing states.
        """
        from .solvers import SolveOptions, SolveRequest
        from .solvers import solve as _solve

        result = _solve(
            SolveRequest(
                chains=(self,),
                query="absorption",
                options=SolveOptions(backend="dense_gth"),
            )
        )
        assert result.absorption is not None
        return result.absorption

    def expected_visits(self) -> Dict[State, float]:
        """Expected number of visits to each transient state before absorption.

        The expected number of visits to state ``i`` equals the expected
        time spent there multiplied by its exit rate.
        """
        result = self.absorb()
        return {
            s: result.expected_times[s] * self.exit_rate(s)
            for s in result.expected_times
        }

    # ------------------------------------------------------------------ #
    # transient analysis
    # ------------------------------------------------------------------ #

    def transient_distribution(self, t: float) -> Dict[State, float]:
        """State distribution at time ``t`` via the matrix exponential.

        Args:
            t: elapsed time (same units as the rates' inverse).

        Returns:
            Mapping of every state to its occupancy probability at ``t``.
        """
        if t < 0:
            raise CTMCError("time must be non-negative")
        pi0 = np.zeros(self.num_states)
        pi0[self.index_of(self._initial)] = 1.0
        pi_t = pi0 @ _sla.expm(self._q * t)
        pi_t = np.clip(pi_t, 0.0, None)
        pi_t = pi_t / pi_t.sum()
        return dict(zip(self._states, map(float, pi_t)))

    def reliability(self, t: float) -> float:
        """Probability of *not* having been absorbed by time ``t``.

        For reliability chains this is the classical reliability function
        ``R(t) = P(no data loss by t)``.
        """
        dist = self.transient_distribution(t)
        absorbing = set(self.absorbing_states())
        return float(sum(p for s, p in dist.items() if s not in absorbing))

    def survival_curve(self, times: Sequence[float]) -> List[float]:
        """Reliability at each time in ``times`` (one expm per distinct time)."""
        return [self.reliability(t) for t in times]

    def uniformized_dtmc(
        self, rate: Optional[float] = None
    ) -> Tuple[np.ndarray, float]:
        """Uniformization: a DTMC transition matrix ``P`` and rate ``Lambda``
        such that the CTMC is the DTMC subordinated to a Poisson(Lambda)
        clock.

        Args:
            rate: uniformization rate; defaults to 1.05x the largest exit
                rate.  Must be >= every exit rate.

        Returns:
            Tuple of the stochastic matrix ``P = I + Q / Lambda`` and the
            chosen ``Lambda``.
        """
        max_exit = float(max(-self._q.diagonal().min(), 0.0))
        if rate is None:
            rate = max_exit * 1.05 if max_exit > 0 else 1.0
        if rate < max_exit:
            raise CTMCError(
                f"uniformization rate {rate} below max exit rate {max_exit}"
            )
        p = np.eye(self.num_states) + self._q / rate
        return p, rate

    def transient_distribution_uniformized(
        self, t: float, tol: float = 1e-12
    ) -> Dict[State, float]:
        """Transient distribution via uniformization (no matrix exponential).

        Numerically robust for stiff chains; truncates the Poisson series
        when the remaining mass is below ``tol``.
        """
        if t < 0:
            raise CTMCError("time must be non-negative")
        p, lam = self.uniformized_dtmc()
        pi = np.zeros(self.num_states)
        pi[self.index_of(self._initial)] = 1.0
        if t == 0 or lam == 0:
            return dict(zip(self._states, map(float, pi)))
        # Poisson(lam*t) weights, computed iteratively in log space for
        # stability.
        mean = lam * t
        result = np.zeros_like(pi)
        log_weight = -mean  # log P(K=0)
        k = 0
        accumulated = 0.0
        vec = pi.copy()
        # Iterate until the tail is negligible; cap to avoid pathological loops.
        max_terms = int(mean + 20 * math.sqrt(mean + 1.0) + 100)
        while k <= max_terms:
            weight = math.exp(log_weight)
            result += weight * vec
            accumulated += weight
            if accumulated >= 1.0 - tol and k >= mean:
                break
            vec = vec @ p
            k += 1
            log_weight += math.log(mean) - math.log(k)
        result = np.clip(result, 0.0, None)
        result /= result.sum()
        return dict(zip(self._states, map(float, result)))

    # ------------------------------------------------------------------ #
    # steady-state analysis (repairable-system view)
    # ------------------------------------------------------------------ #

    def stationary_distribution(self) -> Dict[State, float]:
        """Stationary distribution ``pi`` with ``pi Q = 0``.

        Defined for chains without absorbing states (every state has an
        exit).  Computed with the classical GTH algorithm on the embedded
        structure, so it stays accurate for stiff chains.

        Raises:
            CTMCError: if the chain has absorbing states or is reducible
                in a way that leaves the distribution undefined.
        """
        from .solvers import SolveOptions, SolveRequest
        from .solvers import solve as _solve

        result = _solve(
            SolveRequest(
                chains=(self,),
                query="stationary",
                options=SolveOptions(backend="dense_gth"),
            )
        )
        assert result.distribution is not None
        return result.distribution

    def with_renewal(self, renewal_rate: float) -> "CTMC":
        """A copy where every absorbing state transitions back to the
        initial state at ``renewal_rate``.

        This closes a reliability chain into a repairable-system chain:
        its stationary distribution gives the long-run fraction of time in
        each state (availability analysis), with the absorbing states
        representing post-loss recovery periods of mean ``1/renewal_rate``.
        """
        if renewal_rate <= 0:
            raise CTMCError("renewal rate must be positive")
        transitions = []
        for s in self._states:
            for t, r in self.successors(s).items():
                transitions.append(Transition(s, t, r))
        for s in self.absorbing_states():
            if s == self._initial:
                raise CTMCError("initial state is absorbing; nothing to renew")
            transitions.append(Transition(s, self._initial, renewal_rate))
        return CTMC(self._states, transitions, initial_state=self._initial)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def to_dot(self, name: str = "ctmc", rate_format: str = "{:.3g}") -> str:
        """GraphViz DOT rendering of the chain.

        Absorbing states are drawn as double circles, the initial state is
        bold, and edges carry their rates — handy for documenting the
        paper's figures straight from the code that implements them.
        """
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        absorbing = set(self.absorbing_states())
        for s in self._states:
            attrs = []
            if s in absorbing:
                attrs.append("shape=doublecircle")
            else:
                attrs.append("shape=circle")
            if s == self._initial:
                attrs.append("style=bold")
            lines.append(f'  "{s}" [{", ".join(attrs)}];')
        for s in self._states:
            if s in absorbing:
                continue
            for t, r in self.successors(s).items():
                lines.append(
                    f'  "{s}" -> "{t}" [label="{rate_format.format(r)}"];'
                )
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Human-readable listing of states and transitions."""
        absorbing = set(self.absorbing_states())
        lines = [
            f"CTMC: {self.num_states} states "
            f"({len(absorbing)} absorbing), initial = {self._initial!r}"
        ]
        for s in self._states:
            if s in absorbing:
                lines.append(f"  {s!r}: absorbing")
                continue
            edges = ", ".join(
                f"-> {t!r} @ {r:.4g}" for t, r in sorted(
                    self.successors(s).items(), key=lambda kv: str(kv[0])
                )
            )
            lines.append(f"  {s!r}: {edges}")
        return "\n".join(lines)

    def diagnostics(self) -> GeneratorDiagnostics:
        """Conservation report for this chain's generator matrix.

        Unlike :meth:`validate` (which raises), this returns the measured
        residuals so callers — notably the :mod:`repro.verify` invariant
        registry — can record *how close* the assembled matrix is to a
        mathematically exact generator, whichever construction path
        (builder, template re-bind, batch stacking) produced it.
        """
        diag = self._q.diagonal()
        absorbing_rows = self._q[diag == 0.0]
        off_diag = self._q - np.diag(diag)
        return GeneratorDiagnostics(
            num_states=self.num_states,
            num_absorbing=int((diag == 0.0).sum()),
            max_row_residual=float(np.abs(self._q.sum(axis=1)).max()),
            min_off_diagonal=float(off_diag.min(initial=0.0)),
            absorbing_rows_null=bool(
                absorbing_rows.size == 0 or not absorbing_rows.any()
            ),
            initial_is_transient=bool(
                diag[self.index_of(self._initial)] != 0.0
            ),
        )

    def validate(self) -> None:
        """Structural sanity checks; raises :class:`CTMCError` on failure."""
        row_sums = self._q.sum(axis=1)
        if not np.allclose(row_sums, 0.0, atol=1e-9):
            raise CTMCError("generator rows do not sum to zero")
        off_diag = self._q - np.diag(self._q.diagonal())
        if np.any(off_diag < 0):
            raise CTMCError("negative off-diagonal rate")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CTMC(states={self.num_states}, "
            f"absorbing={len(self.absorbing_states())}, "
            f"initial={self._initial!r})"
        )

"""Absorbing continuous-time Markov chain engine.

This package is the paper-independent mathematical substrate: generator
matrices, mean time to absorption (MTTDL), transient analysis,
trajectory sampling, and the declarative spec IR (states + symbolic
rates compiled once, bound per operating point).  The paper's specific
chains live in :mod:`repro.models`.
"""

from .builder import ChainBuilder
from .ctmc import (
    AbsorptionResult,
    CTMC,
    CTMCError,
    GeneratorDiagnostics,
    NotAbsorbingError,
    Transition,
)
from .exact import exact_expected_times, exact_mttdl
from .linalg import gth_fundamental_matrix, gth_solve, gth_solve_batched
from .spec import (
    CompiledChain,
    CompiledSpecCache,
    ModelSpec,
    RateExpr,
    SpecBuilder,
    SpecError,
    const,
    param,
    rate_min,
)
from .template import ChainStructureMemo, ChainTemplate
from .gillespie import (
    SampleSummary,
    Trajectory,
    sample_absorption_times,
    sample_trajectory,
)

__all__ = [
    "AbsorptionResult",
    "CTMC",
    "CTMCError",
    "ChainBuilder",
    "ChainStructureMemo",
    "ChainTemplate",
    "CompiledChain",
    "CompiledSpecCache",
    "GeneratorDiagnostics",
    "ModelSpec",
    "NotAbsorbingError",
    "RateExpr",
    "SampleSummary",
    "SpecBuilder",
    "SpecError",
    "Trajectory",
    "Transition",
    "const",
    "param",
    "rate_min",
    "exact_expected_times",
    "exact_mttdl",
    "gth_fundamental_matrix",
    "gth_solve",
    "gth_solve_batched",
    "sample_absorption_times",
    "sample_trajectory",
]

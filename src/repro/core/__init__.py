"""Absorbing continuous-time Markov chain engine.

This package is the paper-independent mathematical substrate: generator
matrices, mean time to absorption (MTTDL), transient analysis,
trajectory sampling, and the declarative spec IR (states + symbolic
rates compiled once, bound per operating point).  The paper's specific
chains live in :mod:`repro.models`.

The supported public surface is exactly ``__all__`` below.  Chain
solves go through the strategy interface in :mod:`repro.core.solvers`
(:func:`solve` with a :class:`SolveRequest`, or :meth:`CTMC.solve`);
the raw GTH kernels stay in :mod:`repro.core.linalg` as solver-internal
machinery and are deliberately not re-exported here — backends are the
only supported way to reach them.
"""

from .builder import ChainBuilder
from .ctmc import (
    AbsorptionResult,
    CTMC,
    CTMCError,
    GeneratorDiagnostics,
    NotAbsorbingError,
    Transition,
)
from .exact import exact_expected_times, exact_mttdl
from .solvers import (
    BACKENDS,
    DEFAULT_SOLVE_OPTIONS,
    SolveOptions,
    SolveRequest,
    SolveResult,
    SolverBackend,
    SolverError,
    get_backend,
    select_backend,
    solve,
)
from .sparse import (
    CsrMatrix,
    SparseChain,
    build_indirect,
)
from .spec import (
    CompiledChain,
    CompiledSpecCache,
    ModelSpec,
    RateExpr,
    SpecBuilder,
    SpecError,
    const,
    param,
    rate_min,
)
from .template import ChainStructureMemo, ChainTemplate
from .gillespie import (
    SampleSummary,
    Trajectory,
    sample_absorption_times,
    sample_trajectory,
)

__all__ = [
    "AbsorptionResult",
    "BACKENDS",
    "CTMC",
    "CTMCError",
    "ChainBuilder",
    "ChainStructureMemo",
    "ChainTemplate",
    "CompiledChain",
    "CompiledSpecCache",
    "CsrMatrix",
    "DEFAULT_SOLVE_OPTIONS",
    "GeneratorDiagnostics",
    "ModelSpec",
    "NotAbsorbingError",
    "RateExpr",
    "SampleSummary",
    "SolveOptions",
    "SolveRequest",
    "SolveResult",
    "SolverBackend",
    "SolverError",
    "SparseChain",
    "SpecBuilder",
    "SpecError",
    "Trajectory",
    "Transition",
    "build_indirect",
    "const",
    "exact_expected_times",
    "exact_mttdl",
    "get_backend",
    "param",
    "rate_min",
    "sample_absorption_times",
    "sample_trajectory",
    "select_backend",
    "solve",
]

"""Structure-level memoization of chain topologies.

Every point of a parameter sweep rebuilds the same handful of chain
*shapes* — the Figure 5/8/9/10 state graphs — with different rates on the
edges.  A :class:`ChainTemplate` captures one built topology (state order,
edge list, index arrays); re-binding it to a new rate vector assembles the
generator matrix directly, skipping per-transition validation and Python
dict bookkeeping.  :class:`ChainStructureMemo` caches templates under a
caller-chosen key, e.g. ``(config.key, structural params)``.

Bit-exactness: :class:`~repro.core.builder.ChainBuilder` de-duplicates
edges (parallel rates accumulate in its dict), so assigning each edge's
rate once into a zero matrix produces exactly the float the ``+=`` loop in
:class:`~repro.core.ctmc.CTMC` would, and the diagonal is derived by the
same ``-q.sum(axis=1)``.  Because the builder also drops zero rates, a
vanishing term (e.g. ``h = 0``) *changes the edge set*; the memo therefore
verifies the structure on every hit and transparently rebuilds the
template when the topology differs, so it is safe for any rate regime.
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..obs import Metrics
from .ctmc import CTMC

__all__ = ["ChainTemplate", "ChainStructureMemo"]

State = Hashable


class ChainTemplate:
    """One cached chain topology: states, edges and their matrix indices."""

    __slots__ = (
        "states",
        "edge_keys",
        "initial_state",
        "_index",
        "_src_idx",
        "_dst_idx",
        "_n",
    )

    def __init__(
        self,
        states: Tuple[State, ...],
        edge_keys: Tuple[Tuple[State, State], ...],
        initial_state: State,
    ) -> None:
        self.states = states
        self.edge_keys = edge_keys
        self.initial_state = initial_state
        self._index: Dict[State, int] = {s: i for i, s in enumerate(states)}
        self._n = len(states)
        self._src_idx = np.array(
            [self._index[src] for src, _ in edge_keys], dtype=np.intp
        )
        self._dst_idx = np.array(
            [self._index[dst] for _, dst in edge_keys], dtype=np.intp
        )

    @classmethod
    def from_builder(
        cls, builder: "ChainBuilderLike", initial_state: State
    ) -> "ChainTemplate":
        """Capture the topology of a fully-populated builder."""
        return cls(
            states=tuple(builder.states),
            edge_keys=tuple(builder.edge_keys()),
            initial_state=initial_state,
        )

    def matches(self, builder: "ChainBuilderLike", initial_state: State) -> bool:
        """Whether the builder's current topology equals this template's."""
        return (
            initial_state == self.initial_state
            and tuple(builder.states) == self.states
            and tuple(builder.edge_keys()) == self.edge_keys
        )

    def bind(self, rates: Tuple[float, ...]) -> CTMC:
        """A chain with this topology and ``rates`` on the edges (in
        ``edge_keys`` order); bitwise identical to building from scratch."""
        q = np.zeros((self._n, self._n), dtype=float)
        q[self._src_idx, self._dst_idx] = rates
        np.fill_diagonal(q, -q.sum(axis=1))
        return CTMC._from_assembled(
            list(self.states), self._index, q, self.initial_state
        )


class ChainStructureMemo:
    """Keyed cache of :class:`ChainTemplate` objects with hit/miss counters.

    Pass an instance (plus a structural key) to
    :meth:`repro.core.builder.ChainBuilder.build` to reuse topologies
    across the points of a sweep.

    Because :class:`~repro.core.builder.ChainBuilder` drops zero rates, a
    vanishing term silently *changes the topology* under an unchanged key;
    the memo stays correct (it verifies structure on every hit) but
    degrades to rebuilding.  :attr:`structure_rebuilds` counts those
    key-collision rebuilds separately from first-time :attr:`misses`, and
    a key whose rebuilds outnumber its hits warns once — the signal that
    its granularity is wrong (or that the model belongs on the fixed-
    topology :class:`~repro.core.spec.CompiledChain` path, where the edge
    set cannot drift).

    Attributes:
        hits: lookups served by a structurally-matching cached template.
        misses: first-time builds (no template under the key yet).
        structure_rebuilds: rebuilds forced by a cached template that no
            longer matches the builder's topology.

    The three counters are read-through properties over the
    ``core.structure_memo.*`` counters in :attr:`metrics`, so the memo
    folds into a run's flat metrics export without changing any caller.
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self._templates: Dict[Hashable, ChainTemplate] = {}
        self.metrics = metrics if metrics is not None else Metrics()
        self._hits = self.metrics.counter("core.structure_memo.hits")
        self._misses = self.metrics.counter("core.structure_memo.misses")
        self._rebuilds = self.metrics.counter(
            "core.structure_memo.structure_rebuilds"
        )
        self._key_stats: Dict[Hashable, List[int]] = {}
        self._warned: set = set()

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def structure_rebuilds(self) -> int:
        return self._rebuilds.value

    @structure_rebuilds.setter
    def structure_rebuilds(self, value: int) -> None:
        self._rebuilds.value = value

    def __len__(self) -> int:
        return len(self._templates)

    def build(
        self,
        key: Hashable,
        builder: "ChainBuilderLike",
        initial_state: Optional[State] = None,
    ) -> CTMC:
        """Build ``builder``'s chain, reusing the cached topology for
        ``key`` when it structurally matches (else the template is
        refreshed — correctness never depends on the key's granularity)."""
        if initial_state is None:
            initial_state = builder.states[0]
        template = self._templates.get(key)
        stats = self._key_stats.setdefault(key, [0, 0])  # [hits, rebuilds]
        if template is not None and template.matches(builder, initial_state):
            self.hits += 1
            stats[0] += 1
        else:
            if template is not None:
                self.structure_rebuilds += 1
                stats[1] += 1
                if stats[1] > stats[0] and key not in self._warned:
                    self._warned.add(key)
                    warnings.warn(
                        f"chain-structure memo key {key!r} has rebuilt its "
                        f"topology {stats[1]} time(s) against {stats[0]} "
                        "hit(s) — the key does not determine the structure "
                        "(a rate term is vanishing between points?); widen "
                        "the key or move the model to a compiled spec",
                        RuntimeWarning,
                        stacklevel=3,
                    )
            self.misses += 1
            template = ChainTemplate.from_builder(builder, initial_state)
            self._templates[key] = template
        return template.bind(builder.edge_rates())

    def clear(self) -> None:
        self._templates.clear()
        self.hits = 0
        self.misses = 0
        self.structure_rebuilds = 0
        self._key_stats.clear()
        self._warned.clear()


class ChainBuilderLike:
    """Protocol stub for type hints (avoids a circular import)."""

    states: Tuple[State, ...]

    def edge_keys(self) -> Tuple[Tuple[State, State], ...]:  # pragma: no cover
        raise NotImplementedError

    def edge_rates(self) -> Tuple[float, ...]:  # pragma: no cover
        raise NotImplementedError

"""Accurate linear algebra for absorbing-chain M-matrices.

The absorption matrix ``R = -Q_B`` of a reliability chain is an M-matrix
whose condition number grows like ``(mu / lambda)^k`` — above 1e16 for
the paper's higher fault tolerances, where ordinary Gaussian elimination
in float64 loses *all* significant digits.

The cure is the Grassmann-Taksar-Heyman (GTH) trick: represent the
diagonal implicitly as ``(sum of off-diagonal rates) + (absorption
rate)`` and re-derive it after every elimination step.  Every quantity in
the elimination is then a sum/product/quotient of non-negative numbers —
no cancellation — giving componentwise relative accuracy independent of
conditioning.  See Grassmann, Taksar & Heyman (1985) and O'Cinneide
(1993) for the entrywise error analysis.

:func:`gth_fundamental_matrix` computes the fundamental matrix
``N = R^{-1}`` (expected time spent in each transient state per start
state), from which MTTDL, per-state expected times and absorption
probabilities all follow by non-negative arithmetic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["gth_fundamental_matrix", "gth_solve", "gth_solve_batched"]


def _validate(rates: np.ndarray, absorb: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    rates = np.asarray(rates, dtype=float)
    absorb = np.asarray(absorb, dtype=float)
    if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
        raise ValueError("rates must be a square matrix")
    n = rates.shape[0]
    if absorb.shape != (n,):
        raise ValueError("absorb must be a vector matching rates")
    if np.any(rates < 0) or np.any(absorb < 0):
        raise ValueError("rates must be non-negative")
    if np.any(np.diagonal(rates) != 0):
        raise ValueError("diagonal of rates must be zero (rates are off-diagonal)")
    return rates.copy(), absorb.copy()


def gth_solve(
    transient_rates: np.ndarray,
    absorb_rates: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``(D - A) X = B`` for an absorbing-chain M-matrix, accurately.

    Args:
        transient_rates: ``A`` — non-negative transient-to-transient rate
            matrix with zero diagonal (``A[i, j]`` = rate from i to j).
        absorb_rates: non-negative total rate from each transient state to
            the absorbing states; the implicit diagonal is
            ``D[i, i] = sum_j A[i, j] + absorb_rates[i]``.
        rhs: non-negative right-hand side, shape (n,) or (n, m).

    Returns:
        ``X`` with the same trailing shape as ``rhs``; all entries are
        non-negative and computed without subtractive cancellation.

    Raises:
        ValueError: on negative inputs, shape mismatch, or a state that
            cannot reach absorption (singular system).
    """
    a, b = _validate(transient_rates, absorb_rates)
    rhs = np.asarray(rhs, dtype=float)
    if np.any(rhs < 0):
        raise ValueError("GTH solve requires a non-negative right-hand side")
    squeeze = rhs.ndim == 1
    x = rhs.reshape(rhs.shape[0], -1).astype(float).copy()
    n = a.shape[0]
    if x.shape[0] != n:
        raise ValueError("rhs length does not match the matrix")

    # Forward elimination, pivots n-1 .. 1.  After eliminating pivot p,
    # rows 0..p-1 no longer reference state p; the diagonal is always
    # re-derived from the current off-diagonal sums plus the absorption
    # rate, which only ever *accumulates* (the GTH trick).
    for p in range(n - 1, 0, -1):
        d_p = a[p, :p].sum() + b[p]
        if d_p <= 0:
            raise ValueError(
                f"state {p} cannot reach absorption; the system is singular"
            )
        factors = a[:p, p] / d_p
        a[:p, :p] += np.outer(factors, a[p, :p])
        b[:p] += factors * b[p]
        x[:p] += np.outer(factors, x[p])

    # Back substitution, states 0 .. n-1.
    if b[0] <= 0:
        raise ValueError("state 0 cannot reach absorption; the system is singular")
    x[0] = x[0] / b[0]
    for p in range(1, n):
        d_p = a[p, :p].sum() + b[p]
        x[p] = (x[p] + a[p, :p] @ x[:p]) / d_p

    return x[:, 0] if squeeze else x


def gth_solve_batched(
    transient_rates: np.ndarray,
    absorb_rates: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``(D - A) X = B`` for a *batch* of same-shape absorbing systems.

    Vectorized GTH elimination over a leading batch dimension: every
    arithmetic operation is the scalar algorithm's operation applied
    elementwise across the batch, in the same order, so each slice of the
    result is bitwise identical to ``gth_solve`` on that slice.  This is
    what lets the sweep engine group structurally-identical chains and
    solve them in one pass without perturbing any published number.

    Args:
        transient_rates: shape ``(batch, n, n)``, each slice a non-negative
            off-diagonal rate matrix (zero diagonals).
        absorb_rates: shape ``(batch, n)``.
        rhs: shape ``(batch, n)`` or ``(batch, n, m)``.

    Returns:
        ``X`` with the same shape as ``rhs``.

    Raises:
        ValueError: on negative inputs, shape mismatch, or any batch member
            with a state that cannot reach absorption.
    """
    a = np.asarray(transient_rates, dtype=float)
    b = np.asarray(absorb_rates, dtype=float)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError("transient_rates must have shape (batch, n, n)")
    batch, n = a.shape[0], a.shape[1]
    if b.shape != (batch, n):
        raise ValueError("absorb_rates must have shape (batch, n)")
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("rates must be non-negative")
    if np.any(a[:, np.arange(n), np.arange(n)] != 0):
        raise ValueError("diagonal of rates must be zero (rates are off-diagonal)")
    rhs = np.asarray(rhs, dtype=float)
    if np.any(rhs < 0):
        raise ValueError("GTH solve requires a non-negative right-hand side")
    squeeze = rhs.ndim == 2
    x = rhs.reshape(batch, n, -1).astype(float).copy()
    if x.shape[:2] != (batch, n):
        raise ValueError("rhs does not match the matrix batch")
    a = a.copy()
    b = b.copy()

    # Forward elimination, pivots n-1 .. 1 (see gth_solve for the scalar
    # derivation; every step below is that step broadcast over the batch).
    for p in range(n - 1, 0, -1):
        d_p = a[:, p, :p].sum(axis=-1) + b[:, p]
        if np.any(d_p <= 0):
            bad = int(np.argmax(d_p <= 0))
            raise ValueError(
                f"state {p} of batch member {bad} cannot reach absorption; "
                "the system is singular"
            )
        factors = a[:, :p, p] / d_p[:, None]
        a[:, :p, :p] += factors[:, :, None] * a[:, p, None, :p]
        b[:, :p] += factors * b[:, p, None]
        x[:, :p, :] += factors[:, :, None] * x[:, p, None, :]

    # Back substitution, states 0 .. n-1.
    if np.any(b[:, 0] <= 0):
        bad = int(np.argmax(b[:, 0] <= 0))
        raise ValueError(
            f"state 0 of batch member {bad} cannot reach absorption; "
            "the system is singular"
        )
    x[:, 0, :] = x[:, 0, :] / b[:, 0, None]
    for p in range(1, n):
        d_p = a[:, p, :p].sum(axis=-1) + b[:, p]
        dot = np.matmul(a[:, p, None, :p], x[:, :p, :])[:, 0, :]
        x[:, p, :] = (x[:, p, :] + dot) / d_p[:, None]

    return x[:, :, 0] if squeeze else x


def gth_fundamental_matrix(
    transient_rates: np.ndarray, absorb_rates: np.ndarray
) -> np.ndarray:
    """The fundamental matrix ``N = (D - A)^{-1}`` via :func:`gth_solve`.

    ``N[i, j]`` is the expected total time spent in transient state ``j``
    before absorption when starting in transient state ``i``.  Row sums
    are the mean times to absorption per start state.
    """
    n = transient_rates.shape[0]
    return gth_solve(transient_rates, absorb_rates, np.eye(n))

"""Declarative model IR: symbolic chain specs compiled to bindable kernels.

This module is the front half of the compile--bind--solve pipeline.  A
:class:`ModelSpec` describes a chain *family* once — states plus edges
whose rates are symbolic :class:`RateExpr` trees over named parameters
(``lambda_N``, ``mu_d``, ``h_Nd``, ``k_t``, ...) — and compiling it
yields a :class:`CompiledChain` whose structure is fixed forever and
whose rates are re-evaluated per operating point:

* ``compiled.bind(env)`` assembles one :class:`~repro.core.ctmc.CTMC`
  from a scalar parameter environment, and
* ``compiled.bind_batch(env)`` takes *vector* environments (one array
  entry per lattice point) and assembles the whole stacked generator
  tensor in a single numpy pass, ready for
  :meth:`repro.core.ctmc.CTMC.stacked_absorption_system` and the batched
  GTH solver.

Bit-exactness contract: rate expressions are evaluated with exactly the
IEEE-754 double operations (and operation *order*) their construction
spells out, scalar and vectorized evaluation use the same elementwise
operations, and assembly assigns each edge's rate once into a zero
matrix before deriving the diagonal as ``-row_sum`` — float for float
what :class:`~repro.core.builder.ChainBuilder` + :class:`CTMC` produce.
Because the edge set is fixed at compile time, a rate that evaluates to
zero simply writes an explicit ``0.0`` (the matrix is unchanged); the
topology can never silently drift with the operating point, which is the
footgun :class:`~repro.core.template.ChainStructureMemo` had to guard
against with per-hit structure checks.

Unlike the builder, a spec is also *hashable*: :attr:`ModelSpec.spec_hash`
digests the canonical structure (states, edges, expression trees), so
caches can key compiled chains by content instead of by caller-invented
memo keys.
"""

from __future__ import annotations

import hashlib
import json
import operator
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..obs import Metrics
from .ctmc import CTMC, CTMCError

__all__ = [
    "CompiledChain",
    "CompiledSpecCache",
    "ModelSpec",
    "RateExpr",
    "SpecBuilder",
    "SpecError",
    "const",
    "param",
    "rate_min",
]

State = Hashable
Number = Union[int, float]
EnvValue = Union[int, float, np.ndarray]
Env = Mapping[str, EnvValue]


class SpecError(CTMCError):
    """Raised for structurally invalid specs or incomplete environments."""


# --------------------------------------------------------------------- #
# symbolic rate expressions
# --------------------------------------------------------------------- #

_BINOPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "min": np.minimum,
}


class RateExpr:
    """A symbolic rate: an expression tree over named parameters.

    Build expressions with :func:`param` / :func:`const` and ordinary
    arithmetic; the tree records the exact operation order, and
    :meth:`evaluate` replays it with IEEE double operations — so an
    expression transcribed from a figure formula produces the same float
    the inline Python arithmetic would, whether the environment holds
    scalars or whole lattice-axis arrays.

    Example:
        >>> n, lam = param("n"), param("lambda_N")
        >>> expr = n * lam * (1.0 - param("h_N"))
        >>> expr.evaluate({"n": 64, "lambda_N": 2.5e-6, "h_N": 0.0})
        0.00016
    """

    __slots__ = ()

    # -- construction ------------------------------------------------- #

    @staticmethod
    def wrap(value: Union["RateExpr", Number]) -> "RateExpr":
        """Coerce a plain number to a :class:`Const` leaf."""
        if isinstance(value, RateExpr):
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"cannot use {value!r} in a rate expression")
        return Const(float(value))

    def __add__(self, other: Union["RateExpr", Number]) -> "RateExpr":
        return BinOp("+", self, RateExpr.wrap(other))

    def __radd__(self, other: Number) -> "RateExpr":
        return BinOp("+", RateExpr.wrap(other), self)

    def __sub__(self, other: Union["RateExpr", Number]) -> "RateExpr":
        return BinOp("-", self, RateExpr.wrap(other))

    def __rsub__(self, other: Number) -> "RateExpr":
        return BinOp("-", RateExpr.wrap(other), self)

    def __mul__(self, other: Union["RateExpr", Number]) -> "RateExpr":
        return BinOp("*", self, RateExpr.wrap(other))

    def __rmul__(self, other: Number) -> "RateExpr":
        return BinOp("*", RateExpr.wrap(other), self)

    def __truediv__(self, other: Union["RateExpr", Number]) -> "RateExpr":
        return BinOp("/", self, RateExpr.wrap(other))

    def __rtruediv__(self, other: Number) -> "RateExpr":
        return BinOp("/", RateExpr.wrap(other), self)

    # -- interface ---------------------------------------------------- #

    def evaluate(self, env: Env):
        """The expression's value under ``env`` (scalars or arrays)."""
        raise NotImplementedError

    def canonical(self) -> str:
        """Stable, fully-parenthesized text form (hashing / display)."""
        raise NotImplementedError

    def params(self) -> frozenset:
        """Names of every parameter the expression reads."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.canonical()})"


@dataclass(frozen=True, repr=False)
class Const(RateExpr):
    """A literal float leaf."""

    value: float

    def evaluate(self, env: Env):
        return self.value

    def canonical(self) -> str:
        return repr(self.value)

    def params(self) -> frozenset:
        return frozenset()


@dataclass(frozen=True, repr=False)
class Param(RateExpr):
    """A named-parameter leaf, looked up in the binding environment."""

    name: str

    def evaluate(self, env: Env):
        try:
            return env[self.name]
        except KeyError:
            raise SpecError(
                f"environment is missing parameter {self.name!r}"
            ) from None

    def canonical(self) -> str:
        return self.name

    def params(self) -> frozenset:
        return frozenset((self.name,))


@dataclass(frozen=True, repr=False)
class BinOp(RateExpr):
    """A binary operation node (``+ - * /`` or elementwise ``min``)."""

    op: str
    left: RateExpr
    right: RateExpr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise SpecError(f"unknown rate operation {self.op!r}")

    def evaluate(self, env: Env):
        return _BINOPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def canonical(self) -> str:
        a, b = self.left.canonical(), self.right.canonical()
        if self.op == "min":
            return f"min({a},{b})"
        return f"({a}{self.op}{b})"

    def params(self) -> frozenset:
        return self.left.params() | self.right.params()


def param(name: str) -> RateExpr:
    """A named parameter (``lambda_N``, ``mu_d``, ``h_Nd``, ...)."""
    return Param(name)


def const(value: Number) -> RateExpr:
    """A literal constant."""
    return RateExpr.wrap(value)


def rate_min(
    a: Union[RateExpr, Number], b: Union[RateExpr, Number]
) -> RateExpr:
    """Elementwise ``min(a, b)`` — e.g. clamping an h-probability to 1."""
    return BinOp("min", RateExpr.wrap(a), RateExpr.wrap(b))


# --------------------------------------------------------------------- #
# the spec
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ModelSpec:
    """One chain family, declaratively: states + symbolically-rated edges.

    Attributes:
        name: family identifier (``"no_raid_ft2"``, ``"internal_raid_t3"``).
        states: every state, in the order that fixes the generator's
            row/column layout (and therefore the GTH elimination order —
            specs transcribed from the legacy builders must register
            states in the same order to stay bitwise-identical).
        edges: ``(source, target, rate_expr)`` triples; one entry per
            directed edge (parallel rates must be pre-summed, which
            :class:`SpecBuilder` does in insertion order).
        initial_state: the fully-operational start state.
    """

    name: str
    states: Tuple[State, ...]
    edges: Tuple[Tuple[State, State, RateExpr], ...]
    initial_state: State

    def __post_init__(self) -> None:
        if not self.states:
            raise SpecError("a spec needs at least one state")
        if len(set(self.states)) != len(self.states):
            raise SpecError("duplicate state labels in spec")
        known = set(self.states)
        seen_edges = set()
        for src, dst, expr in self.edges:
            if src == dst:
                raise SpecError(f"self-loop edge on {src!r}")
            if src not in known or dst not in known:
                raise SpecError(f"edge {src!r} -> {dst!r} uses unknown states")
            if (src, dst) in seen_edges:
                raise SpecError(
                    f"duplicate edge {src!r} -> {dst!r}; accumulate the "
                    "rates into one expression (SpecBuilder does this)"
                )
            seen_edges.add((src, dst))
            if not isinstance(expr, RateExpr):
                raise SpecError(
                    f"edge {src!r} -> {dst!r} rate must be a RateExpr"
                )
        if self.initial_state not in known:
            raise SpecError(
                f"initial state {self.initial_state!r} not in state list"
            )

    @property
    def param_names(self) -> Tuple[str, ...]:
        """Sorted union of every parameter the edge rates read."""
        names: set = set()
        for _, _, expr in self.edges:
            names |= expr.params()
        return tuple(sorted(names))

    @property
    def spec_hash(self) -> str:
        """Content hash of the canonical structure.

        Two specs share a hash iff they have the same states (order
        included), the same edges and the same rate expression trees —
        the key compiled-chain caches and sweep provenance use.

        The digest is memoized on the instance: every field is an
        immutable tuple, and the serving layer's batcher reads the hash
        on every admitted point, so recomputing the canonical JSON +
        SHA-256 (~20us) per lookup would tax the hot path for nothing.
        """
        cached = self.__dict__.get("_spec_hash_memo")
        if cached is not None:
            return cached
        payload = {
            "name": self.name,
            "states": [repr(s) for s in self.states],
            "edges": [
                [repr(src), repr(dst), expr.canonical()]
                for src, dst, expr in self.edges
            ],
            "initial": repr(self.initial_state),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_spec_hash_memo", digest)
        return digest

    def compile(self) -> "CompiledChain":
        """Lower the spec to a bindable :class:`CompiledChain`."""
        return CompiledChain(self)

    def describe(self) -> str:
        """Human-readable edge listing (documentation / debugging)."""
        lines = [
            f"ModelSpec {self.name!r}: {len(self.states)} states, "
            f"{len(self.edges)} edges, initial = {self.initial_state!r}",
            f"  parameters: {', '.join(self.param_names)}",
        ]
        for src, dst, expr in self.edges:
            lines.append(f"  {src!r} -> {dst!r} @ {expr.canonical()}")
        return "\n".join(lines)


class SpecBuilder:
    """Incremental :class:`ModelSpec` construction, mirroring
    :class:`~repro.core.builder.ChainBuilder`.

    States register in insertion order (``add_rate`` registers its
    endpoints, exactly like the chain builder, so a spec transcribed
    line-for-line from a legacy builder function reproduces its state
    order); rates added between the same pair of states accumulate into
    a left-nested sum, matching the builder's ``get() + rate`` order.
    """

    def __init__(self) -> None:
        self._states: List[State] = []
        self._seen: set = set()
        self._rates: Dict[Tuple[State, State], RateExpr] = {}

    def add_state(self, state: State) -> "SpecBuilder":
        """Register ``state``; idempotent."""
        if state not in self._seen:
            self._seen.add(state)
            self._states.append(state)
        return self

    def add_states(self, *states: State) -> "SpecBuilder":
        """Register several states in order."""
        for s in states:
            self.add_state(s)
        return self

    def add_rate(
        self, source: State, target: State, rate: Union[RateExpr, Number]
    ) -> "SpecBuilder":
        """Add a symbolic ``rate`` from ``source`` to ``target``."""
        if source == target:
            raise SpecError(f"self-loop on {source!r}")
        expr = RateExpr.wrap(rate)
        self.add_state(source)
        self.add_state(target)
        key = (source, target)
        existing = self._rates.get(key)
        self._rates[key] = expr if existing is None else existing + expr
        return self

    def build(
        self, name: str, initial_state: Optional[State] = None
    ) -> ModelSpec:
        """The finished spec (initial defaults to the first state)."""
        if initial_state is None:
            if not self._states:
                raise SpecError("a spec needs at least one state")
            initial_state = self._states[0]
        return ModelSpec(
            name=name,
            states=tuple(self._states),
            edges=tuple(
                (src, dst, expr) for (src, dst), expr in self._rates.items()
            ),
            initial_state=initial_state,
        )


# --------------------------------------------------------------------- #
# the compiled form
# --------------------------------------------------------------------- #


class CompiledChain:
    """A spec lowered once: fixed topology + vectorized rate kernel.

    The structure (state order, edge index arrays, initial state) is
    frozen at compile time, so — unlike a
    :class:`~repro.core.template.ChainTemplate` under a coarse memo key —
    there is nothing to re-verify per bind and nothing a vanishing rate
    can silently change: :attr:`structure_rebuilds` is 0 by construction
    and :attr:`hits` counts every rate-only re-bind the compile paid for.

    Attributes:
        spec: the source :class:`ModelSpec`.
        spec_hash: the spec's content hash (cache / provenance key).
        hits: number of ``bind``/``bind_batch`` point-bindings served by
            this compiled structure.
        structure_rebuilds: always 0 — kept as the explicit counterpart
            of :attr:`ChainStructureMemo.structure_rebuilds`.
    """

    __slots__ = (
        "spec",
        "spec_hash",
        "states",
        "edge_keys",
        "initial_state",
        "hits",
        "structure_rebuilds",
        "_exprs",
        "_index",
        "_src_idx",
        "_dst_idx",
        "_n",
        "_states_list",
    )

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        self.spec_hash = spec.spec_hash
        self.states: Tuple[State, ...] = spec.states
        self.edge_keys: Tuple[Tuple[State, State], ...] = tuple(
            (src, dst) for src, dst, _ in spec.edges
        )
        self.initial_state: State = spec.initial_state
        self._exprs: Tuple[RateExpr, ...] = tuple(
            expr for _, _, expr in spec.edges
        )
        self._states_list = list(spec.states)
        self._index: Dict[State, int] = {
            s: i for i, s in enumerate(spec.states)
        }
        self._n = len(spec.states)
        self._src_idx = np.array(
            [self._index[src] for src, _ in self.edge_keys], dtype=np.intp
        )
        self._dst_idx = np.array(
            [self._index[dst] for _, dst in self.edge_keys], dtype=np.intp
        )
        self.hits = 0
        self.structure_rebuilds = 0

    @property
    def num_states(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self.edge_keys)

    # -- rate kernel --------------------------------------------------- #

    def _check_env(self, env: Env) -> None:
        missing = [p for p in self.spec.param_names if p not in env]
        if missing:
            raise SpecError(
                f"environment for {self.spec.name!r} is missing "
                f"parameters: {', '.join(missing)}"
            )

    @staticmethod
    def _num_points(env: Env) -> int:
        length: Optional[int] = None
        for name, value in env.items():
            arr_len = getattr(value, "shape", None)
            if arr_len is None or value.shape == ():  # type: ignore[union-attr]
                continue
            (this,) = value.shape  # type: ignore[union-attr]
            if length is None:
                length = this
            elif length != this:
                raise SpecError(
                    f"environment arrays disagree on length: {name!r} has "
                    f"{this}, expected {length}"
                )
        return 1 if length is None else length

    def rate_tensor(self, env: Env) -> np.ndarray:
        """The ``(points, edges)`` rate tensor for a vector environment.

        Each environment entry is a scalar (broadcast) or a length-``P``
        array; every edge expression is evaluated once, vectorized over
        all points — the single numpy pass that replaces per-point chain
        reconstruction.  Each distinct expression is evaluated exactly
        once per call (edges sharing a rate share the computation).
        """
        self._check_env(env)
        points = self._num_points(env)
        rates = np.empty((points, len(self._exprs)), dtype=float)
        cache: Dict[RateExpr, Any] = {}
        for e, expr in enumerate(self._exprs):
            value = cache.get(expr)
            if value is None:
                value = expr.evaluate(env)
                cache[expr] = value
            rates[:, e] = value
        return rates

    # -- binding ------------------------------------------------------- #

    def bind(self, env: Env) -> CTMC:
        """One chain at a scalar operating point.

        Bitwise identical to building the same chain through
        :class:`~repro.core.builder.ChainBuilder`: each edge's rate is
        assigned once into a zero matrix and the diagonal derived by the
        same negated row sum.
        """
        self._check_env(env)
        q = np.zeros((self._n, self._n), dtype=float)
        cache: Dict[RateExpr, Any] = {}
        for e, expr in enumerate(self._exprs):
            value = cache.get(expr)
            if value is None:
                value = expr.evaluate(env)
                cache[expr] = value
            q[self._src_idx[e], self._dst_idx[e]] = value
        np.fill_diagonal(q, -q.sum(axis=1))
        self.hits += 1
        return CTMC._from_assembled(
            self._states_list, self._index, q, self.initial_state
        )

    def bind_sparse(self, env: Env) -> "SparseChain":
        """One chain at a scalar operating point, assembled as CSR.

        The sparse mirror of :meth:`bind`: the edge expressions are
        evaluated identically, but the rates scatter into a
        :class:`~repro.core.sparse.CsrMatrix` built straight from the
        compiled edge index arrays — the dense ``(n, n)`` generator is
        never materialized, so specs whose state spaces exceed the dense
        memory ceiling still bind in ``O(edges)``.  Zero-valued rates
        keep their stored entry (the topology stays fixed across
        operating points, exactly as in the dense binds).
        """
        from .sparse import CsrMatrix, SparseChain

        self._check_env(env)
        rates = self.rate_tensor(env)
        csr = CsrMatrix.from_coo(
            self._src_idx, self._dst_idx, rates[0], (self._n, self._n)
        )
        self.hits += 1
        return SparseChain(
            csr,
            initial_index=self._index[self.initial_state],
            states=self._states_list,
        )

    def bind_batch(self, env: Env) -> List[CTMC]:
        """One chain per lattice point, assembled as a stacked tensor.

        The whole ``(P, n, n)`` generator stack is built in one numpy
        pass (rate tensor, scatter, diagonal) and sliced into chains
        whose matrices are bitwise identical to ``P`` separate
        :meth:`bind` calls — ready for
        :meth:`~repro.core.ctmc.CTMC.stacked_absorption_system` and the
        batched GTH solve.
        """
        rates = self.rate_tensor(env)
        points = rates.shape[0]
        q = np.zeros((points, self._n, self._n), dtype=float)
        q[:, self._src_idx, self._dst_idx] = rates
        diag = np.arange(self._n)
        q[:, diag, diag] = -q.sum(axis=2)
        self.hits += points
        chains = []
        for i in range(points):
            q_i = q[i]
            q_i.setflags(write=False)
            chains.append(
                CTMC._from_assembled(
                    self._states_list, self._index, q_i, self.initial_state
                )
            )
        return chains

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledChain({self.spec.name!r}, states={self._n}, "
            f"edges={len(self.edge_keys)}, hash={self.spec_hash[:12]})"
        )


class CompiledSpecCache:
    """Content-addressed cache of compiled chains, keyed by spec hash.

    This replaces caller-invented memo keys: the key *is* the structure,
    so a hit can be trusted after one cheap hash comparison — and that
    comparison is still made on every lookup, so a poisoned or stale
    entry (a compiled chain stored under a hash it does not match) is
    detected and recompiled rather than binding the wrong topology.

    Attributes:
        hits / misses: lookup counters.
        structure_rebuilds: recompiles forced by mismatched entries
            (0 in any healthy run).

    All three are read-through properties over the ``core.spec_cache.*``
    counters in :attr:`metrics` (see :mod:`repro.obs`), so every sweep's
    compiled-spec behavior lands in the flat metrics export.
    """

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self._chains: Dict[str, CompiledChain] = {}
        self.metrics = metrics if metrics is not None else Metrics()
        self._hits = self.metrics.counter("core.spec_cache.hits")
        self._misses = self.metrics.counter("core.spec_cache.misses")
        self._rebuilds = self.metrics.counter(
            "core.spec_cache.structure_rebuilds"
        )

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def structure_rebuilds(self) -> int:
        return self._rebuilds.value

    @structure_rebuilds.setter
    def structure_rebuilds(self, value: int) -> None:
        self._rebuilds.value = value

    def __len__(self) -> int:
        return len(self._chains)

    def get_or_compile(self, spec: ModelSpec) -> CompiledChain:
        """The compiled chain for ``spec``, compiling at most once."""
        key = spec.spec_hash
        entry = self._chains.get(key)
        if entry is not None:
            if entry.spec_hash == key:
                self.hits += 1
                return entry
            # A stored chain that does not match its own key can only be
            # damage (or deliberate poisoning); recompile from the spec.
            self.structure_rebuilds += 1
        else:
            self.misses += 1
        entry = spec.compile()
        self._chains[key] = entry
        return entry

    def hashes(self) -> Tuple[str, ...]:
        """The spec hashes currently cached, sorted (provenance)."""
        return tuple(sorted(self._chains))

    def clear(self) -> None:
        self._chains.clear()
        self.hits = 0
        self.misses = 0
        self.structure_rebuilds = 0

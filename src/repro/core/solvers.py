"""The solver-strategy interface: one way to solve a chain, many backends.

Everything in the repo that needs a steady-state or absorption solve —
:meth:`CTMC.solve <repro.core.ctmc.CTMC.solve>`, the sweep engine's
batched paths, :func:`repro.evaluate`, the serving layer's batcher —
builds a :class:`SolveRequest` and hands it to :func:`solve`, which
dispatches to a :class:`SolverBackend`:

* ``dense_gth`` — the existing stacked, subtraction-free GTH
  elimination on dense generators (bitwise identical to the pre-API
  code paths; the default for the paper's nine small families);
* ``sparse_iterative`` — the :mod:`repro.core.sparse` kernels on CSR
  storage: direct sparse elimination with iterative refinement for
  MTTDL, power iteration for stationary queries, uniformization for
  non-stiff absorption — the backend that takes chains past the dense
  ``(n, n)`` memory ceiling;
* ``closed_form`` — the paper's closed-form approximations, supplied by
  the caller as a thunk (the backend runs and tags it, keeping the
  method taxonomy in one place).

Backend choice is an explicit :class:`SolveOptions` field with an
``"auto"`` default that picks by state count, and the options carry a
stable digest (:meth:`SolveOptions.cache_key`) so non-default choices
flow into sweep/serve cache keys without perturbing existing keys —
default options hash to the absence of an override, exactly like the
``extra=None`` convention in :func:`repro.engine.keys.point_key`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .. import obs
from .ctmc import CTMC, AbsorptionResult, CTMCError, NotAbsorbingError
from .linalg import gth_fundamental_matrix, gth_solve_batched
from .sparse import (
    SparseChain,
    power_stationary,
    sparse_gth_factorize,
    uniformized_mttdl,
)

__all__ = [
    "BACKENDS",
    "ClosedFormBackend",
    "DEFAULT_SOLVE_OPTIONS",
    "DenseGthBackend",
    "SolveOptions",
    "SolveRequest",
    "SolveResult",
    "SolverBackend",
    "SolverError",
    "SparseIterativeBackend",
    "get_backend",
    "select_backend",
    "solve",
]


class SolverError(CTMCError):
    """Raised for invalid solve requests or backend/query mismatches."""


#: ``"monte_carlo"`` is a valid :class:`SolveOptions` backend so the whole
#: method choice can travel in one options value, but it is dispatched by
#: :func:`repro.evaluate` to the simulator — it is not a chain-solve
#: backend and has no entry in :data:`BACKENDS`.
_BACKEND_NAMES = (
    "auto",
    "dense_gth",
    "sparse_iterative",
    "closed_form",
    "monte_carlo",
)
_QUERIES = ("mttdl", "absorption", "stationary")
_RATES_METHODS = ("approx", "exact")
_SPARSE_ALGORITHMS = ("auto", "elimination", "uniformization")


def _stable_digest(payload: object) -> str:
    """Canonical-JSON SHA-256, the same convention as
    :func:`repro.engine.keys.stable_digest` (duplicated here so the core
    layer stays import-free of the engine)."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SolveOptions:
    """Every solve-shaping knob, in one frozen, hashable bag.

    This collapses the kwargs that used to be scattered across call
    sites (``method=`` aliases on :func:`repro.evaluate`, the internal
    array-rates method, per-call iterative tolerances) into a single
    value that travels with the request and folds into cache keys.

    Attributes:
        backend: ``"auto"`` (pick by state count), ``"dense_gth"``,
            ``"sparse_iterative"`` or ``"closed_form"``.
        rates_method: how internal-RAID array rates are derived —
            ``"approx"`` (the paper's closed forms, the default
            everywhere) or ``"exact"`` (embedded-chain solve).
        sparse_algorithm: MTTDL kernel for the sparse backend —
            ``"auto"``/``"elimination"`` (direct sparse GTH, exact for
            stiff chains) or ``"uniformization"`` (truncated series,
            non-stiff chains only).
        tolerance: declared convergence/residual tolerance for the
            iterative kernels (relative).
        max_iterations: iteration cap for the iterative kernels.
        dense_state_limit: the ``"auto"`` crossover — chains with more
            states than this are routed to the sparse backend.
    """

    backend: str = "auto"
    rates_method: str = "approx"
    sparse_algorithm: str = "auto"
    tolerance: float = 1e-9
    max_iterations: int = 1_000_000
    dense_state_limit: int = 4096

    def __post_init__(self) -> None:
        if self.backend not in _BACKEND_NAMES:
            raise SolverError(
                f"unknown backend {self.backend!r}; "
                f"use one of {', '.join(_BACKEND_NAMES)}"
            )
        if self.rates_method not in _RATES_METHODS:
            raise SolverError(
                f"unknown rates_method {self.rates_method!r}; "
                f"use one of {', '.join(_RATES_METHODS)}"
            )
        if self.sparse_algorithm not in _SPARSE_ALGORITHMS:
            raise SolverError(
                f"unknown sparse_algorithm {self.sparse_algorithm!r}; "
                f"use one of {', '.join(_SPARSE_ALGORITHMS)}"
            )
        if not self.tolerance > 0:
            raise SolverError("tolerance must be > 0")
        if self.max_iterations < 1:
            raise SolverError("max_iterations must be >= 1")
        if self.dense_state_limit < 1:
            raise SolverError("dense_state_limit must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready field mapping (canonical key order by name)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SolveOptions":
        """Construct from a field mapping, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SolverError(
                f"unknown solve option(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**payload)  # type: ignore[arg-type]

    def replace(self, **changes: object) -> "SolveOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def is_default(self) -> bool:
        """Whether these are exactly the default options — the case that
        must leave every existing cache key untouched."""
        return self == DEFAULT_SOLVE_OPTIONS

    def cache_key(self) -> str:
        """Stable digest of the options, for cache-key composition."""
        return _stable_digest(self.to_dict())


#: The options every legacy call site implicitly used: auto backend,
#: approx array rates.  ``SolveOptions()`` equals this by construction.
DEFAULT_SOLVE_OPTIONS = SolveOptions()


@dataclass(frozen=True)
class SolveRequest:
    """One solve, fully described.

    Exactly one payload style applies per request: a batch of dense
    ``chains``, a single ``sparse`` chain, or a ``closed_form`` thunk.

    Attributes:
        chains: dense chains to solve (batched; structurally-identical
            members are grouped and stacked by the dense backend).
        sparse: a :class:`~repro.core.sparse.SparseChain` payload.
        query: ``"mttdl"`` (mean time to absorption, per chain),
            ``"absorption"`` (full per-state analysis, single chain) or
            ``"stationary"`` (stationary distribution, single chain).
        options: the :class:`SolveOptions` governing backend choice and
            iterative tolerances.
        closed_form: thunk returning the values directly; the
            ``closed_form`` backend's payload (kept as a callable so the
            core layer needs no knowledge of the paper's formulas).
    """

    chains: Tuple[CTMC, ...] = ()
    sparse: Optional[SparseChain] = None
    query: str = "mttdl"
    options: SolveOptions = field(default_factory=lambda: DEFAULT_SOLVE_OPTIONS)
    closed_form: Optional[Callable[[], Sequence[float]]] = None

    def __post_init__(self) -> None:
        if self.query not in _QUERIES:
            raise SolverError(
                f"unknown query {self.query!r}; use one of "
                f"{', '.join(_QUERIES)}"
            )
        payloads = (
            bool(self.chains)
            + (self.sparse is not None)
            + (self.closed_form is not None)
        )
        if payloads != 1:
            raise SolverError(
                "a SolveRequest needs exactly one payload: chains, "
                "sparse, or closed_form"
            )

    @property
    def num_points(self) -> int:
        """Solves requested (chains in the batch; 1 for other payloads)."""
        return len(self.chains) if self.chains else 1

    @property
    def max_states(self) -> int:
        """Largest state count across the payload (0 for closed form)."""
        if self.sparse is not None:
            return self.sparse.num_states
        if self.chains:
            return max(c.num_states for c in self.chains)
        return 0


@dataclass(frozen=True)
class SolveResult:
    """What a backend returns, uniformly across backends and queries.

    Attributes:
        values: the query's scalar answers — per-chain MTTDL for
            ``"mttdl"``, the single MTTDL for ``"absorption"``, the
            per-state probabilities for ``"stationary"``.
        backend: name of the backend that actually ran (an ``"auto"``
            request reports its resolution here).
        query: the request's query, echoed.
        iterations: iterations spent by iterative kernels (0 = direct).
        converged: whether the declared tolerance was met (always True
            for the direct backends).
        residual: final relative residual / tail estimate of the
            iterative kernels (0.0 for the direct backends).
        absorption: the full :class:`~repro.core.ctmc.AbsorptionResult`
            for ``"absorption"`` queries.
        distribution: label -> probability for ``"stationary"`` queries.
    """

    values: Tuple[float, ...]
    backend: str
    query: str
    iterations: int = 0
    converged: bool = True
    residual: float = 0.0
    absorption: Optional[AbsorptionResult] = None
    distribution: Optional[Dict[object, float]] = None


class SolverBackend:
    """The strategy protocol: a named way to execute a
    :class:`SolveRequest`.

    Implementations must set :attr:`name` and implement :meth:`solve`;
    they are registered in :data:`BACKENDS` and reached through
    :func:`solve` (direct instantiation is for tests).
    """

    name: str = "abstract"

    def solve(self, request: SolveRequest) -> SolveResult:
        raise NotImplementedError


# --------------------------------------------------------------------- #
# dense GTH backend
# --------------------------------------------------------------------- #


class DenseGthBackend(SolverBackend):
    """The repo's original solver: stacked dense GTH elimination.

    Every arithmetic step is the pre-API code moved verbatim — grouping
    by structure signature, one stacked assembly, one batched
    subtraction-free elimination — so the floats (and the golden
    baselines pinned on them) are bitwise unchanged.
    """

    name = "dense_gth"

    def solve(self, request: SolveRequest) -> SolveResult:
        chains = self._dense_chains(request)
        if request.query == "mttdl":
            return SolveResult(
                values=tuple(self._mttdl_batched(chains)),
                backend=self.name,
                query=request.query,
            )
        if request.query == "absorption":
            chain = self._single(chains, request.query)
            absorption = self._absorb(chain)
            return SolveResult(
                values=(absorption.mttdl,),
                backend=self.name,
                query=request.query,
                absorption=absorption,
            )
        chain = self._single(chains, request.query)
        distribution = self._stationary(chain)
        return SolveResult(
            values=tuple(distribution.values()),
            backend=self.name,
            query=request.query,
            distribution=distribution,
        )

    # -- payload handling --------------------------------------------- #

    @staticmethod
    def _dense_chains(request: SolveRequest) -> List[CTMC]:
        if request.closed_form is not None:
            raise SolverError(
                "the dense_gth backend solves chains, not closed forms"
            )
        if request.sparse is not None:
            # The materialization guard is the refusal the sparse
            # backend exists for; it raises with the estimated bytes.
            return [request.sparse.to_ctmc()]
        return list(request.chains)

    @staticmethod
    def _single(chains: List[CTMC], query: str) -> CTMC:
        if len(chains) != 1:
            raise SolverError(
                f"query {query!r} takes exactly one chain, "
                f"got {len(chains)}"
            )
        return chains[0]

    # -- kernels (moved verbatim from the pre-API call sites) ---------- #

    @staticmethod
    def _mttdl_batched(chains: Sequence[CTMC]) -> List[float]:
        """Mean time to absorption of many chains, batching by structure.

        Chains are grouped by (state order, transient/absorbing
        partition, initial state); each group is stacked and solved in
        one batched GTH elimination.  Every returned float is bitwise
        equal to the chain's own
        :meth:`~repro.core.ctmc.CTMC.mean_time_to_absorption`.
        """
        results: List[Optional[float]] = [None] * len(chains)
        groups: Dict[Tuple, List[int]] = {}
        for i, chain in enumerate(chains):
            absorbing = chain.absorbing_states()
            if chain.initial_state in absorbing:
                results[i] = 0.0
                continue
            signature = (
                chain.states,
                chain.transient_states(),
                absorbing,
                chain.initial_state,
            )
            groups.setdefault(signature, []).append(i)
        for signature, members in groups.items():
            with obs.span(
                "solve.gth", states=len(signature[0]), points=len(members)
            ):
                transient = list(signature[1])
                init_pos = transient.index(signature[3])
                a, b, _ = CTMC.stacked_absorption_system(
                    [chains[i] for i in members]
                )
                n = a.shape[1]
                rhs = np.broadcast_to(np.eye(n), (len(members), n, n)).copy()
                fundamental = gth_solve_batched(a, b, rhs)
                taus = fundamental[:, init_pos, :]
                for j, i in enumerate(members):
                    results[i] = float(taus[j].sum())
        return results  # type: ignore[return-value]

    @staticmethod
    def _absorb(chain: CTMC) -> AbsorptionResult:
        """Full absorption analysis from the initial state (the body of
        the pre-API ``CTMC.absorb``, float for float)."""
        transient = list(chain.transient_states())
        absorbing = list(chain.absorbing_states())
        if not absorbing:
            raise NotAbsorbingError("chain has no absorbing states")
        if chain.initial_state in absorbing:
            return AbsorptionResult(
                mttdl=0.0,
                expected_times={s: 0.0 for s in transient},
                absorption_probabilities={
                    s: 1.0 if s == chain.initial_state else 0.0
                    for s in absorbing
                },
            )
        off_diagonal, absorb_rates, rates_to_absorbing = (
            chain.absorption_system()
        )
        try:
            fundamental = gth_fundamental_matrix(off_diagonal, absorb_rates)
        except ValueError as exc:
            raise NotAbsorbingError(str(exc)) from exc
        tau = fundamental[transient.index(chain.initial_state)]

        probs = tau @ rates_to_absorbing
        probs = probs / probs.sum()

        return AbsorptionResult(
            mttdl=float(tau.sum()),
            expected_times=dict(zip(transient, map(float, tau))),
            absorption_probabilities=dict(zip(absorbing, map(float, probs))),
        )

    @staticmethod
    def _stationary(chain: CTMC) -> Dict[object, float]:
        """Stationary distribution by dense GTH elimination (the body of
        the pre-API ``CTMC.stationary_distribution``)."""
        if chain.absorbing_states():
            raise CTMCError(
                "stationary distribution undefined for chains with "
                "absorbing states; use with_renewal() to close the chain"
            )
        n = chain.num_states
        states = chain.states
        if n == 1:
            return {states[0]: 1.0}
        # GTH for stationary vectors: eliminate states n-1 .. 1 with the
        # diagonal re-derived from off-diagonal sums (no subtraction).
        a = chain.generator_matrix()
        np.fill_diagonal(a, 0.0)
        for p in range(n - 1, 0, -1):
            total = a[p, :p].sum()
            if total <= 0:
                raise CTMCError(
                    f"state {states[p]!r} cannot reach lower-indexed "
                    "states; reorder states or check irreducibility"
                )
            a[:p, :p] += np.outer(a[:p, p] / total, a[p, :p])
        pi = np.zeros(n)
        pi[0] = 1.0
        for p in range(1, n):
            total = a[p, :p].sum()
            pi[p] = (pi[:p] @ a[:p, p]) / total
        pi /= pi.sum()
        return dict(zip(states, map(float, pi)))


# --------------------------------------------------------------------- #
# sparse iterative backend
# --------------------------------------------------------------------- #

#: Iterative-refinement passes after the direct sparse elimination; the
#: factorization is componentwise accurate, so one pass almost always
#: certifies the declared tolerance.
_MAX_REFINEMENT_PASSES = 5


class SparseIterativeBackend(SolverBackend):
    """CSR kernels for chains past the dense memory ceiling.

    MTTDL queries run the direct sparse GTH elimination and then certify
    ``options.tolerance`` with iterative refinement (reporting the final
    relative residual); ``sparse_algorithm="uniformization"`` selects
    the truncated-series kernel instead (non-stiff chains only).
    Stationary queries run power iteration on the uniformized DTMC.
    Full ``"absorption"`` analyses are a dense-backend feature — the
    per-state tau vector is only needed at paper scale.
    """

    name = "sparse_iterative"

    def solve(self, request: SolveRequest) -> SolveResult:
        if request.closed_form is not None:
            raise SolverError(
                "the sparse_iterative backend solves chains, not closed "
                "forms"
            )
        if request.query == "absorption":
            raise SolverError(
                "full absorption analysis (per-state expected times) is a "
                "dense_gth feature; sparse chains answer 'mttdl' and "
                "'stationary' queries"
            )
        sparse_chains = (
            [request.sparse]
            if request.sparse is not None
            else [SparseChain.from_ctmc(c) for c in request.chains]
        )
        options = request.options
        if request.query == "stationary":
            chain = sparse_chains[0]
            if len(sparse_chains) != 1:
                raise SolverError(
                    "query 'stationary' takes exactly one chain"
                )
            pi, iterations, change, converged = power_stationary(
                chain,
                tolerance=options.tolerance,
                max_iterations=options.max_iterations,
            )
            labels = [chain.label(i) for i in range(chain.num_states)]
            return SolveResult(
                values=tuple(map(float, pi)),
                backend=self.name,
                query=request.query,
                iterations=iterations,
                converged=converged,
                residual=change,
                distribution=dict(zip(labels, map(float, pi))),
            )
        values: List[float] = []
        iterations = 0
        residual = 0.0
        converged = True
        for chain in sparse_chains:
            mttdl, its, res, conv = self._mttdl(chain, options)
            values.append(mttdl)
            iterations += its
            residual = max(residual, res)
            converged = converged and conv
        return SolveResult(
            values=tuple(values),
            backend=self.name,
            query=request.query,
            iterations=iterations,
            converged=converged,
            residual=residual,
        )

    @staticmethod
    def _mttdl(
        chain: SparseChain, options: SolveOptions
    ) -> Tuple[float, int, float, bool]:
        a, b, _, init_pos = chain.transient_system()
        if init_pos < 0:
            return 0.0, 0, 0.0, True
        if options.sparse_algorithm == "uniformization":
            mttdl, its, tail, conv = uniformized_mttdl(
                a,
                b,
                init_pos,
                tolerance=options.tolerance,
                max_iterations=options.max_iterations,
            )
            return mttdl, its, tail, conv
        # Direct elimination + iterative refinement.  x solves R x = 1:
        # x[i] is the mean time to absorption from transient state i.
        with obs.span(
            "solve.sparse.gth", states=chain.num_states, nnz=chain.nnz
        ):
            try:
                factors = sparse_gth_factorize(a, b)
            except ValueError as exc:
                raise NotAbsorbingError(str(exc)) from exc
            rhs = np.ones(a.shape[0])
            x = factors.solve(rhs)
        diag = a.row_sums() + b
        passes = 0
        residual = np.inf
        for passes in range(_MAX_REFINEMENT_PASSES + 1):
            flow = a.matvec(x)
            scale = diag * x + flow + rhs
            r = rhs - (diag * x - flow)
            residual = float(np.max(np.abs(r) / scale))
            if residual <= options.tolerance:
                return float(x[init_pos]), passes, residual, True
            x = x + factors.solve(r)
        return float(x[init_pos]), passes, residual, False


# --------------------------------------------------------------------- #
# closed-form backend
# --------------------------------------------------------------------- #


class ClosedFormBackend(SolverBackend):
    """Runs a caller-supplied closed-form thunk under the solver API.

    The paper's approximation formulas live in :mod:`repro.models`; the
    core layer cannot import them, so the request carries the evaluation
    as a callable and this backend supplies the uniform result shape.
    """

    name = "closed_form"

    def solve(self, request: SolveRequest) -> SolveResult:
        if request.closed_form is None:
            raise SolverError(
                "the closed_form backend needs a closed_form thunk on "
                "the request"
            )
        values = tuple(float(v) for v in request.closed_form())
        return SolveResult(
            values=values, backend=self.name, query=request.query
        )


# --------------------------------------------------------------------- #
# registry and dispatch
# --------------------------------------------------------------------- #

#: The registered strategies, by name.
BACKENDS: Dict[str, SolverBackend] = {
    backend.name: backend
    for backend in (
        DenseGthBackend(),
        SparseIterativeBackend(),
        ClosedFormBackend(),
    )
}


def get_backend(name: str) -> SolverBackend:
    """The registered backend called ``name``."""
    try:
        return BACKENDS[name]
    except KeyError:
        if name == "monte_carlo":
            raise SolverError(
                "'monte_carlo' is not a chain-solve backend; it is "
                "dispatched by repro.evaluate(options=...) to the "
                "simulator in repro.sim"
            ) from None
        raise SolverError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(sorted(BACKENDS))}"
        ) from None


def select_backend(request: SolveRequest) -> SolverBackend:
    """Resolve the request's backend, applying the ``"auto"`` policy.

    Explicit choices are honored as-is.  ``"auto"`` picks:

    * ``closed_form`` when the payload is a closed-form thunk,
    * ``sparse_iterative`` for sparse payloads and for dense batches
      whose largest chain exceeds ``options.dense_state_limit``,
    * ``dense_gth`` otherwise (the paper's nine families).
    """
    name = request.options.backend
    if name != "auto":
        return get_backend(name)
    if request.closed_form is not None:
        return BACKENDS["closed_form"]
    if request.sparse is not None:
        return BACKENDS["sparse_iterative"]
    if request.max_states > request.options.dense_state_limit:
        return BACKENDS["sparse_iterative"]
    return BACKENDS["dense_gth"]


def solve(request: SolveRequest) -> SolveResult:
    """Execute ``request`` on its (auto-)selected backend.

    The single entry point every solve in the repo goes through; emits
    one ``solve.backend`` span carrying the resolved backend, the query
    and the batch size, so traces show which strategy answered what.
    """
    backend = select_backend(request)
    with obs.span(
        "solve.backend",
        backend=backend.name,
        query=request.query,
        points=request.num_points,
        states=request.max_states,
    ):
        return backend.solve(request)

"""Sparse chain representation and scipy-free solver kernels.

The dense :class:`~repro.core.ctmc.CTMC` stores its generator as an
``(n, n)`` float matrix, which caps the repo at chains of a few thousand
states (a 120k-state generator would need ~115 GB).  This module is the
sparse counterpart behind :mod:`repro.core.solvers`:

* :class:`CsrMatrix` — a minimal compressed-sparse-row matrix built from
  numpy index/value arrays and the stdlib only (no scipy.sparse);
* :class:`SparseChain` — a chain whose off-diagonal rates live in a
  :class:`CsrMatrix`, convertible to/from :class:`CTMC` below a guarded
  materialization limit;
* :func:`build_indirect` — the ``discreteMarkovChain`` idiom: grow the
  state space by repeatedly applying a transition *function* to unvisited
  states from an initial state, deduplicating as it goes — the chain
  never has to be enumerated up front, which is what unlocks
  fleet-scale state spaces far beyond the paper's nine families;
* the sparse kernels the ``sparse_iterative`` backend dispatches to:
  :func:`sparse_gth_factorize` (direct, subtraction-free elimination on
  the sparse structure — exact for arbitrarily stiff chains),
  :func:`power_stationary` (power iteration on the uniformized DTMC) and
  :func:`uniformized_mttdl` (truncated uniformization series for mean
  absorption time on *non-stiff* chains).

Stiffness note: a reliability chain absorbs with probability ~``lambda/mu``
per uniformized jump, so any pure iteration (power method, Jacobi,
uniformization) needs ~``mu/lambda`` iterations to see absorption — 1e10+
at the paper's operating points.  Mean-absorption-time queries therefore
default to the *direct* sparse GTH elimination (componentwise accurate,
independent of conditioning, fill-in bounded by the chain's bandwidth),
with iterative refinement supplying a declared residual tolerance; the
genuinely iterative kernels serve stationary/transient queries and
fast-mixing chains, where they shine at scale.
"""

from __future__ import annotations

import math
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .ctmc import CTMC, CTMCError, NotAbsorbingError, Transition

__all__ = [
    "CsrMatrix",
    "DENSE_MATERIALIZE_LIMIT",
    "SparseChain",
    "SparseGthFactors",
    "build_indirect",
    "power_stationary",
    "sparse_gth_factorize",
    "uniformized_mttdl",
]

State = Hashable

#: Largest state count :meth:`SparseChain.to_ctmc` will materialize as a
#: dense generator (8 * limit**2 bytes; 8192 states is ~512 MB).  The
#: dense GTH backend refuses anything larger — that refusal is the
#: boundary the sparse backend exists to cross.
DENSE_MATERIALIZE_LIMIT = 8192


class CsrMatrix:
    """A compressed-sparse-row float matrix: numpy arrays + stdlib only.

    Rows are stored as ``indices[indptr[i]:indptr[i+1]]`` (column ids)
    and ``data[indptr[i]:indptr[i+1]]`` (values).  Only the operations
    the solver kernels need are implemented — row slicing, ``A @ x``,
    ``x @ A`` and per-row sums — so there is no scipy dependency to gate.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.intp)
        self.indices = np.asarray(indices, dtype=np.intp)
        self.data = np.asarray(data, dtype=float)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.shape != (self.shape[0] + 1,):
            raise ValueError("indptr length must be rows + 1")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have equal length")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")

    @classmethod
    def from_coo(
        cls,
        rows: Sequence[int],
        cols: Sequence[int],
        values: Sequence[float],
        shape: Tuple[int, int],
    ) -> "CsrMatrix":
        """Build from coordinate triples; duplicate entries are summed."""
        rows_a = np.asarray(rows, dtype=np.intp)
        cols_a = np.asarray(cols, dtype=np.intp)
        vals_a = np.asarray(values, dtype=float)
        if not (rows_a.shape == cols_a.shape == vals_a.shape):
            raise ValueError("rows, cols and values must have equal length")
        order = np.lexsort((cols_a, rows_a))
        rows_a, cols_a, vals_a = rows_a[order], cols_a[order], vals_a[order]
        if len(rows_a):
            # Collapse duplicates: sum runs of identical (row, col).
            new_run = np.empty(len(rows_a), dtype=bool)
            new_run[0] = True
            new_run[1:] = (np.diff(rows_a) != 0) | (np.diff(cols_a) != 0)
            starts = np.flatnonzero(new_run)
            sums = np.add.reduceat(vals_a, starts)
            rows_a, cols_a, vals_a = rows_a[starts], cols_a[starts], sums
        indptr = np.zeros(shape[0] + 1, dtype=np.intp)
        np.add.at(indptr, rows_a + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols_a, vals_a, shape)

    @property
    def nnz(self) -> int:
        """Stored entries."""
        return int(len(self.data))

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column indices, values)`` of row ``i`` (views, not copies)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_sums(self) -> np.ndarray:
        """Per-row sum of stored values."""
        csum = np.concatenate(([0.0], np.cumsum(self.data)))
        return csum[self.indptr[1:]] - csum[self.indptr[:-1]]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``."""
        prod = self.data * np.asarray(x, dtype=float)[self.indices]
        csum = np.concatenate(([0.0], np.cumsum(prod)))
        return csum[self.indptr[1:]] - csum[self.indptr[:-1]]

    def vecmat(self, x: np.ndarray) -> np.ndarray:
        """``x @ A`` (the propagation direction of distribution vectors)."""
        counts = np.diff(self.indptr)
        contrib = np.repeat(np.asarray(x, dtype=float), counts) * self.data
        return np.bincount(
            self.indices, weights=contrib, minlength=self.shape[1]
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small matrices / tests only)."""
        out = np.zeros(self.shape, dtype=float)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.intp), np.diff(self.indptr)
        )
        np.add.at(out, (rows, self.indices), self.data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"


class SparseChain:
    """A CTMC whose off-diagonal rates live in a :class:`CsrMatrix`.

    The diagonal is implicit (negated row sum), exactly as in the GTH
    convention; absorbing states are rows with no stored entries.
    State labels are optional — chains grown by :func:`build_indirect`
    keep their labels for reporting, while synthetic benchmark chains
    can stay anonymous (indices only).

    Args:
        rates: ``(n, n)`` off-diagonal rate matrix; entries must be
            non-negative with an empty diagonal.
        initial_index: row index of the fully-operational start state.
        states: optional state labels, index-aligned.
    """

    __slots__ = ("rates", "initial_index", "states", "_exit")

    def __init__(
        self,
        rates: CsrMatrix,
        initial_index: int = 0,
        states: Optional[Sequence[State]] = None,
    ) -> None:
        n, m = rates.shape
        if n != m:
            raise CTMCError("a chain's rate matrix must be square")
        if n == 0:
            raise CTMCError("a chain needs at least one state")
        if not 0 <= initial_index < n:
            raise CTMCError(f"initial index {initial_index} out of range")
        if np.any(rates.data < 0):
            raise CTMCError("negative transition rate in sparse chain")
        row_of = np.repeat(np.arange(n, dtype=np.intp), np.diff(rates.indptr))
        if np.any(row_of == rates.indices):
            raise CTMCError("self-loop transition in sparse chain")
        self.rates = rates
        self.initial_index = int(initial_index)
        self.states: Optional[Tuple[State, ...]] = (
            tuple(states) if states is not None else None
        )
        if self.states is not None and len(self.states) != n:
            raise CTMCError("state labels do not match the matrix size")
        self._exit = rates.row_sums()
        self._exit.setflags(write=False)

    # -- structure ----------------------------------------------------- #

    @property
    def num_states(self) -> int:
        return self.rates.shape[0]

    @property
    def nnz(self) -> int:
        """Stored transitions."""
        return self.rates.nnz

    @property
    def exit_rates(self) -> np.ndarray:
        """Total rate out of each state (read-only)."""
        return self._exit

    def absorbing_mask(self) -> np.ndarray:
        """Boolean mask of states with no outgoing transitions."""
        return self._exit == 0.0

    def label(self, index: int) -> State:
        """The state label at ``index`` (the index itself if unlabeled)."""
        return self.states[index] if self.states is not None else index

    def dense_bytes(self) -> int:
        """Memory a dense float64 generator of this chain would need."""
        return 8 * self.num_states * self.num_states

    # -- conversions --------------------------------------------------- #

    @classmethod
    def from_ctmc(cls, chain: CTMC) -> "SparseChain":
        """The sparse view of a dense chain (same state order)."""
        q = chain.generator_matrix()
        np.fill_diagonal(q, 0.0)
        rows, cols = np.nonzero(q)
        csr = CsrMatrix.from_coo(
            rows, cols, q[rows, cols], (chain.num_states, chain.num_states)
        )
        return cls(
            csr,
            initial_index=chain.index_of(chain.initial_state),
            states=chain.states,
        )

    def to_ctmc(
        self, dense_limit: int = DENSE_MATERIALIZE_LIMIT
    ) -> CTMC:
        """Materialize as a dense :class:`CTMC`.

        Raises:
            CTMCError: when the chain exceeds ``dense_limit`` states —
                the guard that keeps fleet-scale chains from silently
                allocating an ``n**2`` generator.
        """
        n = self.num_states
        if n > dense_limit:
            raise CTMCError(
                f"refusing to materialize a dense generator for "
                f"{n} states (~{self.dense_bytes() / 1e9:.1f} GB); "
                f"the dense limit is {dense_limit} states — solve this "
                "chain through the sparse_iterative backend instead"
            )
        labels: Sequence[State] = (
            self.states if self.states is not None else tuple(range(n))
        )
        transitions = []
        for i in range(n):
            cols, vals = self.rates.row(i)
            for j, r in zip(cols, vals):
                if r > 0.0:
                    transitions.append(
                        Transition(labels[i], labels[int(j)], float(r))
                    )
        return CTMC(
            labels, transitions, initial_state=labels[self.initial_index]
        )

    # -- solver-facing views ------------------------------------------- #

    def transient_system(
        self,
    ) -> Tuple[CsrMatrix, np.ndarray, np.ndarray, int]:
        """The absorption system in transient order.

        Returns ``(A, b, transient_indices, init_pos)``: the
        transient-to-transient off-diagonal rates as a CSR matrix in
        transient-state order, the total rate from each transient state
        into the absorbing set, the original indices of the transient
        states, and the initial state's position among them — the sparse
        mirror of :meth:`repro.core.ctmc.CTMC.absorption_system`.

        Raises:
            NotAbsorbingError: if the chain has no absorbing state or
                the initial state is absorbing-free context requires it.
        """
        absorbing = self.absorbing_mask()
        if not absorbing.any():
            raise NotAbsorbingError("chain has no absorbing states")
        transient_idx = np.flatnonzero(~absorbing)
        if len(transient_idx) == 0:
            raise NotAbsorbingError("chain has no transient states")
        new_pos = np.full(self.num_states, -1, dtype=np.intp)
        new_pos[transient_idx] = np.arange(len(transient_idx), dtype=np.intp)
        if absorbing[self.initial_index]:
            init_pos = -1
        else:
            init_pos = int(new_pos[self.initial_index])
        n_t = len(transient_idx)
        b = np.zeros(n_t, dtype=float)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for t_new, t_old in enumerate(transient_idx):
            c, v = self.rates.row(int(t_old))
            for j, r in zip(c, v):
                if absorbing[j]:
                    b[t_new] += r
                else:
                    rows.append(t_new)
                    cols.append(int(new_pos[j]))
                    vals.append(float(r))
        a = CsrMatrix.from_coo(rows, cols, vals, (n_t, n_t))
        return a, b, transient_idx, init_pos

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"SparseChain: {self.num_states} states, {self.nnz} "
            f"transitions ({int(self.absorbing_mask().sum())} absorbing), "
            f"dense equivalent ~{self.dense_bytes() / 1e9:.2f} GB"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseChain(states={self.num_states}, nnz={self.nnz}, "
            f"initial={self.label(self.initial_index)!r})"
        )


# --------------------------------------------------------------------- #
# the indirect builder (discreteMarkovChain idiom)
# --------------------------------------------------------------------- #

TransitionFn = Callable[
    [State],
    Union[Iterable[Tuple[State, float]], Mapping[State, float]],
]


def build_indirect(
    initial_state: State,
    transition_fn: TransitionFn,
    *,
    max_states: int = 2_000_000,
) -> SparseChain:
    """Grow a chain by repeatedly applying ``transition_fn`` to unvisited
    states, starting from ``initial_state``.

    This is the *indirect* construction method: instead of enumerating
    the state space up front, the caller supplies a function mapping a
    state to its ``(successor, rate)`` pairs, and the builder explores
    breadth-first, deduplicating states by hash — cycles terminate
    because a visited state is never expanded twice.  States for which
    ``transition_fn`` yields nothing are absorbing.

    Args:
        initial_state: the start state (any hashable label).
        transition_fn: maps a state to its successors — either a
            ``{next_state: rate}`` mapping or an iterable of
            ``(next_state, rate)`` pairs; rates must be finite and
            non-negative (zero-rate entries are dropped), self-loops are
            rejected.  Parallel entries to the same successor are
            **summed** (never last-write-wins): competing physical
            processes that happen to share a source/target pair add
            their rates.  The reduction (:meth:`CsrMatrix.from_coo`) is
            deterministic but *pairwise*, not left-nested — three or
            more duplicates may round differently from a sequential
            ``(a + b) + c``.  Callers that need an exact float-op order
            across parallel edges — e.g. for bitwise differential
            testing — should pre-merge them before yielding, as
            :func:`repro.fleet.chain.fleet_edges` does.
        max_states: exploration cap; exceeding it raises rather than
            exhausting memory on a runaway transition function.

    Returns:
        A :class:`SparseChain` whose state order is the BFS discovery
        order (initial state first).

    Raises:
        CTMCError: on invalid rates, self-loops, or a state space larger
            than ``max_states``.
    """
    index: Dict[State, int] = {initial_state: 0}
    order: List[State] = [initial_state]
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    pos = 0
    while pos < len(order):
        state = order[pos]
        i = index[state]
        successors = transition_fn(state)
        if isinstance(successors, Mapping):
            successors = successors.items()
        for target, rate in successors:
            rate = float(rate)
            if not math.isfinite(rate) or rate < 0.0:
                raise CTMCError(
                    f"transition rate from {state!r} to {target!r} must be "
                    f"finite and >= 0, got {rate!r}"
                )
            if rate == 0.0:
                continue
            if target == state:
                raise CTMCError(f"self-loop transition on state {state!r}")
            j = index.get(target)
            if j is None:
                if len(order) >= max_states:
                    raise CTMCError(
                        f"indirect build exceeded max_states={max_states}; "
                        "raise the cap or bound the transition function"
                    )
                j = len(order)
                index[target] = j
                order.append(target)
            rows.append(i)
            cols.append(j)
            vals.append(rate)
        pos += 1
    n = len(order)
    csr = CsrMatrix.from_coo(rows, cols, vals, (n, n))
    return SparseChain(csr, initial_index=0, states=order)


# --------------------------------------------------------------------- #
# direct kernel: sparse GTH elimination
# --------------------------------------------------------------------- #


class SparseGthFactors:
    """The factorized absorption system ``R = D - A`` of a sparse chain.

    Produced by :func:`sparse_gth_factorize`; :meth:`solve` applies the
    stored elimination to any right-hand side, so iterative refinement
    can reuse one factorization across residual-correction passes.

    Attributes:
        n: transient states.
        fill_nnz: off-diagonal entries in the eliminated system — the
            fill-in actually paid (equals the input nnz for banded
            chains, grows with bandwidth for entangled ones).
    """

    __slots__ = ("n", "_diag", "_lower", "_updates", "fill_nnz")

    def __init__(
        self,
        n: int,
        diag: np.ndarray,
        lower: List[Tuple[np.ndarray, np.ndarray]],
        updates: List[Tuple[np.ndarray, np.ndarray]],
        fill_nnz: int,
    ) -> None:
        self.n = n
        self._diag = diag
        self._lower = lower
        self._updates = updates
        self.fill_nnz = fill_nnz

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``R x = rhs`` with the stored factors.

        Unlike the factorization itself, the right-hand side may be
        signed (iterative refinement feeds residuals), so this step is
        ordinary triangular substitution — the subtraction-free
        guarantee applies to the factors, which is where stiffness bites.
        """
        x = np.asarray(rhs, dtype=float).copy()
        if x.shape != (self.n,):
            raise ValueError(f"rhs must have shape ({self.n},)")
        for p in range(self.n - 1, 0, -1):
            upd_is, upd_fs = self._updates[p]
            if len(upd_is):
                x[upd_is] += upd_fs * x[p]
        x[0] = x[0] / self._diag[0]
        for p in range(1, self.n):
            low_js, low_vs = self._lower[p]
            acc = x[p]
            if len(low_js):
                acc = acc + float(low_vs @ x[low_js])
            x[p] = acc / self._diag[p]
        return x


def sparse_gth_factorize(a: CsrMatrix, b: np.ndarray) -> SparseGthFactors:
    """GTH elimination of a sparse absorbing system, factors retained.

    The same subtraction-free elimination as
    :func:`repro.core.linalg.gth_solve` — pivots ``n-1 .. 1``, diagonal
    re-derived from off-diagonal sums plus the absorption rate at every
    step — carried out on dict-of-row sparse storage so only the true
    fill-in is ever touched.  Componentwise accurate for arbitrarily
    stiff chains; cost is ``O(n * bandwidth**2)``-ish, linear for the
    banded chains the indirect builder typically produces.

    Args:
        a: transient-to-transient off-diagonal rates (square CSR).
        b: per-state total rate into the absorbing set.

    Raises:
        ValueError: on negative rates or a state that cannot reach
            absorption (singular system).
    """
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("rates must be a square matrix")
    b = np.asarray(b, dtype=float).copy()
    if b.shape != (n,):
        raise ValueError("absorb must be a vector matching rates")
    if np.any(a.data < 0) or np.any(b < 0):
        raise ValueError("rates must be non-negative")

    rows: List[Dict[int, float]] = [
        dict(zip(map(int, cols), map(float, vals)))
        for cols, vals in (a.row(i) for i in range(n))
    ]
    for i, row in enumerate(rows):
        if i in row:
            raise ValueError(
                "diagonal of rates must be zero (rates are off-diagonal)"
            )
    cols_of: List[set] = [set() for _ in range(n)]
    for i, row in enumerate(rows):
        for j in row:
            cols_of[j].add(i)

    diag = np.zeros(n, dtype=float)
    lower: List[Tuple[np.ndarray, np.ndarray]] = [
        (np.empty(0, dtype=np.intp), np.empty(0, dtype=float))
    ] * n
    updates: List[Tuple[np.ndarray, np.ndarray]] = list(lower)
    fill_nnz = 0

    for p in range(n - 1, 0, -1):
        row_p = rows[p]
        low_items = [(j, v) for j, v in row_p.items() if j < p]
        d_p = sum(v for _, v in low_items) + b[p]
        if d_p <= 0:
            raise ValueError(
                f"state {p} cannot reach absorption; the system is singular"
            )
        upd_is: List[int] = []
        upd_fs: List[float] = []
        for i in sorted(cols_of[p]):
            if i >= p:
                continue
            row_i = rows[i]
            f = row_i.pop(p) / d_p
            upd_is.append(i)
            upd_fs.append(f)
            for j, v in low_items:
                if j == i:
                    # A path i -> p -> i is a self-loop of the reduced
                    # system; the implicit diagonal absorbs it (see the
                    # GTH conservation identity), so it is dropped.
                    continue
                prev = row_i.get(j)
                if prev is None:
                    row_i[j] = f * v
                    cols_of[j].add(i)
                else:
                    row_i[j] = prev + f * v
            b[i] += f * b[p]
        diag[p] = d_p
        lower[p] = (
            np.array([j for j, _ in low_items], dtype=np.intp),
            np.array([v for _, v in low_items], dtype=float),
        )
        updates[p] = (
            np.array(upd_is, dtype=np.intp),
            np.array(upd_fs, dtype=float),
        )
        fill_nnz += len(low_items)
        rows[p] = {}
        cols_of[p] = set()

    if b[0] <= 0:
        raise ValueError(
            "state 0 cannot reach absorption; the system is singular"
        )
    diag[0] = b[0]
    return SparseGthFactors(n, diag, lower, updates, fill_nnz)


# --------------------------------------------------------------------- #
# iterative kernels: power method and uniformization
# --------------------------------------------------------------------- #


def power_stationary(
    chain: SparseChain,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 1_000_000,
) -> Tuple[np.ndarray, int, float, bool]:
    """Stationary distribution by power iteration on the uniformized DTMC.

    The classic large-chain method (``discreteMarkovChain``'s default):
    iterate ``pi <- pi P`` with ``P = I + Q / Lambda`` until the L1
    change drops below ``tolerance``.  Convergence speed is set by the
    chain's mixing time, so this is the kernel of choice for fast-mixing
    fleet chains with huge state spaces — and hopeless for rare-event
    absorption, which is why MTTDL queries use the direct elimination.

    Returns:
        ``(pi, iterations, final_change, converged)`` with ``pi`` in
        state-index order.

    Raises:
        CTMCError: if the chain has absorbing states (the stationary
            distribution would be trivially concentrated there).
    """
    if chain.absorbing_mask().any():
        raise CTMCError(
            "stationary distribution undefined for chains with absorbing "
            "states; close the chain (renewal transitions) first"
        )
    n = chain.num_states
    exit_rates = chain.exit_rates
    lam = float(exit_rates.max()) * 1.05
    pi = np.full(n, 1.0 / n)
    change = math.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        flow = chain.rates.vecmat(pi)
        nxt = pi + (flow - pi * exit_rates) / lam
        nxt = np.clip(nxt, 0.0, None)
        total = nxt.sum()
        if total <= 0:
            raise CTMCError("power iteration collapsed to the zero vector")
        nxt /= total
        change = float(np.abs(nxt - pi).sum())
        pi = nxt
        if change < tolerance:
            return pi, iterations, change, True
    return pi, iterations, change, False


def uniformized_mttdl(
    a: CsrMatrix,
    b: np.ndarray,
    init_pos: int,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 1_000_000,
) -> Tuple[float, int, float, bool]:
    """Mean time to absorption by the truncated uniformization series.

    With the transient sub-chain uniformized at rate ``Lambda``, the
    survival mass after ``k`` jumps is ``m_k = ||pi_k||_1`` and
    ``E[T] = (1/Lambda) * sum_k m_k``.  The series is truncated when the
    geometric tail estimate falls below ``tolerance`` of the accumulated
    sum — a *declared* truncation error, reported back to the caller.

    Only suitable for chains whose absorption is not a rare event: the
    iteration count scales like ``Lambda * E[T]``.  The sparse backend
    exposes it as the ``"uniformization"`` algorithm; stiff reliability
    chains should use the default elimination kernel.

    Returns:
        ``(mttdl, iterations, tail_estimate, converged)``.
    """
    n = a.shape[0]
    exit_rates = a.row_sums() + np.asarray(b, dtype=float)
    lam = float(exit_rates.max()) * 1.05
    if lam <= 0:
        raise ValueError("chain has no outgoing rates")
    pi = np.zeros(n)
    pi[init_pos] = 1.0
    keep = 1.0 - exit_rates / lam
    total = 0.0
    prev_mass = 1.0
    tail = math.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        mass = float(pi.sum())
        total += mass / lam
        if mass <= 0.0:
            return total, iterations, 0.0, True
        ratio = mass / prev_mass if prev_mass > 0 else 1.0
        if ratio < 1.0:
            tail = (mass / lam) * ratio / (1.0 - ratio)
            if tail <= tolerance * max(total, 1e-300):
                return total, iterations, tail, True
        prev_mass = mass
        pi = a.vecmat(pi) / lam + pi * keep
    return total, iterations, tail, False

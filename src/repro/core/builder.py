"""Incremental construction of CTMCs.

The Markov chains in the paper are described state-by-state (Figures 1
through 10); :class:`ChainBuilder` mirrors that style: add states, add
rates, build.  It also provides the merge/relabel operations the paper's
appendix uses to construct the no-internal-RAID chain for fault tolerance
``k`` from two copies of the chain for ``k - 1``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from .ctmc import CTMC, CTMCError, Transition

__all__ = ["ChainBuilder"]

State = Hashable


class ChainBuilder:
    """Mutable builder for :class:`~repro.core.ctmc.CTMC` instances.

    States are registered in insertion order, which becomes the matrix
    order of the built chain.  Rates added between the same pair of states
    accumulate.

    Example:
        >>> b = ChainBuilder()
        >>> b.add_state("ok").add_state("degraded").add_state("lost")
        ChainBuilder(states=3, transitions=0)
        >>> _ = b.add_rate("ok", "degraded", 2.0)
        >>> _ = b.add_rate("degraded", "ok", 100.0)
        >>> _ = b.add_rate("degraded", "lost", 1.0)
        >>> chain = b.build(initial_state="ok")
        >>> chain.absorbing_states()
        ('lost',)
    """

    def __init__(self) -> None:
        self._states: List[State] = []
        self._seen: set = set()
        self._rates: Dict[Tuple[State, State], float] = {}

    # ------------------------------------------------------------------ #

    def add_state(self, state: State) -> "ChainBuilder":
        """Register ``state``; idempotent."""
        if state not in self._seen:
            self._seen.add(state)
            self._states.append(state)
        return self

    def add_states(self, *states: State) -> "ChainBuilder":
        """Register several states in order."""
        for s in states:
            self.add_state(s)
        return self

    def has_state(self, state: State) -> bool:
        """Whether ``state`` has been registered."""
        return state in self._seen

    def add_rate(self, source: State, target: State, rate: float) -> "ChainBuilder":
        """Add ``rate`` from ``source`` to ``target``, registering both states.

        Zero rates are accepted and dropped (convenient when a formula term
        vanishes, e.g. ``h = 0``); negative rates raise.
        """
        if rate < 0:
            raise CTMCError(f"negative rate {rate} on {source!r} -> {target!r}")
        if source == target:
            raise CTMCError(f"self-loop on {source!r}")
        self.add_state(source)
        self.add_state(target)
        if rate > 0:
            key = (source, target)
            self._rates[key] = self._rates.get(key, 0.0) + rate
        return self

    def rate(self, source: State, target: State) -> float:
        """Currently-accumulated rate between two states (0 if absent)."""
        return self._rates.get((source, target), 0.0)

    @property
    def states(self) -> Tuple[State, ...]:
        """States registered so far, in insertion order."""
        return tuple(self._states)

    @property
    def num_transitions(self) -> int:
        """Number of distinct directed edges with positive rate."""
        return len(self._rates)

    def edge_keys(self) -> Tuple[Tuple[State, State], ...]:
        """The distinct directed edges, in insertion order."""
        return tuple(self._rates.keys())

    def edge_rates(self) -> Tuple[float, ...]:
        """Accumulated rates in :meth:`edge_keys` order."""
        return tuple(self._rates.values())

    # ------------------------------------------------------------------ #
    # structural operations used by the recursive appendix construction
    # ------------------------------------------------------------------ #

    def relabel(self, mapping: Callable[[State], State]) -> "ChainBuilder":
        """Return a new builder with every state passed through ``mapping``.

        Distinct states may map to the same label, in which case they merge
        (their in/out rates accumulate) — this implements the appendix's
        "merge the two absorbing states into one" step.
        """
        out = ChainBuilder()
        for s in self._states:
            out.add_state(mapping(s))
        for (src, dst), r in self._rates.items():
            new_src, new_dst = mapping(src), mapping(dst)
            if new_src == new_dst:
                raise CTMCError(
                    f"relabel merges endpoints of edge {src!r}->{dst!r} "
                    "into a self-loop"
                )
            out.add_rate(new_src, new_dst, r)
        return out

    def merge_from(self, other: "ChainBuilder") -> "ChainBuilder":
        """Copy all states and rates of ``other`` into this builder."""
        for s in other._states:
            self.add_state(s)
        for (src, dst), r in other._rates.items():
            self.add_rate(src, dst, r)
        return self

    # ------------------------------------------------------------------ #

    def build(
        self,
        initial_state: Optional[State] = None,
        memo: Optional["ChainStructureMemo"] = None,
        memo_key: Optional[Hashable] = None,
    ) -> CTMC:
        """Construct the immutable :class:`CTMC`.

        Args:
            initial_state: start state (defaults to the first registered).
            memo: optional :class:`~repro.core.template.ChainStructureMemo`;
                when given, the chain topology is cached under ``memo_key``
                and only the rates are re-bound on a structural match —
                bitwise identical to the direct construction.
            memo_key: cache key for ``memo`` (e.g. the configuration key
                plus the structural parameters).
        """
        if memo is not None:
            return memo.build(memo_key, self, initial_state)
        transitions = [
            Transition(src, dst, r) for (src, dst), r in self._rates.items()
        ]
        return CTMC(self._states, transitions, initial_state=initial_state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChainBuilder(states={len(self._states)}, "
            f"transitions={len(self._rates)})"
        )

"""A byte-level distributed object store over the brick cluster.

This ties the substrates together into the system the paper reasons
about: objects are striped over redundancy sets (Section 4.1), protected
by a cross-node Reed-Solomon code with fault tolerance ``t``, optionally
on top of node-internal RAID.  Nodes can fail, drives can fail, rebuilds
reconstruct lost shards onto surviving nodes' spare space, and a scrub
verifies every stripe — so the examples can *demonstrate* the redundancy
configurations instead of just computing their MTTDL.

The store is deliberately in-memory and single-process: the paper's
reliability analysis treats the interconnect as non-constraining, and the
store's job is to exercise placement, encode/decode and rebuild logic,
not to be a network service.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..erasure.reed_solomon import CodecError, ReedSolomonCodec
from ..models.parameters import Parameters
from .entities import Cluster, ClusterError, NodeState
from .placement import PlacementPolicy, RedundancySet, RotatingPlacement

__all__ = ["StripeStore", "ObjectInfo", "DataLossError", "ScrubReport"]


class DataLossError(RuntimeError):
    """Raised when an object is unrecoverable (more erasures than tolerance)."""


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata for one stored object.

    Attributes:
        key: user-visible name.
        stripe_id: placement handle.
        size: original payload length in bytes.
        checksum: SHA-256 of the payload.
        redundancy_set: the nodes holding the shards.
    """

    key: str
    stripe_id: int
    size: int
    checksum: str
    redundancy_set: RedundancySet


@dataclass
class ScrubReport:
    """Outcome of a full-store scrub.

    Attributes:
        objects_checked: stripes visited.
        intact: fully present and verified.
        degraded: readable but with shards missing (rebuild recommended).
        lost: unrecoverable objects (data loss events).
        repaired: shards re-materialized onto healthy nodes during the scrub.
    """

    objects_checked: int = 0
    intact: int = 0
    degraded: int = 0
    lost: List[str] = field(default_factory=list)
    repaired: int = 0

    @property
    def has_data_loss(self) -> bool:
        return bool(self.lost)


class StripeStore:
    """Erasure-coded object store over a :class:`Cluster`.

    Args:
        cluster: the brick cluster to store on.
        fault_tolerance: cross-node erasure-code tolerance ``t`` (1-3 in
            the paper; any ``1 <= t < R`` works).
        placement: optional placement policy (defaults to
            :class:`RotatingPlacement` over the cluster's node set).

    Example:
        >>> from repro.models import Parameters
        >>> cluster = Cluster(Parameters.baseline().replace(node_set_size=8,
        ...                                                 redundancy_set_size=4))
        >>> store = StripeStore(cluster, fault_tolerance=2)
        >>> info = store.put("hello", b"some bytes worth storing")
        >>> store.get("hello")
        b'some bytes worth storing'
    """

    def __init__(
        self,
        cluster: Cluster,
        fault_tolerance: int,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        params = cluster.params
        r = params.redundancy_set_size
        if not 1 <= fault_tolerance < r:
            raise ValueError("need 1 <= fault_tolerance < redundancy_set_size")
        self._cluster = cluster
        self._t = fault_tolerance
        self._codec = ReedSolomonCodec(r - fault_tolerance, fault_tolerance)
        self._placement = placement or RotatingPlacement(params.node_set_size, r)
        # shards[node_id][(stripe_id, position)] = shard bytes
        self._shards: Dict[int, Dict[Tuple[int, int], bytes]] = {}
        self._objects: Dict[str, ObjectInfo] = {}
        self._next_stripe = 0
        self._loss_log: List[str] = []

    # ------------------------------------------------------------------ #

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def fault_tolerance(self) -> int:
        return self._t

    @property
    def codec(self) -> ReedSolomonCodec:
        return self._codec

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def data_loss_events(self) -> List[str]:
        """Keys of objects detected as lost (the paper's loss events)."""
        return list(self._loss_log)

    def keys(self) -> List[str]:
        return sorted(self._objects)

    def info(self, key: str) -> ObjectInfo:
        try:
            return self._objects[key]
        except KeyError:
            raise KeyError(f"no object {key!r}") from None

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #

    def put(self, key: str, payload: bytes) -> ObjectInfo:
        """Store one object as a single stripe (Section 4.1: each data
        object constitutes exactly one stripe)."""
        if key in self._objects:
            raise KeyError(f"object {key!r} already exists")
        if not payload:
            raise ValueError("payload must be non-empty")
        rset = self._placement.place(self._next_stripe)
        unavailable = [n for n in rset.nodes if not self._cluster.node(n).is_available]
        if unavailable:
            raise ClusterError(
                f"placement includes unavailable nodes {unavailable}; "
                "rebuild or re-place before writing"
            )
        k = self._codec.data_blocks
        blocks = self._split(payload, k)
        shards = self._codec.encode(blocks)
        stripe_id = self._next_stripe
        self._next_stripe += 1
        for position, (node_id, shard) in enumerate(zip(rset.nodes, shards)):
            self._shards.setdefault(node_id, {})[(stripe_id, position)] = shard
        info = ObjectInfo(
            key=key,
            stripe_id=stripe_id,
            size=len(payload),
            checksum=hashlib.sha256(payload).hexdigest(),
            redundancy_set=rset,
        )
        self._objects[key] = info
        return info

    def get(self, key: str) -> bytes:
        """Read an object, decoding around any missing shards.

        Raises:
            DataLossError: if fewer than ``k`` shards survive.
        """
        info = self.info(key)
        available = self._surviving_shards(info)
        k = self._codec.data_blocks
        if len(available) < k:
            self._record_loss(key)
            raise DataLossError(
                f"object {key!r} lost: {len(available)} of {k} required shards remain"
            )
        data_blocks = self._codec.decode_data(available)
        payload = b"".join(data_blocks)[: info.size]
        if hashlib.sha256(payload).hexdigest() != info.checksum:
            self._record_loss(key)
            raise DataLossError(f"object {key!r} failed checksum after decode")
        return payload

    def update(self, key: str, payload: bytes) -> ObjectInfo:
        """Overwrite an object in place.

        When the new payload splits into blocks of the same size, only the
        changed data shards are rewritten and the parity shards are
        patched incrementally (``update_parity`` — the read-modify-write
        path); otherwise the object is re-encoded from scratch.  Requires
        the stripe to be fully intact (scrub/repair first if degraded).

        Returns:
            The updated :class:`ObjectInfo`.
        """
        info = self.info(key)
        if not payload:
            raise ValueError("payload must be non-empty")
        available = self._surviving_shards(info)
        if len(available) != self._codec.total_blocks:
            raise ClusterError(
                f"object {key!r} is degraded; repair before updating"
            )
        k = self._codec.data_blocks
        old_blocks = self._codec.decode_data(available)
        new_blocks = self._split(payload, k)
        rset = info.redundancy_set
        if len(new_blocks[0]) == len(old_blocks[0]):
            # Small-write path: patch only what changed.
            parity = [available[k + j] for j in range(self._codec.parity_blocks)]
            for i, (old, new) in enumerate(zip(old_blocks, new_blocks)):
                if old == new:
                    continue
                parity = self._codec.update_parity(parity, i, old, new)
                node_id = rset.nodes[i]
                self._shards[node_id][(info.stripe_id, i)] = new
            for j, p in enumerate(parity):
                node_id = rset.nodes[k + j]
                self._shards[node_id][(info.stripe_id, k + j)] = p
        else:
            shards = self._codec.encode(new_blocks)
            for position, (node_id, shard) in enumerate(zip(rset.nodes, shards)):
                self._shards[node_id][(info.stripe_id, position)] = shard
        updated = ObjectInfo(
            key=key,
            stripe_id=info.stripe_id,
            size=len(payload),
            checksum=hashlib.sha256(payload).hexdigest(),
            redundancy_set=rset,
        )
        self._objects[key] = updated
        return updated

    def delete(self, key: str) -> None:
        """Drop an object and its shards."""
        info = self.info(key)
        for position, node_id in enumerate(info.redundancy_set.nodes):
            self._shards.get(node_id, {}).pop((info.stripe_id, position), None)
        del self._objects[key]

    # ------------------------------------------------------------------ #
    # failures and rebuild
    # ------------------------------------------------------------------ #

    def fail_node(self, node_id: int) -> None:
        """Fail a brick: its shards become unavailable until rebuilt."""
        node = self._cluster.node(node_id)
        node.fail()
        self._shards.pop(node_id, None)

    def rebuild_node(self, failed_node_id: int) -> int:
        """Reconstruct every shard the failed node held onto healthy nodes.

        Shards are re-homed onto available nodes not already in each
        stripe's redundancy set (even spare-space distribution).  Objects
        whose stripes have lost more than ``t`` shards are recorded as
        data-loss events and skipped.

        Returns:
            Number of shards reconstructed.
        """
        rebuilt = 0
        for key in list(self._objects):
            info = self._objects[key]
            if failed_node_id not in info.redundancy_set.nodes:
                continue
            rebuilt += self._rebuild_object(key)
        return rebuilt

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Verify every object; optionally repair degraded stripes."""
        report = ScrubReport()
        for key in list(self._objects):
            info = self._objects[key]
            report.objects_checked += 1
            available = self._surviving_shards(info)
            total = self._codec.total_blocks
            k = self._codec.data_blocks
            if len(available) < k:
                self._record_loss(key)
                report.lost.append(key)
                continue
            if len(available) == total:
                report.intact += 1
                continue
            report.degraded += 1
            if repair:
                report.repaired += self._rebuild_object(key)
        return report

    # ------------------------------------------------------------------ #

    def _rebuild_object(self, key: str) -> int:
        """Re-materialize missing shards of one object; returns count."""
        info = self._objects[key]
        available = self._surviving_shards(info)
        k = self._codec.data_blocks
        if len(available) < k:
            self._record_loss(key)
            return 0
        full = self._codec.reconstruct(available)
        missing_positions = [
            pos for pos in range(self._codec.total_blocks) if pos not in available
        ]
        if not missing_positions:
            return 0
        current_nodes = {
            info.redundancy_set.nodes[pos]
            for pos in range(self._codec.total_blocks)
            if pos in available
        }
        replacements = [
            n.node_id
            for n in self._cluster.available_nodes
            if n.node_id not in current_nodes
        ]
        if len(replacements) < len(missing_positions):
            raise ClusterError("not enough healthy nodes to re-home shards")
        new_nodes = list(info.redundancy_set.nodes)
        for pos, target in zip(missing_positions, replacements):
            new_nodes[pos] = target
            self._shards.setdefault(target, {})[(info.stripe_id, pos)] = full[pos]
        self._objects[key] = ObjectInfo(
            key=info.key,
            stripe_id=info.stripe_id,
            size=info.size,
            checksum=info.checksum,
            redundancy_set=RedundancySet(tuple(new_nodes)),
        )
        return len(missing_positions)

    def _surviving_shards(self, info: ObjectInfo) -> Dict[int, bytes]:
        available: Dict[int, bytes] = {}
        for position, node_id in enumerate(info.redundancy_set.nodes):
            node_shards = self._shards.get(node_id)
            if node_shards is None:
                continue
            shard = node_shards.get((info.stripe_id, position))
            if shard is not None:
                available[position] = shard
        return available

    def _record_loss(self, key: str) -> None:
        if key not in self._loss_log:
            self._loss_log.append(key)

    @staticmethod
    def _split(payload: bytes, k: int) -> List[bytes]:
        """Split into k equal blocks, zero-padding the tail."""
        block = (len(payload) + k - 1) // k
        padded = payload + b"\x00" * (block * k - len(payload))
        return [padded[i * block : (i + 1) * block] for i in range(k)]

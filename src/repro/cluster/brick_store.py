"""Drive-granular brick store: both redundancy dimensions at byte level.

:class:`repro.cluster.storage.StripeStore` treats a node as an opaque
shard holder.  :class:`BrickStore` adds the paper's second dimension:
inside each brick, a shard is striped over the node's drives with the
configured internal RAID level (none / RAID 5 / RAID 6), so the full
9-configuration matrix of Section 3 is demonstrable on real bytes:

* ``fail_drive`` — a drive dies; with internal RAID the node re-stripes
  its strips onto the surviving drives (fail-in-place, Section 3) and no
  cross-node traffic is needed; without internal RAID (or beyond the
  array's tolerance) the node's shards are lost and the node must be
  rebuilt by its peers.
* ``fail_node`` / ``rebuild_node`` — as in the flat store: survivors
  regenerate the lost shards from the cross-node code onto spare space.

The store keeps strips per (node, drive) so a drive failure destroys
exactly the bytes that physically lived on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..erasure.raid import Raid5Codec, Raid6Codec
from ..erasure.reed_solomon import CodecError, ReedSolomonCodec
from ..models.raid import InternalRaid
from ..models.parameters import Parameters
from .entities import Cluster, ClusterError
from .placement import PlacementPolicy, RedundancySet, RotatingPlacement
from .storage import DataLossError, ObjectInfo

__all__ = ["BrickStore", "BrickStatus"]

StripeKey = Tuple[int, int]  # (stripe_id, shard position)


@dataclass(frozen=True)
class BrickStatus:
    """Health snapshot of one brick's storage.

    Attributes:
        node_id: the brick.
        active_drives: drives currently holding strips.
        degraded_shards: shards with missing strips still recoverable by
            the internal RAID.
        lost_shards: shards the internal RAID can no longer reconstruct.
    """

    node_id: int
    active_drives: int
    degraded_shards: int
    lost_shards: int


class _Brick:
    """Node-local strip storage with internal-RAID encode/decode."""

    def __init__(self, node_id: int, drive_ids: List[int], internal: InternalRaid) -> None:
        self.node_id = node_id
        self.internal = internal
        self.active_drives: List[int] = list(drive_ids)
        # strips[drive_id][(stripe, pos)] = strip bytes
        self.strips: Dict[int, Dict[StripeKey, bytes]] = {d: {} for d in drive_ids}
        # layout[(stripe, pos)] = ordered drive ids the shard was encoded over
        self.layout: Dict[StripeKey, List[int]] = {}

    # -- codec plumbing ------------------------------------------------ #

    def _codec(self, total_strips: int):
        if self.internal is InternalRaid.RAID5:
            return Raid5Codec(total_strips - 1)
        if self.internal is InternalRaid.RAID6:
            return Raid6Codec(total_strips - 2)
        return None

    def _min_drives(self) -> int:
        # data strips >= 2 for the RAID codecs.
        return {InternalRaid.NONE: 1, InternalRaid.RAID5: 3, InternalRaid.RAID6: 4}[
            self.internal
        ]

    def write_shard(self, key: StripeKey, shard: bytes) -> None:
        """Place a shard on the brick's drives.

        With internal RAID the shard is encoded over all active drives;
        without it the shard lives on a single drive (the paper's "no more
        than one drive per node is used in each redundancy set"), chosen
        round-robin by stripe id.
        """
        drives = list(self.active_drives)
        if len(drives) < self._min_drives():
            raise ClusterError(
                f"node {self.node_id} has too few drives for {self.internal.value}"
            )
        if self.internal is InternalRaid.NONE:
            drive_id = drives[(key[0] + key[1]) % len(drives)]
            self.strips[drive_id][key] = shard
            self.layout[key] = [drive_id]
            return
        codec = self._codec(len(drives))
        strips = codec.encode(_split(shard, codec.data_strips))
        for drive_id, strip in zip(drives, strips):
            self.strips[drive_id][key] = strip
        self.layout[key] = drives

    def read_shard(self, key: StripeKey) -> Optional[bytes]:
        """Decode a shard, tolerating missing strips up to the internal
        RAID's tolerance.  Returns None if unrecoverable or absent."""
        drives = self.layout.get(key)
        if drives is None:
            return None
        present: Dict[int, bytes] = {}
        for position, drive_id in enumerate(drives):
            strip = self.strips.get(drive_id, {}).get(key)
            if strip is not None:
                present[position] = strip
        codec = self._codec(len(drives))
        if codec is None:
            if len(present) != len(drives):
                return None
            return b"".join(present[i] for i in range(len(drives)))
        try:
            full = codec.reconstruct(present)
        except CodecError:
            return None
        return b"".join(full[: codec.data_strips])

    def drop_drive(self, drive_id: int) -> None:
        self.active_drives = [d for d in self.active_drives if d != drive_id]
        self.strips.pop(drive_id, None)

    def restripe(self) -> int:
        """Re-encode every recoverable shard over the surviving drives.

        Returns the number of shards re-striped.  Shards that lost more
        strips than the internal tolerance are dropped (they will need a
        cross-node rebuild).
        """
        keys = list(self.layout)
        restriped = 0
        for key in keys:
            shard = self.read_shard(key)
            self._erase(key)
            if shard is not None:
                self.write_shard(key, shard)
                restriped += 1
        return restriped

    def shard_keys(self) -> List[StripeKey]:
        return list(self.layout)

    def _erase(self, key: StripeKey) -> None:
        for drive_strips in self.strips.values():
            drive_strips.pop(key, None)
        self.layout.pop(key, None)

    def status(self) -> BrickStatus:
        degraded = 0
        lost = 0
        for key, drives in self.layout.items():
            missing = sum(
                1
                for d in drives
                if self.strips.get(d, {}).get(key) is None
            )
            if missing == 0:
                continue
            tolerance = self.internal.drive_fault_tolerance
            if missing <= tolerance:
                degraded += 1
            else:
                lost += 1
        return BrickStatus(
            node_id=self.node_id,
            active_drives=len(self.active_drives),
            degraded_shards=degraded,
            lost_shards=lost,
        )


def _split(payload: bytes, k: int) -> List[bytes]:
    block = (len(payload) + k - 1) // k
    block = max(block, 1)
    padded = payload + b"\x00" * (block * k - len(payload))
    return [padded[i * block : (i + 1) * block] for i in range(k)]


class BrickStore:
    """Object store exercising both redundancy dimensions on real bytes.

    Args:
        cluster: the brick cluster.
        fault_tolerance: cross-node erasure tolerance t (1 <= t < R).
        internal: node-internal RAID level.
        placement: optional placement policy.

    The object format stores the shard length alongside each node shard so
    internal re-encoding over varying drive counts stays self-describing.
    """

    def __init__(
        self,
        cluster: Cluster,
        fault_tolerance: int,
        internal: InternalRaid = InternalRaid.NONE,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        params = cluster.params
        r = params.redundancy_set_size
        if not 1 <= fault_tolerance < r:
            raise ValueError("need 1 <= fault_tolerance < redundancy_set_size")
        self._cluster = cluster
        self._internal = internal
        self._codec = ReedSolomonCodec(r - fault_tolerance, fault_tolerance)
        self._placement = placement or RotatingPlacement(params.node_set_size, r)
        self._bricks: Dict[int, _Brick] = {
            node.node_id: _Brick(
                node.node_id,
                [d.drive_id for d in node.drives],
                internal,
            )
            for node in cluster
        }
        self._objects: Dict[str, ObjectInfo] = {}
        self._shard_sizes: Dict[str, int] = {}
        self._next_stripe = 0
        self._loss_log: List[str] = []

    # ------------------------------------------------------------------ #

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def internal(self) -> InternalRaid:
        return self._internal

    @property
    def fault_tolerance(self) -> int:
        return self._codec.parity_blocks

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def data_loss_events(self) -> List[str]:
        return list(self._loss_log)

    def brick_status(self, node_id: int) -> BrickStatus:
        return self._brick(node_id).status()

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #

    def put(self, key: str, payload: bytes) -> ObjectInfo:
        """Store an object: cross-node stripe, then per-node internal
        striping over each brick's drives."""
        if key in self._objects:
            raise KeyError(f"object {key!r} already exists")
        if not payload:
            raise ValueError("payload must be non-empty")
        rset = self._placement.place(self._next_stripe)
        unavailable = [
            n for n in rset.nodes if not self._cluster.node(n).is_available
        ]
        if unavailable:
            raise ClusterError(
                f"placement includes unavailable nodes {unavailable}"
            )
        blocks = _split(payload, self._codec.data_blocks)
        shards = self._codec.encode(blocks)
        stripe_id = self._next_stripe
        self._next_stripe += 1
        for position, (node_id, shard) in enumerate(zip(rset.nodes, shards)):
            self._brick(node_id).write_shard((stripe_id, position), shard)
        self._shard_sizes[key] = len(shards[0])
        info = ObjectInfo(
            key=key,
            stripe_id=stripe_id,
            size=len(payload),
            checksum=hashlib.sha256(payload).hexdigest(),
            redundancy_set=rset,
        )
        self._objects[key] = info
        return info

    def get(self, key: str) -> bytes:
        """Read an object through both redundancy layers."""
        info = self._info(key)
        shards = self._surviving_shards(info, self._shard_sizes[key])
        if len(shards) < self._codec.data_blocks:
            self._record_loss(key)
            raise DataLossError(
                f"object {key!r} lost: {len(shards)} of "
                f"{self._codec.data_blocks} required shards recoverable"
            )
        data = self._codec.decode_data(shards)
        payload = b"".join(data)[: info.size]
        if hashlib.sha256(payload).hexdigest() != info.checksum:
            self._record_loss(key)
            raise DataLossError(f"object {key!r} failed checksum after decode")
        return payload

    # ------------------------------------------------------------------ #
    # failures
    # ------------------------------------------------------------------ #

    def fail_drive(self, node_id: int, drive_id: int) -> int:
        """Fail one drive and run the node's fail-in-place response.

        With internal RAID the brick re-stripes (recoverable shards are
        re-encoded over the surviving drives); shards beyond the internal
        tolerance are dropped and left for cross-node repair via
        :meth:`scrub_and_repair` or :meth:`rebuild_node`.

        Returns:
            Number of shards the internal re-stripe preserved.
        """
        node = self._cluster.node(node_id)
        node.fail_drive(drive_id)
        node.restripe(drive_id)
        brick = self._brick(node_id)
        brick.drop_drive(drive_id)
        if len(brick.active_drives) < brick._min_drives():
            # Too few spindles to run the array: treat as an array failure.
            for key in brick.shard_keys():
                brick._erase(key)
            return 0
        return brick.restripe()

    def fail_node(self, node_id: int) -> None:
        """Fail a whole brick: all its strips become unavailable."""
        self._cluster.node(node_id).fail()
        brick = self._brick(node_id)
        for key in brick.shard_keys():
            brick._erase(key)

    def rebuild_node(self, failed_node_id: int) -> int:
        """Cross-node rebuild of everything the failed brick held."""
        rebuilt = 0
        for key in list(self._objects):
            info = self._objects[key]
            if failed_node_id not in info.redundancy_set.nodes:
                continue
            rebuilt += self._repair_object(key)
        return rebuilt

    def scrub_and_repair(self) -> Tuple[int, List[str]]:
        """Verify every object, re-materializing missing shards.

        Returns:
            (shards repaired, keys lost).
        """
        repaired = 0
        lost: List[str] = []
        for key in list(self._objects):
            result = self._repair_object(key)
            if result < 0:
                lost.append(key)
            else:
                repaired += result
        return repaired, lost

    # ------------------------------------------------------------------ #

    def _brick(self, node_id: int) -> _Brick:
        try:
            return self._bricks[node_id]
        except KeyError:
            raise ClusterError(f"no brick {node_id}") from None

    def _info(self, key: str) -> ObjectInfo:
        try:
            return self._objects[key]
        except KeyError:
            raise KeyError(f"no object {key!r}") from None

    def _surviving_shards(self, info: ObjectInfo, shard_size: int) -> Dict[int, bytes]:
        shards: Dict[int, bytes] = {}
        for position, node_id in enumerate(info.redundancy_set.nodes):
            if not self._cluster.node(node_id).is_available:
                continue
            shard = self._brick(node_id).read_shard((info.stripe_id, position))
            if shard is not None:
                shards[position] = shard[:shard_size]
        return shards

    def _repair_object(self, key: str) -> int:
        """Re-materialize missing shards; -1 if the object is lost."""
        info = self._objects[key]
        shard_size = self._shard_sizes[key]
        shards = self._surviving_shards(info, shard_size)
        if len(shards) < self._codec.data_blocks:
            self._record_loss(key)
            return -1
        missing = [
            pos
            for pos in range(self._codec.total_blocks)
            if pos not in shards
        ]
        if not missing:
            return 0
        full = self._codec.reconstruct(shards)
        current_nodes = {
            info.redundancy_set.nodes[pos] for pos in shards
        }
        replacements = [
            n.node_id
            for n in self._cluster.available_nodes
            if n.node_id not in current_nodes
            and len(self._brick(n.node_id).active_drives)
            >= self._brick(n.node_id)._min_drives()
        ]
        if len(replacements) < len(missing):
            raise ClusterError("not enough healthy bricks to re-home shards")
        new_nodes = list(info.redundancy_set.nodes)
        for pos, target in zip(missing, replacements):
            new_nodes[pos] = target
            self._brick(target).write_shard((info.stripe_id, pos), full[pos])
        self._objects[key] = ObjectInfo(
            key=info.key,
            stripe_id=info.stripe_id,
            size=info.size,
            checksum=info.checksum,
            redundancy_set=RedundancySet(tuple(new_nodes)),
        )
        return len(missing)

    def _record_loss(self, key: str) -> None:
        if key not in self._loss_log:
            self._loss_log.append(key)

"""Redundancy-set placement (Section 4.1).

Data objects are striped over *redundancy sets* — subsets of ``R`` nodes
drawn from the node set of size ``N`` — such that data is evenly
distributed over all nodes and every node shares redundancy-set
relationships with every other node.  This module provides:

* deterministic, balanced selection of redundancy sets (round-robin over
  a rotation schedule, which achieves the paper's "even distribution"
  property without materializing all C(N, R) sets);
* the combinatorial counting functions of Section 4.1; and
* critical-set queries used to check the Section 5.2 fractions empirically
  (the property-based tests sample placements and compare the measured
  critical fractions with ``k2``/``k3``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "RedundancySet",
    "PlacementPolicy",
    "RotatingPlacement",
    "RandomPlacement",
    "count_redundancy_sets",
    "all_redundancy_sets",
]


def count_redundancy_sets(n: int, r: int) -> int:
    """Total number of distinct redundancy sets: C(N, R) (Section 4.1)."""
    if n < 2 or not 2 <= r <= n:
        raise ValueError("need 2 <= R <= N and N >= 2")
    return math.comb(n, r)


@dataclass(frozen=True)
class RedundancySet:
    """An ordered stripe placement over ``R`` distinct nodes.

    The order matters: position ``i`` holds shard ``i`` of the stripe
    (data shards first, then parity).

    Attributes:
        nodes: node ids, one per shard position.
    """

    nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("redundancy set has repeated nodes")
        if len(self.nodes) < 2:
            raise ValueError("redundancy set needs at least 2 nodes")

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def node_set(self) -> FrozenSet[int]:
        return frozenset(self.nodes)

    def contains(self, node: int) -> bool:
        return node in self.node_set

    def shard_position(self, node: int) -> int:
        """Which shard of the stripe lives on ``node``."""
        try:
            return self.nodes.index(node)
        except ValueError:
            raise KeyError(f"node {node} not in redundancy set") from None

    def erasures(self, failed_nodes: Iterable[int]) -> List[int]:
        """Shard positions lost to the given failed nodes."""
        failed = set(failed_nodes)
        return [i for i, n in enumerate(self.nodes) if n in failed]

    def is_critical(self, failed_nodes: Iterable[int], fault_tolerance: int) -> bool:
        """Whether this set has exhausted its fault tolerance (Section 5.2):
        one more erasure (or a hard error during rebuild) loses data."""
        return len(self.erasures(failed_nodes)) >= fault_tolerance

    def has_lost_data(self, failed_nodes: Iterable[int], fault_tolerance: int) -> bool:
        """Whether more shards are gone than the code tolerates."""
        return len(self.erasures(failed_nodes)) > fault_tolerance


class PlacementPolicy:
    """Interface: map a stripe id to a :class:`RedundancySet`."""

    def place(self, stripe_id: int) -> RedundancySet:
        raise NotImplementedError

    def sets_containing(self, node: int, stripe_ids: Sequence[int]) -> List[int]:
        """Stripe ids (from the given universe) whose set contains ``node``."""
        return [s for s in stripe_ids if self.place(s).contains(node)]


class RotatingPlacement(PlacementPolicy):
    """Deterministic balanced placement over a node set.

    Stripe ``s`` is placed on nodes
    ``(start + j * stride) mod N`` for ``j = 0..R-1``, with ``start``
    advancing per stripe and the stride cycling through values coprime to
    ``N``.  Over many stripes every node carries the same number of shards
    (perfect balance) and every pair of nodes co-occurs, matching the
    paper's even-distribution assumption.

    Args:
        node_count: N.
        set_size: R.
        seed: offsets the rotation (different seeds decorrelate layouts).
    """

    def __init__(self, node_count: int, set_size: int, seed: int = 0) -> None:
        if node_count < 2 or not 2 <= set_size <= node_count:
            raise ValueError("need 2 <= R <= N and N >= 2")
        self._n = node_count
        self._r = set_size
        self._seed = seed
        self._strides = [
            s for s in range(1, node_count) if math.gcd(s, node_count) == 1
        ]

    @property
    def node_count(self) -> int:
        return self._n

    @property
    def set_size(self) -> int:
        return self._r

    def place(self, stripe_id: int) -> RedundancySet:
        """The redundancy set for a stripe id (deterministic)."""
        if stripe_id < 0:
            raise ValueError("stripe_id must be non-negative")
        mixed = stripe_id + self._seed
        start = mixed % self._n
        stride = self._strides[(mixed // self._n) % len(self._strides)]
        nodes = tuple((start + j * stride) % self._n for j in range(self._r))
        return RedundancySet(nodes)

    def shard_counts(self, stripe_count: int) -> List[int]:
        """Shards per node over the first ``stripe_count`` stripes
        (balance diagnostic; even distribution makes these near-equal)."""
        counts = [0] * self._n
        for s in range(stripe_count):
            for node in self.place(s).nodes:
                counts[node] += 1
        return counts

    def critical_fraction_empirical(
        self,
        failed_nodes: Sequence[int],
        stripe_count: int,
        fault_tolerance: int,
    ) -> float:
        """Measured fraction of a failed node's stripes that are critical.

        Counts, among stripes touching ``failed_nodes[0]``, the fraction
        also touching every other failed node — the quantity the paper's
        ``k2``/``k3`` combinatorics predict as (R-1)/(N-1), etc.
        """
        if not failed_nodes:
            raise ValueError("need at least one failed node")
        anchor = failed_nodes[0]
        others = set(failed_nodes[1:])
        touching = 0
        critical = 0
        for s in range(stripe_count):
            rset = self.place(s)
            if not rset.contains(anchor):
                continue
            touching += 1
            if all(rset.contains(x) for x in others):
                critical += 1
        if touching == 0:
            return 0.0
        return critical / touching


class RandomPlacement(PlacementPolicy):
    """Uniform-random placement: each stripe's set is R nodes drawn
    uniformly without replacement.

    This is the exact probabilistic model behind the Section 5.2
    critical-fraction combinatorics, so measured critical fractions
    converge to ``k2``/``k3``; the property tests rely on it.  Placement
    is deterministic given (seed, stripe_id).
    """

    def __init__(self, node_count: int, set_size: int, seed: int = 0) -> None:
        if node_count < 2 or not 2 <= set_size <= node_count:
            raise ValueError("need 2 <= R <= N and N >= 2")
        self._n = node_count
        self._r = set_size
        self._seed = seed

    @property
    def node_count(self) -> int:
        return self._n

    @property
    def set_size(self) -> int:
        return self._r

    def place(self, stripe_id: int) -> RedundancySet:
        if stripe_id < 0:
            raise ValueError("stripe_id must be non-negative")
        import numpy as np

        rng = np.random.default_rng((self._seed, stripe_id))
        nodes = rng.choice(self._n, size=self._r, replace=False)
        return RedundancySet(tuple(int(x) for x in nodes))

    def critical_fraction_empirical(
        self,
        failed_nodes: Sequence[int],
        stripe_count: int,
        fault_tolerance: int,
    ) -> float:
        """Same diagnostic as :meth:`RotatingPlacement.critical_fraction_empirical`."""
        if not failed_nodes:
            raise ValueError("need at least one failed node")
        anchor = failed_nodes[0]
        others = set(failed_nodes[1:])
        touching = 0
        critical = 0
        for s in range(stripe_count):
            rset = self.place(s)
            if not rset.contains(anchor):
                continue
            touching += 1
            if all(rset.contains(x) for x in others):
                critical += 1
        return critical / touching if touching else 0.0


def all_redundancy_sets(n: int, r: int) -> Iterator[Tuple[int, ...]]:
    """Iterate every C(N, R) unordered redundancy set (small N only)."""
    if math.comb(n, r) > 5_000_000:
        raise ValueError("refusing to enumerate more than 5e6 sets")
    return itertools.combinations(range(n), r)

"""Spare-capacity provisioning for fail-in-place operation (Section 3).

"The over-provisioned storage capacity is either sufficient to deal with
expected failures over the operational life of the installation, or spare
nodes are added at appropriate times — e.g. when overall capacity
utilization increases above predetermined thresholds."

:class:`SparePolicy` implements both modes and answers the planning
question: how much over-provisioning does a target service life need?
The expected capacity loss over a horizon follows from the exponential
failure model (drives and whole nodes), the same assumptions as the
Markov chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..models.parameters import Parameters
from .entities import Cluster

__all__ = ["SparePolicy", "ProvisioningPlan"]


@dataclass(frozen=True)
class ProvisioningPlan:
    """Sizing answer for a target operational life.

    Attributes:
        horizon_hours: planning horizon.
        expected_drive_failures: expected drive failures over the horizon
            (in surviving nodes).
        expected_node_failures: expected node failures over the horizon.
        expected_capacity_loss_bytes: raw capacity expected to be lost.
        required_utilization: maximum initial utilization so that logical
            data still fits at the end of the horizon.
    """

    horizon_hours: float
    expected_drive_failures: float
    expected_node_failures: float
    expected_capacity_loss_bytes: float
    required_utilization: float


class SparePolicy:
    """Capacity-threshold spare management.

    Args:
        params: system parameters.
        utilization_threshold: add a spare node when the cluster's
            utilization (logical / surviving raw) exceeds this value.
    """

    def __init__(self, params: Parameters, utilization_threshold: float = 0.9) -> None:
        if not 0 < utilization_threshold <= 1:
            raise ValueError("utilization_threshold must be in (0, 1]")
        self._params = params
        self._threshold = utilization_threshold

    @property
    def utilization_threshold(self) -> float:
        return self._threshold

    def nodes_to_add(self, cluster: Cluster) -> int:
        """How many spare nodes to provision right now to get back under
        the threshold (0 if already under)."""
        p = self._params
        node_raw = p.drives_per_node * p.drive_capacity_bytes
        needed = 0
        raw = cluster.raw_capacity_bytes
        logical = cluster.logical_capacity_bytes
        while raw > 0 and logical / raw > self._threshold:
            raw += node_raw
            needed += 1
            if needed > cluster.size:
                break  # refuse to more than double the install in one step
        return needed

    def apply(self, cluster: Cluster) -> int:
        """Add the needed spare nodes to ``cluster``; returns how many."""
        count = self.nodes_to_add(cluster)
        for _ in range(count):
            cluster.add_node()
        return count

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def provisioning_plan(self, horizon_hours: float) -> ProvisioningPlan:
        """Expected capacity loss and required initial utilization for a
        maintenance-free horizon.

        Node failures remove whole nodes (all their drives); drive
        failures remove single drives from surviving nodes.  Both follow
        the exponential model, so the expected number of failures over
        horizon ``T`` per unit is ``1 - exp(-lambda T)``.
        """
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        p = self._params
        node_loss_prob = 1.0 - math.exp(-p.node_failure_rate * horizon_hours)
        drive_loss_prob = 1.0 - math.exp(-p.drive_failure_rate * horizon_hours)
        expected_node_failures = p.node_set_size * node_loss_prob
        surviving_nodes = p.node_set_size - expected_node_failures
        expected_drive_failures = surviving_nodes * p.drives_per_node * drive_loss_prob
        loss = (
            expected_node_failures * p.drives_per_node + expected_drive_failures
        ) * p.drive_capacity_bytes
        raw = p.system_raw_bytes
        required_utilization = max(0.0, (raw - loss) / raw)
        return ProvisioningPlan(
            horizon_hours=horizon_hours,
            expected_drive_failures=expected_drive_failures,
            expected_node_failures=expected_node_failures,
            expected_capacity_loss_bytes=loss,
            required_utilization=required_utilization,
        )

    def maintenance_free_life_hours(self) -> float:
        """Longest horizon the baseline utilization survives without adding
        nodes (bisection on :meth:`provisioning_plan`)."""
        p = self._params
        lo, hi = 1.0, 1e7
        if self.provisioning_plan(hi).required_utilization > p.capacity_utilization:
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.provisioning_plan(mid).required_utilization > p.capacity_utilization:
                lo = mid
            else:
                hi = mid
        return lo

"""3-D mesh interconnect model (Section 6's link-speed clarification).

The Collective Intelligent Bricks hardware stacks cube-shaped nodes into
a 3-D mesh; each node talks to its (up to six) face neighbours.  The
paper cites [Fleiner et al. 2003] for the effective bandwidth of such
structures and reduces it, for the reliability model, to a single
sustained per-node link bandwidth.  This module provides the topology so
that reduction can be *derived* rather than assumed:

* mesh construction and neighbor/diameter/bisection queries,
* dimension-ordered (XYZ) routing, and
* an all-to-all load analysis giving the per-node effective bandwidth a
  rebuild workload sees, which is what
  :class:`repro.models.rebuild.RebuildModel` abstracts as the sustained
  link rate.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["MeshTopology", "Coordinate", "route_xyz"]

Coordinate = Tuple[int, int, int]


def route_xyz(src: Coordinate, dst: Coordinate) -> List[Coordinate]:
    """Dimension-ordered route from ``src`` to ``dst`` (inclusive ends).

    XYZ routing resolves the X offset first, then Y, then Z — deadlock-free
    and minimal on a mesh.
    """
    path = [src]
    cur = list(src)
    for axis in range(3):
        step = 1 if dst[axis] > cur[axis] else -1
        while cur[axis] != dst[axis]:
            cur[axis] += step
            path.append((cur[0], cur[1], cur[2]))
    return path


@dataclass(frozen=True)
class MeshTopology:
    """An ``nx x ny x nz`` 3-D mesh of bricks.

    Attributes:
        nx, ny, nz: side lengths (>= 1).
        link_bandwidth_bps: sustained bandwidth of one face-to-face link,
            bits/second, full duplex per direction.
    """

    nx: int
    ny: int
    nz: int
    link_bandwidth_bps: float

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("mesh sides must be >= 1")
        if self.link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")

    @classmethod
    def cube_for(cls, node_count: int, link_bandwidth_bps: float) -> "MeshTopology":
        """Smallest near-cubic mesh holding ``node_count`` nodes."""
        if node_count < 1:
            raise ValueError("need at least one node")
        side = max(1, round(node_count ** (1.0 / 3.0)))
        while side**3 < node_count:
            side += 1
        return cls(side, side, side, link_bandwidth_bps)

    # ------------------------------------------------------------------ #

    @property
    def node_count(self) -> int:
        return self.nx * self.ny * self.nz

    def coordinates(self) -> Iterator[Coordinate]:
        """All node coordinates in x-major order."""
        return itertools.product(range(self.nx), range(self.ny), range(self.nz))

    def index_of(self, coord: Coordinate) -> int:
        """Linear node id of a coordinate."""
        x, y, z = coord
        self._check(coord)
        return (x * self.ny + y) * self.nz + z

    def coordinate_of(self, index: int) -> Coordinate:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.node_count:
            raise ValueError(f"node index {index} out of range")
        x, rem = divmod(index, self.ny * self.nz)
        y, z = divmod(rem, self.nz)
        return (x, y, z)

    def neighbors(self, coord: Coordinate) -> List[Coordinate]:
        """Face neighbours (up to six)."""
        self._check(coord)
        x, y, z = coord
        candidates = [
            (x - 1, y, z), (x + 1, y, z),
            (x, y - 1, z), (x, y + 1, z),
            (x, y, z - 1), (x, y, z + 1),
        ]
        return [c for c in candidates if self._inside(c)]

    def degree(self, coord: Coordinate) -> int:
        """Number of attached links (6 interior, fewer at faces/edges)."""
        return len(self.neighbors(coord))

    def distance(self, a: Coordinate, b: Coordinate) -> int:
        """Manhattan (hop) distance."""
        self._check(a), self._check(b)
        return sum(abs(a[i] - b[i]) for i in range(3))

    @property
    def diameter(self) -> int:
        """Maximum hop distance between any two nodes."""
        return (self.nx - 1) + (self.ny - 1) + (self.nz - 1)

    def average_distance(self) -> float:
        """Mean hop distance over distinct ordered pairs.

        For a line of length n the mean |i - j| over ordered pairs with
        i != j is (n + 1) / 3 adjusted for the exclusion; we compute the
        exact value by summing per-axis expectations over all pairs
        (including i == j) and correcting the denominator.
        """

        def axis_mean(n: int) -> float:
            if n == 1:
                return 0.0
            # E|i - j| over uniform independent i, j in [0, n):
            return (n * n - 1) / (3.0 * n)

        total_pairs = self.node_count**2
        distinct = total_pairs - self.node_count
        if distinct == 0:
            return 0.0
        mean_incl = axis_mean(self.nx) + axis_mean(self.ny) + axis_mean(self.nz)
        return mean_incl * total_pairs / distinct

    @property
    def bisection_links(self) -> int:
        """Links crossing the worst-case mid-plane (smallest cross-section
        count of the longest axis cut)."""
        longest = max(self.nx, self.ny, self.nz)
        if longest == self.nx:
            return self.ny * self.nz
        if longest == self.ny:
            return self.nx * self.nz
        return self.nx * self.ny

    # ------------------------------------------------------------------ #
    # effective bandwidth for rebuild-like traffic
    # ------------------------------------------------------------------ #

    def effective_node_bandwidth_bps(self) -> float:
        """Per-node throughput under uniform all-to-all traffic.

        Under uniform traffic every byte traverses ``average_distance``
        links on average, and the mesh has ``link_count`` full-duplex
        links; the sustainable injection rate per node is therefore::

            total_link_capacity / (avg_hops * node_count)

        This is the quantity the reliability model's single
        "sustained link speed" parameter abstracts; for the paper's 64-node
        4x4x4 baseline it is close to one link's worth, justifying the
        single-link reduction.
        """
        avg = self.average_distance()
        if avg == 0:
            return math.inf
        return self.link_count * self.link_bandwidth_bps / (avg * self.node_count)

    @property
    def link_count(self) -> int:
        """Total face-to-face links in the mesh."""
        return (
            (self.nx - 1) * self.ny * self.nz
            + self.nx * (self.ny - 1) * self.nz
            + self.nx * self.ny * (self.nz - 1)
        )

    def link_loads_all_to_all(self) -> Dict[Tuple[Coordinate, Coordinate], int]:
        """Per-link path counts under XYZ-routed all-to-all traffic
        (diagnostic for hotspot analysis; small meshes only)."""
        if self.node_count > 512:
            raise ValueError("all-to-all load analysis limited to 512 nodes")
        loads: Dict[Tuple[Coordinate, Coordinate], int] = {}
        for src in self.coordinates():
            for dst in self.coordinates():
                if src == dst:
                    continue
                path = route_xyz(src, dst)
                for a, b in zip(path, path[1:]):
                    key = (a, b) if a <= b else (b, a)
                    loads[key] = loads.get(key, 0) + 1
        return loads

    # ------------------------------------------------------------------ #

    def _inside(self, coord: Coordinate) -> bool:
        x, y, z = coord
        return 0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz

    def _check(self, coord: Coordinate) -> None:
        if not self._inside(coord):
            raise ValueError(f"coordinate {coord} outside mesh")

"""Brick-cluster substrate.

The simulated hardware the reliability models describe: nodes (sealed
bricks) with fail-in-place drives, redundancy-set placement, spare
provisioning, the 3-D mesh interconnect and a byte-level erasure-coded
object store.
"""

from .brick_store import BrickStatus, BrickStore
from .entities import Cluster, ClusterError, Drive, DriveState, Node, NodeState
from .flows import (
    Flow,
    FlowAllocation,
    RebuildFlowStudy,
    max_min_allocate,
    rebuild_flow_study,
)
from .mesh import Coordinate, MeshTopology, route_xyz
from .placement import (
    PlacementPolicy,
    RandomPlacement,
    RedundancySet,
    RotatingPlacement,
    all_redundancy_sets,
    count_redundancy_sets,
)
from .spares import ProvisioningPlan, SparePolicy
from .storage import DataLossError, ObjectInfo, ScrubReport, StripeStore

__all__ = [
    "BrickStatus",
    "BrickStore",
    "Cluster",
    "ClusterError",
    "Coordinate",
    "DataLossError",
    "Drive",
    "DriveState",
    "Flow",
    "FlowAllocation",
    "RebuildFlowStudy",
    "max_min_allocate",
    "rebuild_flow_study",
    "MeshTopology",
    "Node",
    "NodeState",
    "ObjectInfo",
    "PlacementPolicy",
    "ProvisioningPlan",
    "RandomPlacement",
    "RedundancySet",
    "RotatingPlacement",
    "ScrubReport",
    "SparePolicy",
    "StripeStore",
    "all_redundancy_sets",
    "count_redundancy_sets",
    "route_xyz",
]

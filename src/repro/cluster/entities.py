"""Brick-cluster entities: drives, nodes, and the cluster itself.

A *node* (brick) is a sealed unit — controller, power supply, network
links and ``d`` drives — operated fail-in-place (Section 3): failed
drives are never replaced; a node with internal RAID re-stripes onto the
surviving drives, and when the node itself dies its data is rebuilt onto
the spare capacity of the surviving nodes.

These entities carry *state*, not time: the discrete-event simulator
(:mod:`repro.sim`) owns the clock and drives the state transitions, and
the storage engine (:mod:`repro.cluster.storage`) stores real bytes on
them for the examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..models.parameters import Parameters

__all__ = ["DriveState", "NodeState", "Drive", "Node", "Cluster", "ClusterError"]


class ClusterError(RuntimeError):
    """Raised on invalid cluster operations (e.g. failing a dead drive)."""


class DriveState(enum.Enum):
    HEALTHY = "healthy"
    FAILED = "failed"
    RETIRED = "retired"  # removed from the array by a re-stripe


class NodeState(enum.Enum):
    HEALTHY = "healthy"
    REBUILDING = "rebuilding"  # a peer is reconstructing this node's data
    FAILED = "failed"


@dataclass
class Drive:
    """One disk drive inside a node.

    Attributes:
        drive_id: index within the node.
        capacity_bytes: raw capacity.
        state: current lifecycle state.
        failure_count: how many times this slot has seen a failure event
            (diagnostic; a fail-in-place drive fails at most once).
    """

    drive_id: int
    capacity_bytes: float
    state: DriveState = DriveState.HEALTHY
    failure_count: int = 0

    @property
    def is_healthy(self) -> bool:
        return self.state is DriveState.HEALTHY

    def fail(self) -> None:
        if self.state is not DriveState.HEALTHY:
            raise ClusterError(f"drive {self.drive_id} is not healthy")
        self.state = DriveState.FAILED
        self.failure_count += 1

    def retire(self) -> None:
        """Mark the failed drive as re-striped away (fail-in-place)."""
        if self.state is not DriveState.FAILED:
            raise ClusterError(f"drive {self.drive_id} is not failed")
        self.state = DriveState.RETIRED


@dataclass
class Node:
    """One storage brick.

    Attributes:
        node_id: index within the cluster.
        drives: the node's drives (fixed at manufacture; fail-in-place).
        state: node lifecycle state.
    """

    node_id: int
    drives: List[Drive]
    state: NodeState = NodeState.HEALTHY

    @classmethod
    def build(cls, node_id: int, drives_per_node: int, drive_capacity_bytes: float) -> "Node":
        if drives_per_node < 1:
            raise ClusterError("a node needs at least one drive")
        return cls(
            node_id=node_id,
            drives=[Drive(i, drive_capacity_bytes) for i in range(drives_per_node)],
        )

    # ------------------------------------------------------------------ #

    @property
    def is_available(self) -> bool:
        """Whether the node serves I/O (healthy or being rebuilt elsewhere)."""
        return self.state is NodeState.HEALTHY

    @property
    def healthy_drives(self) -> List[Drive]:
        return [d for d in self.drives if d.is_healthy]

    @property
    def healthy_drive_count(self) -> int:
        return sum(1 for d in self.drives if d.is_healthy)

    @property
    def raw_capacity_bytes(self) -> float:
        """Capacity over the surviving drives (fail-in-place shrinks it)."""
        return sum(d.capacity_bytes for d in self.healthy_drives)

    def fail(self) -> None:
        if self.state is NodeState.FAILED:
            raise ClusterError(f"node {self.node_id} is already failed")
        self.state = NodeState.FAILED

    def fail_drive(self, drive_id: int) -> Drive:
        """Fail one healthy drive; returns it."""
        if self.state is NodeState.FAILED:
            raise ClusterError(f"node {self.node_id} is failed")
        try:
            drive = self.drives[drive_id]
        except IndexError:
            raise ClusterError(f"no drive {drive_id} on node {self.node_id}") from None
        drive.fail()
        return drive

    def restripe(self, drive_id: int) -> None:
        """Complete a fail-in-place re-stripe: retire the failed drive."""
        self.drives[drive_id].retire()


class Cluster:
    """A node set of ``N`` bricks.

    Args:
        params: system parameters (node count, drives per node, capacity).

    The cluster tracks membership and health; time-dependent behaviour
    (failures, rebuild completion) is driven externally by the simulator.
    """

    def __init__(self, params: Parameters) -> None:
        self._params = params
        self._nodes: Dict[int, Node] = {
            i: Node.build(i, params.drives_per_node, params.drive_capacity_bytes)
            for i in range(params.node_set_size)
        }
        self._next_node_id = params.node_set_size

    # ------------------------------------------------------------------ #

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def size(self) -> int:
        """Nodes ever provisioned (including failed ones)."""
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterError(f"no node {node_id}") from None

    @property
    def available_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_available]

    @property
    def failed_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.state is NodeState.FAILED]

    @property
    def available_count(self) -> int:
        return len(self.available_nodes)

    # ------------------------------------------------------------------ #
    # capacity accounting (feeds the spare-provisioning policy)
    # ------------------------------------------------------------------ #

    @property
    def raw_capacity_bytes(self) -> float:
        """Raw capacity over available nodes' surviving drives."""
        return sum(n.raw_capacity_bytes for n in self.available_nodes)

    @property
    def logical_capacity_bytes(self) -> float:
        """User data the cluster is committed to holding (fixed at install:
        the original raw capacity times the utilization target)."""
        p = self._params
        return (
            p.node_set_size
            * p.drives_per_node
            * p.drive_capacity_bytes
            * p.capacity_utilization
        )

    @property
    def utilization(self) -> float:
        """Logical data over current raw capacity; crosses 1.0 when failures
        have eaten through all the over-provisioned spare."""
        raw = self.raw_capacity_bytes
        if raw <= 0:
            return float("inf")
        return self.logical_capacity_bytes / raw

    @property
    def has_spare_capacity(self) -> bool:
        """Whether another node's worth of data could still be absorbed."""
        p = self._params
        node_data = p.drives_per_node * p.drive_capacity_bytes * p.capacity_utilization
        return self.raw_capacity_bytes - self.logical_capacity_bytes >= node_data

    # ------------------------------------------------------------------ #

    def add_node(self) -> Node:
        """Provision a spare node (the paper's capacity-threshold response)."""
        p = self._params
        node = Node.build(self._next_node_id, p.drives_per_node, p.drive_capacity_bytes)
        self._nodes[self._next_node_id] = node
        self._next_node_id += 1
        return node

    def health_summary(self) -> Dict[str, int]:
        """Counts for reports: nodes healthy/failed, drives healthy/failed/retired."""
        drives = [d for n in self._nodes.values() for d in n.drives]
        return {
            "nodes_total": len(self._nodes),
            "nodes_available": self.available_count,
            "nodes_failed": len(self.failed_nodes),
            "drives_healthy": sum(1 for d in drives if d.state is DriveState.HEALTHY),
            "drives_failed": sum(1 for d in drives if d.state is DriveState.FAILED),
            "drives_retired": sum(1 for d in drives if d.state is DriveState.RETIRED),
        }

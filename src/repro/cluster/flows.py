"""Flow-level simulation of rebuild traffic over the 3-D mesh.

The reliability model abstracts the interconnect into a single sustained
per-node bandwidth (Section 6 cites [Fleiner et al. 2003] for why that is
reasonable).  This module earns that abstraction instead of assuming it:
it lays out an actual rebuild's traffic matrix on the mesh — every
surviving node sources ``(R-t)/(N-1)`` of a node's data toward its
rebuild destinations along XYZ routes — and computes each flow's
throughput under max-min fair sharing of the link capacities.  The
resulting aggregate rebuild throughput can be compared directly with the
abstract model's network term.

The max-min allocation uses the classical progressive-filling algorithm:
repeatedly find the most-loaded unsaturated link, freeze the rate of the
flows crossing it at their fair share, and continue with the residual
network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .mesh import Coordinate, MeshTopology, route_xyz

__all__ = [
    "Flow",
    "FlowAllocation",
    "RebuildFlowStudy",
    "flow_links",
    "max_min_allocate",
    "rebuild_flow_study",
]

Link = Tuple[Coordinate, Coordinate]


@dataclass(frozen=True)
class Flow:
    """One point-to-point transfer demand.

    Attributes:
        source: origin coordinate.
        destination: target coordinate.
        volume_bytes: bytes to move (used for completion-time estimates).
    """

    source: Coordinate
    destination: Coordinate
    volume_bytes: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("flow endpoints must differ")
        if self.volume_bytes <= 0:
            raise ValueError("flow volume must be positive")


@dataclass(frozen=True)
class FlowAllocation:
    """Result of a max-min fair allocation.

    Attributes:
        rates: bytes/second per flow, same order as the input.
        bottleneck_links: links that saturated during filling.
    """

    rates: Tuple[float, ...]
    bottleneck_links: Tuple[Link, ...]

    @property
    def total_rate(self) -> float:
        return sum(self.rates)

    @property
    def min_rate(self) -> float:
        return min(self.rates)

    def completion_time_seconds(self, flows: Sequence[Flow]) -> float:
        """Time until the slowest flow finishes at these (fixed) rates."""
        return max(f.volume_bytes / r for f, r in zip(flows, self.rates))


def _canonical(a: Coordinate, b: Coordinate) -> Link:
    return (a, b) if a <= b else (b, a)


def flow_links(mesh: MeshTopology, flow: Flow) -> List[Link]:
    """The (undirected) links an XYZ-routed flow crosses."""
    path = route_xyz(flow.source, flow.destination)
    mesh._check(flow.source)
    mesh._check(flow.destination)
    return [_canonical(a, b) for a, b in zip(path, path[1:])]


def max_min_allocate(
    mesh: MeshTopology,
    flows: Sequence[Flow],
    link_capacity_bps: Optional[float] = None,
) -> FlowAllocation:
    """Max-min fair rates for XYZ-routed flows on the mesh.

    Args:
        mesh: the topology (supplies default link capacity).
        flows: transfer demands.
        link_capacity_bps: per-direction link capacity in bits/second
            (defaults to the mesh's ``link_bandwidth_bps``).

    Returns:
        A :class:`FlowAllocation` with rates in bytes/second.
    """
    if not flows:
        raise ValueError("need at least one flow")
    capacity_bytes = (link_capacity_bps or mesh.link_bandwidth_bps) / 8.0

    routes = [flow_links(mesh, f) for f in flows]
    remaining_capacity: Dict[Link, float] = {}
    link_users: Dict[Link, set] = {}
    for i, links in enumerate(routes):
        for link in links:
            remaining_capacity.setdefault(link, capacity_bytes)
            link_users.setdefault(link, set()).add(i)

    rates = [0.0] * len(flows)
    active = set(range(len(flows)))
    bottlenecks: List[Link] = []
    while active:
        # Fair share each link could give its active users.
        best_link = None
        best_share = float("inf")
        for link, users in link_users.items():
            live = users & active
            if not live:
                continue
            share = remaining_capacity[link] / len(live)
            if share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            # No active flow crosses any constrained link (cannot happen on
            # a mesh, but guard anyway).
            break
        frozen = link_users[best_link] & active
        bottlenecks.append(best_link)
        for i in frozen:
            rates[i] += best_share
            active.discard(i)
            for link in routes[i]:
                remaining_capacity[link] -= best_share
    return FlowAllocation(rates=tuple(rates), bottleneck_links=tuple(bottlenecks))


@dataclass(frozen=True)
class RebuildFlowStudy:
    """Comparison of the mesh-level rebuild with the abstract model.

    Attributes:
        aggregate_rate_bytes_per_sec: sum of all rebuild flow rates.
        per_destination_rate: mean inbound rate per rebuilding node.
        slowest_flow_rate: the max-min minimum.
        abstract_node_bandwidth: what the single-link abstraction assumes
            per node (sustained x one link).
    """

    aggregate_rate_bytes_per_sec: float
    per_destination_rate: float
    slowest_flow_rate: float
    abstract_node_bandwidth: float

    @property
    def abstraction_ratio(self) -> float:
        """Per-destination mesh throughput over the abstract assumption;
        ~1 means the single-link reduction is faithful."""
        return self.per_destination_rate / self.abstract_node_bandwidth


def rebuild_flow_study(
    mesh: MeshTopology,
    failed_node: int,
    source_count: int,
    sustained_fraction: float = 0.64,
) -> RebuildFlowStudy:
    """Lay a node rebuild's flows on the mesh and measure throughput.

    The failed node's data is regenerated on every *other* node (even
    spare-space distribution); each destination pulls from
    ``source_count`` peers (the ``R - t`` surviving stripe elements),
    chosen round-robin for balance.

    Args:
        mesh: topology (node count must cover the ids used).
        failed_node: linear id of the dead brick.
        source_count: peers each destination reads from.
        sustained_fraction: fraction of raw link bandwidth achievable.

    Returns:
        A :class:`RebuildFlowStudy`.
    """
    n = mesh.node_count
    if not 0 <= failed_node < n:
        raise ValueError("failed node out of range")
    if not 1 <= source_count < n - 1:
        raise ValueError("need 1 <= source_count < N - 1")
    survivors = [i for i in range(n) if i != failed_node]
    flows: List[Flow] = []
    for idx, dest in enumerate(survivors):
        peers = [s for s in survivors if s != dest]
        for j in range(source_count):
            src = peers[(idx * source_count + j) % len(peers)]
            flows.append(
                Flow(
                    source=mesh.coordinate_of(src),
                    destination=mesh.coordinate_of(dest),
                )
            )
    allocation = max_min_allocate(
        mesh, flows, link_capacity_bps=mesh.link_bandwidth_bps * sustained_fraction
    )
    per_dest = allocation.total_rate / len(survivors)
    abstract = mesh.link_bandwidth_bps / 8.0 * sustained_fraction
    return RebuildFlowStudy(
        aggregate_rate_bytes_per_sec=allocation.total_rate,
        per_destination_rate=per_dest,
        slowest_flow_rate=allocation.min_rate,
        abstract_node_bandwidth=abstract,
    )

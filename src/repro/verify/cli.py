"""Command-line entry point: run the verification battery.

Installed as ``repro-verify``::

    repro-verify --smoke             # fast: all invariants, no Monte Carlo
    repro-verify                     # full: adds the seeded simulation oracle
    repro-verify --list              # show registered invariants and exit
    repro-verify --only raid-level-dominance --only mttdl-monotone-nft
    repro-verify --json report.json  # machine-readable violations report
    repro-verify --set node_set_size=128 --jobs 4
    repro-verify --smoke --trace verify.jsonl --report
                                     # per-invariant span trace + timing tree

Exit status is 0 when every invariant held and 1 when anything was
violated, so the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from ..cli_common import (
    add_observability_arguments,
    apply_param_overrides,
    observed_session,
)
from ..models.parameters import Parameters
from .lattice import make_context
from .registry import REGISTRY

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Check the paper-derived invariants, cross-method oracles and "
            "engine fault-degradation guarantees across the nine "
            "configurations and a parameter lattice."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast pass: every deterministic invariant, Monte Carlo off",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=200,
        metavar="N",
        help="Monte-Carlo replicas for the simulation oracle "
        "(default 200; ignored under --smoke)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="master seed for every stochastic check (default 0)",
    )
    parser.add_argument(
        "--sigmas",
        type=float,
        default=5.0,
        metavar="K",
        help="Monte-Carlo agreement band in standard errors (default 5)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluation / replica fan-out width (default 1)",
    )
    parser.add_argument(
        "--max-fault-tolerance",
        type=int,
        default=3,
        metavar="T",
        help="audit configurations up to this cross-node tolerance "
        "(default 3: the paper's nine)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="NAME",
        help="run only the named invariant (repeatable)",
    )
    parser.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG",
        help="run only invariants carrying TAG (repeatable)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a baseline parameter the lattice grows from "
        "(repeatable)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered invariants and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human-readable report on stdout",
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)

    if args.list:
        width = max((len(inv.name) for inv in REGISTRY), default=0)
        for inv in REGISTRY:
            tags = ",".join(inv.tags)
            print(f"{inv.name:<{width}}  [{tags}]  {inv.description}")
        return 0

    base = apply_param_overrides(Parameters.baseline(), args.set, parser.error)
    ctx = make_context(
        base,
        jobs=args.jobs,
        mc_replicas=0 if args.smoke else max(0, args.replicas),
        mc_seed=args.seed,
        mc_sigmas=args.sigmas,
        max_fault_tolerance=args.max_fault_tolerance,
    )
    session = observed_session(args, root="repro-verify")
    with session if session is not None else contextlib.nullcontext():
        if session is not None:
            session.add_metrics_source(ctx.engine.metrics_snapshot)
        try:
            report = REGISTRY.run(
                ctx, names=args.only or None, tags=args.tag or None
            )
        except KeyError as exc:
            parser.error(str(exc.args[0] if exc.args else exc))

    if not args.quiet:
        print(report.format_text())
    if args.json == "-":
        print(report.to_json())
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        if not args.quiet:
            print(f"report written to {args.json}", file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

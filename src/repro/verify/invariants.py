"""Paper-derived invariants, registered into the default registry.

Each check encodes an *ordering or conservation law the paper's argument
rests on*, not a pinned number: more redundancy never hurts, internal
RAID levels dominate in order, critical-set fractions are proper
fractions that shrink with depth, generators conserve probability, and
the closed forms track the exact solves inside their declared envelopes.
A refactor that shifts a value but preserves the orderings passes; one
that flips a single ordering anywhere on the lattice fails loudly.

Importing this module (or :mod:`repro.verify`) populates
:data:`repro.verify.registry.REGISTRY`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.solvers import SolveOptions, SolveRequest, solve
from ..core.sparse import SparseChain
from ..models.configurations import Configuration
from ..models.critical_sets import critical_fraction, k2_factor, k3_factor
from ..models.raid import InternalRaid
from .registry import VerifyContext, Violation, invariant

__all__ = [
    "CLOSED_FORM_REL_ERROR_BOUNDS",
    "SPARSE_DENSE_REL_TOL",
    "closed_form_bound",
]

#: Declared agreement between the sparse-iterative and dense-GTH
#: backends on the same chain.  Both are componentwise-accurate direct
#: eliminations (the sparse backend certifies its answer with iterative
#: refinement against this tolerance), so the bound is tight — far below
#: any modeling error — while allowing the different elimination
#: orderings their few ulps of rounding freedom.
SPARSE_DENSE_REL_TOL = 1e-9

#: Slack for "non-strict" float comparisons: a genuine tie (equal chains)
#: must pass, but anything past a few ulps is a real ordering flip.
_ORDER_SLACK = 1e-9

#: Declared closed-form relative-error envelopes as a function of the
#: internal redundancy and the cross-node fault tolerance ``k``, valid on
#: the default verification lattice (the paper's ``mu >> N lambda``
#: regime).  For no-internal-RAID nodes the error *shrinks* with ``k``
#: (the dropped numerator terms lose weight as rebuilds stack); internal
#: RAID starts far tighter because the array absorbs the hard-error term.
CLOSED_FORM_REL_ERROR_BOUNDS: Dict[bool, Dict[int, float]] = {
    # internal RAID present?
    False: {1: 0.90, 2: 0.50, 3: 0.10},
    True: {1: 0.10, 2: 0.05, 3: 0.05},
}


def closed_form_bound(config: Configuration) -> float:
    """The declared |approx - exact| / exact bound for ``config``."""
    per_k = CLOSED_FORM_REL_ERROR_BOUNDS[config.internal is not InternalRaid.NONE]
    return per_k.get(config.node_fault_tolerance, 0.50)


def _by_internal(
    ctx: VerifyContext,
) -> Dict[InternalRaid, List[Configuration]]:
    groups: Dict[InternalRaid, List[Configuration]] = {}
    for config in ctx.configs:
        groups.setdefault(config.internal, []).append(config)
    for members in groups.values():
        members.sort(key=lambda c: c.node_fault_tolerance)
    return groups


def _by_nft(ctx: VerifyContext) -> Dict[int, Dict[InternalRaid, Configuration]]:
    groups: Dict[int, Dict[InternalRaid, Configuration]] = {}
    for config in ctx.configs:
        groups.setdefault(config.node_fault_tolerance, {})[config.internal] = config
    return groups


# --------------------------------------------------------------------- #
# conservation
# --------------------------------------------------------------------- #


@invariant(
    "generator-conservation",
    "Every node chain's generator conserves probability: rows sum to "
    "zero, off-diagonal rates are non-negative, absorbing rows are null "
    "and the initial state is transient.",
    tags=("core", "smoke"),
)
def check_generator_conservation(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for i, params in enumerate(ctx.points):
        for config in ctx.configs:
            diag = config.chain(params).diagnostics()
            checked += 1
            if diag.ok(atol=1e-9) and diag.initial_is_transient and diag.num_absorbing:
                continue
            violations.append(
                Violation(
                    invariant="generator-conservation",
                    message="generator violates conservation laws",
                    config=config.key,
                    point=ctx.point_label(i),
                    details={
                        "max_row_residual": diag.max_row_residual,
                        "min_off_diagonal": diag.min_off_diagonal,
                        "absorbing_rows_null": diag.absorbing_rows_null,
                        "initial_is_transient": diag.initial_is_transient,
                        "num_absorbing": diag.num_absorbing,
                    },
                )
            )
    return checked, violations


@invariant(
    "spec-legacy-equivalence",
    "Every configuration's chain built through the compiled declarative "
    "spec is bitwise identical — state order, generator matrix, initial "
    "state — to the legacy imperative builder it superseded.",
    tags=("core", "spec", "smoke"),
)
def check_spec_legacy_equivalence(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for i, params in enumerate(ctx.points):
        for config in ctx.configs:
            checked += 1
            model = config.model(params)
            spec_chain = model.chain()
            legacy_chain = model.legacy_chain()
            same_states = spec_chain.states == legacy_chain.states
            same_initial = spec_chain.initial_state == legacy_chain.initial_state
            same_generator = same_states and np.array_equal(
                spec_chain.generator_matrix(), legacy_chain.generator_matrix()
            )
            if same_states and same_initial and same_generator:
                continue
            violations.append(
                Violation(
                    invariant="spec-legacy-equivalence",
                    message="spec-compiled chain differs from legacy builder",
                    config=config.key,
                    point=ctx.point_label(i),
                    details={
                        "states_equal": same_states,
                        "initial_equal": same_initial,
                        "generator_bitwise_equal": same_generator,
                    },
                )
            )
    return checked, violations


@invariant(
    "sparse-dense-agreement",
    "For every chain family at every lattice point, the sparse-iterative "
    "solver backend reproduces the dense GTH MTTDL within the declared "
    "relative tolerance.",
    tags=("core", "solvers", "smoke"),
)
def check_sparse_dense_agreement(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    dense_table = ctx.mttdl_table("analytic")
    options = SolveOptions(backend="sparse_iterative")
    violations: List[Violation] = []
    checked = 0
    for i, params in enumerate(ctx.points):
        for config in ctx.configs:
            checked += 1
            dense = dense_table[(config.key, i)]
            sparse_chain = SparseChain.from_ctmc(config.chain(params))
            result = solve(
                SolveRequest(sparse=sparse_chain, options=options)
            )
            sparse = result.values[0]
            rel = abs(sparse - dense) / dense
            if rel <= SPARSE_DENSE_REL_TOL and result.converged:
                continue
            violations.append(
                Violation(
                    invariant="sparse-dense-agreement",
                    message=(
                        f"sparse backend off by {rel:.3g} "
                        f"(declared tolerance {SPARSE_DENSE_REL_TOL:g})"
                    ),
                    config=config.key,
                    point=ctx.point_label(i),
                    details={
                        "dense_mttdl": dense,
                        "sparse_mttdl": sparse,
                        "relative_difference": rel,
                        "converged": result.converged,
                        "residual": result.residual,
                        "states": sparse_chain.num_states,
                        "nnz": sparse_chain.nnz,
                    },
                )
            )
    return checked, violations


# --------------------------------------------------------------------- #
# orderings
# --------------------------------------------------------------------- #


@invariant(
    "mttdl-monotone-nft",
    "At fixed internal redundancy, MTTDL is non-decreasing in the "
    "cross-node fault tolerance (NFT=2 beats NFT=1, NFT=3 beats NFT=2).",
    tags=("models", "ordering", "smoke"),
)
def check_mttdl_monotone_nft(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    table = ctx.mttdl_table("analytic")
    violations: List[Violation] = []
    checked = 0
    for i, _ in enumerate(ctx.points):
        for internal, members in _by_internal(ctx).items():
            for lo, hi in zip(members, members[1:]):
                checked += 1
                lo_v = table[(lo.key, i)]
                hi_v = table[(hi.key, i)]
                if hi_v >= lo_v * (1.0 - _ORDER_SLACK):
                    continue
                violations.append(
                    Violation(
                        invariant="mttdl-monotone-nft",
                        message=(
                            f"MTTDL decreased when NFT rose from "
                            f"{lo.node_fault_tolerance} to "
                            f"{hi.node_fault_tolerance}"
                        ),
                        config=hi.key,
                        point=ctx.point_label(i),
                        details={"lower_nft_mttdl": lo_v, "higher_nft_mttdl": hi_v},
                    )
                )
    return checked, violations


@invariant(
    "raid-level-dominance",
    "At fixed cross-node fault tolerance, internal RAID 6 dominates "
    "internal RAID 5, which dominates no internal RAID.",
    tags=("models", "ordering", "smoke"),
)
def check_raid_level_dominance(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    order = (InternalRaid.NONE, InternalRaid.RAID5, InternalRaid.RAID6)
    table = ctx.mttdl_table("analytic")
    violations: List[Violation] = []
    checked = 0
    for i, _ in enumerate(ctx.points):
        for nft, members in _by_nft(ctx).items():
            present = [members[lvl] for lvl in order if lvl in members]
            for weaker, stronger in zip(present, present[1:]):
                checked += 1
                weak_v = table[(weaker.key, i)]
                strong_v = table[(stronger.key, i)]
                if strong_v >= weak_v * (1.0 - _ORDER_SLACK):
                    continue
                violations.append(
                    Violation(
                        invariant="raid-level-dominance",
                        message=(
                            f"{stronger.key} has lower MTTDL than "
                            f"{weaker.key} at NFT {nft}"
                        ),
                        config=stronger.key,
                        point=ctx.point_label(i),
                        details={
                            "weaker_mttdl": weak_v,
                            "stronger_mttdl": strong_v,
                        },
                    )
                )
    return checked, violations


@invariant(
    "mttdl-monotone-mttf",
    "Better hardware never hurts: along every lattice edge that raises "
    "exactly one component MTTF, MTTDL does not decrease.",
    tags=("models", "ordering", "smoke"),
)
def check_mttdl_monotone_mttf(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    table = ctx.mttdl_table("analytic")
    dicts = [p.to_dict() for p in ctx.points]
    axes = ("drive_mttf_hours", "node_mttf_hours")
    edges: List[Tuple[int, int, str]] = []
    for i, pi in enumerate(dicts):
        for j, pj in enumerate(dicts):
            if i == j:
                continue
            delta = {k for k in pi if pi[k] != pj[k]}
            if len(delta) == 1:
                (axis,) = delta
                if axis in axes and pj[axis] > pi[axis]:
                    edges.append((i, j, axis))
    violations: List[Violation] = []
    checked = 0
    for config in ctx.configs:
        for i, j, axis in edges:
            checked += 1
            lo_v = table[(config.key, i)]
            hi_v = table[(config.key, j)]
            if hi_v >= lo_v * (1.0 - _ORDER_SLACK):
                continue
            violations.append(
                Violation(
                    invariant="mttdl-monotone-mttf",
                    message=f"MTTDL decreased when {axis} improved",
                    config=config.key,
                    point=ctx.point_label(j),
                    details={
                        "axis": axis,
                        "worse_hardware_mttdl": lo_v,
                        "better_hardware_mttdl": hi_v,
                    },
                )
            )
    return checked, violations


# --------------------------------------------------------------------- #
# critical-set combinatorics
# --------------------------------------------------------------------- #

#: (N, R) pairs swept in addition to the lattice's own sizes.
_CRITICAL_SET_GRID = ((8, 4), (16, 8), (64, 8), (64, 16), (128, 8), (256, 16))


@invariant(
    "critical-set-fractions",
    "Critical-set fractions are proper and nested: "
    "0 <= k3 <= k2 <= 1, and the critical fraction is non-increasing in "
    "the number of concurrent node failures.",
    tags=("models", "combinatorics", "smoke"),
)
def check_critical_set_fractions(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    sizes = set(_CRITICAL_SET_GRID)
    for params in ctx.points:
        sizes.add((params.node_set_size, params.redundancy_set_size))
    violations: List[Violation] = []
    checked = 0
    for n, r in sorted(sizes):
        checked += 1
        k2 = k2_factor(n, r)
        k3 = k3_factor(n, r)
        if not 0.0 <= k3 <= k2 <= 1.0:
            violations.append(
                Violation(
                    invariant="critical-set-fractions",
                    message="k3 <= k2 <= 1 violated",
                    point={"node_set_size": n, "redundancy_set_size": r},
                    details={"k2": k2, "k3": k3},
                )
            )
        fractions = [critical_fraction(n, r, j) for j in range(1, r + 2)]
        if any(b > a + _ORDER_SLACK for a, b in zip(fractions, fractions[1:])):
            violations.append(
                Violation(
                    invariant="critical-set-fractions",
                    message="critical fraction increased with failure depth",
                    point={"node_set_size": n, "redundancy_set_size": r},
                    details={"fractions": fractions},
                )
            )
        if fractions[0] != 1.0:
            violations.append(
                Violation(
                    invariant="critical-set-fractions",
                    message="critical fraction at one failure must be 1",
                    point={"node_set_size": n, "redundancy_set_size": r},
                    details={"fraction": fractions[0]},
                )
            )
    return checked, violations


# --------------------------------------------------------------------- #
# closed forms vs exact solves
# --------------------------------------------------------------------- #


@invariant(
    "closed-form-envelope",
    "The paper's closed forms track the exact chain solves within their "
    "declared k-dependent relative-error envelopes, and err on the "
    "conservative (pessimistic) side.",
    tags=("models", "closed-form", "smoke"),
)
def check_closed_form_envelope(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    exact = ctx.mttdl_table("analytic")
    approx = ctx.mttdl_table("closed_form")
    violations: List[Violation] = []
    checked = 0
    for i, _ in enumerate(ctx.points):
        for config in ctx.configs:
            checked += 1
            ex = exact[(config.key, i)]
            ap = approx[(config.key, i)]
            rel = abs(ap - ex) / ex
            bound = closed_form_bound(config)
            if rel > bound:
                violations.append(
                    Violation(
                        invariant="closed-form-envelope",
                        message=(
                            f"closed form off by {rel:.3g} "
                            f"(declared bound {bound:g})"
                        ),
                        config=config.key,
                        point=ctx.point_label(i),
                        details={"exact": ex, "approx": ap, "bound": bound},
                    )
                )
            if ap > ex * (1.0 + _ORDER_SLACK):
                violations.append(
                    Violation(
                        invariant="closed-form-envelope",
                        message="closed form is optimistic (approx > exact)",
                        config=config.key,
                        point=ctx.point_label(i),
                        details={"exact": ex, "approx": ap},
                    )
                )
    return checked, violations

"""Parameter lattices for verification sweeps.

The paper's conclusions are claimed over an *operating envelope*, not a
single point, so the verification pass audits every invariant on a
cartesian lattice around the Section 6 baseline: drive MTTF, node MTTF
and the hard-error rate each at low / baseline / high.  Three axes with
three values give 27 points; crossed with the nine configurations that
is 243 (configuration, parameters) evaluations per method — well inside
what one batched engine sweep absorbs.

The axes deliberately stay inside the paper's regime (``mu >> N lambda``
and hard-error probabilities well below 1): outside it the closed forms
are *documented* to diverge, which is a property of the approximations,
not a bug the verifier should page anyone about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.sweep import SweepEngine
from ..models.configurations import all_configurations
from ..models.parameters import Parameters
from .registry import VerifyContext

__all__ = [
    "DEFAULT_AXES",
    "build_lattice",
    "default_lattice",
    "make_context",
]

#: Axis name -> the three swept values (low, baseline, high).
DEFAULT_AXES: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("drive_mttf_hours", (150_000.0, 300_000.0, 600_000.0)),
    ("node_mttf_hours", (200_000.0, 400_000.0, 800_000.0)),
    ("hard_error_rate_per_bit", (1e-15, 1e-14, 1e-13)),
)


def build_lattice(
    base: Parameters,
    axes: Sequence[Tuple[str, Sequence[float]]],
) -> List[Parameters]:
    """Every combination of ``axes`` values applied to ``base``.

    Axis order is preserved, the last axis varying fastest, so lattice
    indices are stable across runs (violation reports stay comparable).
    """
    points = [base]
    for name, values in axes:
        points = [
            p.replace(**{name: type(getattr(p, name))(v)})
            for p in points
            for v in values
        ]
    return points


def default_lattice(base: Optional[Parameters] = None) -> List[Parameters]:
    """The standard 27-point verification lattice around ``base``."""
    if base is None:
        base = Parameters.baseline()
    return build_lattice(base, DEFAULT_AXES)


def make_context(
    base: Optional[Parameters] = None,
    *,
    jobs: int = 1,
    cache: bool = False,
    mc_replicas: int = 0,
    mc_seed: int = 0,
    mc_sigmas: float = 5.0,
    mc_acceleration: float = 200.0,
    max_fault_tolerance: int = 3,
) -> VerifyContext:
    """A ready-to-run context: the 3x``max_fault_tolerance`` configuration
    grid crossed with the default lattice.

    ``mc_replicas=0`` (the default, and the CLI's ``--smoke`` mode) skips
    the Monte-Carlo oracle; everything else still runs.
    """
    if base is None:
        base = Parameters.baseline()
    return VerifyContext(
        configs=all_configurations(max_fault_tolerance),
        points=default_lattice(base),
        engine=SweepEngine(base, jobs=jobs, cache=cache),
        base=base,
        mc_replicas=mc_replicas,
        mc_seed=mc_seed,
        mc_sigmas=mc_sigmas,
        mc_acceleration=mc_acceleration,
    )

"""The invariant registry.

An *invariant* is a paper-derived property the whole model stack must
satisfy at every operating point — MTTDL monotone in fault tolerance,
RAID 6 dominating RAID 5 dominating no-RAID, ``k3 <= k2 <= 1``, generator
rows summing to zero, closed forms tracking the exact solves within their
declared envelopes.  Each invariant is a named, tagged check function
registered here; :meth:`InvariantRegistry.run` executes a selection of
them against a :class:`VerifyContext` and collects a
:class:`~repro.verify.report.VerificationReport`.

Check functions receive the context and return
``(points_checked, [Violation, ...])``; an empty violation list means the
invariant held everywhere it was evaluated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs
from ..engine.sweep import SweepEngine
from ..models.configurations import ALL_CONFIGURATIONS, Configuration
from ..models.parameters import Parameters

__all__ = [
    "CheckFn",
    "Invariant",
    "InvariantCheck",
    "InvariantRegistry",
    "REGISTRY",
    "VerifyContext",
    "Violation",
    "invariant",
]


@dataclass(frozen=True)
class Violation:
    """One observed breach of one invariant at one evaluation point.

    Attributes:
        invariant: name of the violated invariant.
        message: human-readable statement of what failed.
        config: configuration key (``"ft2_raid5"``) when applicable.
        point: the parameter coordinates that witnessed the breach (only
            the fields that differ from the context's base parameters).
        details: free-form numeric evidence (observed values, bounds).
    """

    invariant: str
    message: str
    config: Optional[str] = None
    point: Optional[Mapping[str, Any]] = None
    details: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "config": self.config,
            "point": dict(self.point) if self.point else None,
            "details": dict(self.details) if self.details else None,
        }


@dataclass(frozen=True)
class InvariantCheck:
    """Outcome of running one invariant: how much was checked, what broke."""

    name: str
    description: str
    tags: Tuple[str, ...]
    checked: int
    violations: Tuple[Violation, ...]
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def skipped(self) -> bool:
        """An invariant that evaluated nothing (e.g. Monte Carlo with
        ``mc_replicas=0``) neither passed nor failed."""
        return self.checked == 0 and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "tags": list(self.tags),
            "checked": self.checked,
            "ok": self.ok,
            "skipped": self.skipped,
            "seconds": self.seconds,
            "violations": [v.to_dict() for v in self.violations],
        }


CheckFn = Callable[["VerifyContext"], Tuple[int, List[Violation]]]


@dataclass(frozen=True)
class Invariant:
    """A registered invariant: identity plus its check function."""

    name: str
    description: str
    tags: Tuple[str, ...]
    check: CheckFn

    def run(self, ctx: "VerifyContext") -> InvariantCheck:
        start = time.perf_counter()
        with obs.span("verify.invariant", invariant=self.name) as inv_span:
            checked, violations = self.check(ctx)
            inv_span.set("checked", checked)
            inv_span.set("violations", len(violations))
        metrics = obs.global_metrics()
        metrics.counter("verify.checks").inc(checked)
        metrics.counter("verify.violations").inc(len(violations))
        return InvariantCheck(
            name=self.name,
            description=self.description,
            tags=self.tags,
            checked=checked,
            violations=tuple(violations),
            seconds=time.perf_counter() - start,
        )


class VerifyContext:
    """Everything an invariant check needs: the configurations, the
    parameter lattice, and memoized engine-backed evaluation tables.

    The context evaluates each ``(configuration, point, method)`` at most
    once — through :class:`~repro.engine.sweep.SweepEngine`, so the whole
    registry pass costs one batched sweep per method — and hands the
    invariants a shared read-only table.

    Args:
        configs: configurations under audit (the paper's nine by default).
        points: the parameter lattice (see :mod:`repro.verify.lattice`).
        engine: sweep engine to evaluate through; a fresh serial,
            cache-less engine when omitted (so a verification run never
            trusts a previous run's disk cache).
        base: baseline the lattice was grown from; used only to label
            violation points by their differing fields.
        mc_replicas: Monte-Carlo replicas for the simulation oracle;
            0 disables it (the fast "smoke" mode).
        mc_seed: master seed for every Monte-Carlo draw — runs are
            reproducible by construction.
        mc_sigmas: agreement band, in standard errors, for the
            Monte-Carlo oracle.
        mc_acceleration: failure-rate acceleration applied before
            simulating (see :func:`repro.sim.accelerated_parameters`).
    """

    def __init__(
        self,
        configs: Optional[Sequence[Configuration]] = None,
        points: Optional[Sequence[Parameters]] = None,
        engine: Optional[SweepEngine] = None,
        *,
        base: Optional[Parameters] = None,
        mc_replicas: int = 0,
        mc_seed: int = 0,
        mc_sigmas: float = 5.0,
        mc_acceleration: float = 200.0,
    ) -> None:
        self.base = base if base is not None else Parameters.baseline()
        self.configs: Tuple[Configuration, ...] = tuple(
            configs if configs is not None else ALL_CONFIGURATIONS
        )
        self.points: Tuple[Parameters, ...] = tuple(
            points if points is not None else (self.base,)
        )
        self.engine = engine if engine is not None else SweepEngine(jobs=1)
        self.mc_replicas = int(mc_replicas)
        self.mc_seed = int(mc_seed)
        self.mc_sigmas = float(mc_sigmas)
        self.mc_acceleration = float(mc_acceleration)
        self._tables: Dict[str, Dict[Tuple[str, int], float]] = {}

    # ------------------------------------------------------------------ #
    # evaluation tables
    # ------------------------------------------------------------------ #

    def mttdl_table(self, method: str = "analytic") -> Dict[Tuple[str, int], float]:
        """MTTDL (hours) for every (config, point), keyed by
        ``(config.key, point_index)``; evaluated once per method through
        the engine and memoized."""
        table = self._tables.get(method)
        if table is None:
            pairs = [
                (config, params)
                for params in self.points
                for config in self.configs
            ]
            with obs.span("verify.table", method=method, points=len(pairs)):
                results = self.engine.evaluate_many(pairs, method=method)
            table = {}
            index = 0
            for i, _ in enumerate(self.points):
                for config in self.configs:
                    table[(config.key, i)] = results[index].mttdl_hours
                    index += 1
            self._tables[method] = table
        return table

    @property
    def total_points(self) -> int:
        return len(self.configs) * len(self.points)

    # ------------------------------------------------------------------ #
    # labeling
    # ------------------------------------------------------------------ #

    def point_label(self, index: int) -> Dict[str, Any]:
        """The fields of point ``index`` that differ from the base
        parameters — compact coordinates for violation reports."""
        point = self.points[index].to_dict()
        base = self.base.to_dict()
        diff = {k: v for k, v in point.items() if base.get(k) != v}
        return diff if diff else {"point": index}


class InvariantRegistry:
    """Ordered name -> :class:`Invariant` mapping with selection and run."""

    def __init__(self) -> None:
        self._invariants: Dict[str, Invariant] = {}

    def register(self, inv: Invariant) -> Invariant:
        if inv.name in self._invariants:
            raise ValueError(f"invariant {inv.name!r} already registered")
        self._invariants[inv.name] = inv
        return inv

    def invariant(
        self,
        name: str,
        description: str,
        tags: Iterable[str] = (),
    ) -> Callable[[CheckFn], CheckFn]:
        """Decorator form of :meth:`register`; returns the bare function
        so modules can keep calling their checks directly."""

        def decorate(fn: CheckFn) -> CheckFn:
            self.register(
                Invariant(
                    name=name,
                    description=description,
                    tags=tuple(tags),
                    check=fn,
                )
            )
            return fn

        return decorate

    def get(self, name: str) -> Invariant:
        try:
            return self._invariants[name]
        except KeyError:
            raise KeyError(
                f"unknown invariant {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> List[str]:
        return list(self._invariants)

    def __len__(self) -> int:
        return len(self._invariants)

    def __iter__(self):
        return iter(self._invariants.values())

    def select(
        self,
        names: Optional[Sequence[str]] = None,
        tags: Optional[Sequence[str]] = None,
    ) -> List[Invariant]:
        """Invariants filtered by explicit names and/or required tags."""
        chosen = [self.get(n) for n in names] if names else list(self)
        if tags:
            wanted = set(tags)
            chosen = [inv for inv in chosen if wanted & set(inv.tags)]
        return chosen

    def run(
        self,
        ctx: VerifyContext,
        names: Optional[Sequence[str]] = None,
        tags: Optional[Sequence[str]] = None,
    ) -> "VerificationReport":
        """Run the selected invariants and assemble the report."""
        from .report import VerificationReport

        checks = tuple(inv.run(ctx) for inv in self.select(names, tags))
        return VerificationReport(
            checks=checks,
            configs=tuple(c.key for c in ctx.configs),
            lattice_points=len(ctx.points),
            mc_replicas=ctx.mc_replicas,
            mc_seed=ctx.mc_seed,
            provenance=ctx.engine.provenance(),
            base_params_key=ctx.base.cache_key(),
        )


#: The process-wide default registry the paper invariants register into.
REGISTRY = InvariantRegistry()

#: Module-level decorator bound to :data:`REGISTRY`.
invariant = REGISTRY.invariant

"""Engine fault injection: prove failures degrade to recomputation.

The engine promises that its three accelerators — the on-disk result
cache, the process pool and the compiled-spec cache — can *never* change
a result, only its cost.  This module attacks each one and checks the
promise:

* every cache entry is corrupted (garbage bytes), truncated, or replaced
  with a schema-mismatched payload between a warm-up sweep and a re-read;
* pool workers are killed (``os._exit``) the moment they pick up a chunk,
  via the :data:`~repro.engine.faultpoints.POOL_WORKER_START` fault point;
* the solver's compiled-spec cache is poisoned: every entry is replaced
  with a compiled chain whose structure does not match the hash it is
  stored under, which the cache must detect (its per-lookup hash check)
  and recompile from the spec.

After each attack the engine must return results **bitwise identical** to
a cold, serial, cache-less reference run.  :func:`fault_drill` runs the
whole battery and is registered as the ``engine-fault-degradation``
invariant.
"""

from __future__ import annotations

import contextlib
import logging
import os
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.spec import CompiledChain, ModelSpec, param
from ..core.template import ChainTemplate
from ..engine import faultpoints
from ..engine.cache import DiskCache
from ..engine.sweep import SweepEngine, point_payload_valid
from ..models.configurations import Configuration
from ..models.parameters import Parameters
from .registry import VerifyContext, Violation, invariant

__all__ = [
    "CACHE_CORRUPTION_MODES",
    "corrupt_cache_dir",
    "fault_drill",
    "kill_worker_action",
    "poison_chain_memo",
    "poison_spec_cache",
]

#: The on-disk damage patterns the drill (and the regression tests) plant.
CACHE_CORRUPTION_MODES = ("garbage", "truncate", "schema", "non-dict")


def corrupt_cache_dir(directory, mode: str = "garbage") -> int:
    """Damage every ``*.json`` entry under ``directory``; returns a count.

    Modes: ``"garbage"`` (unparseable bytes), ``"truncate"`` (cut the
    JSON mid-token), ``"schema"`` (valid dict, wrong layout), and
    ``"non-dict"`` (valid JSON that is not an object).
    """
    if mode not in CACHE_CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; use one of "
            f"{CACHE_CORRUPTION_MODES}"
        )
    damaged = 0
    for entry in Path(directory).glob("*.json"):
        if mode == "garbage":
            entry.write_bytes(b"\x00\xffnot json at all\xfe")
        elif mode == "truncate":
            text = entry.read_text(encoding="utf-8")
            entry.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
        elif mode == "schema":
            entry.write_text('{"mttdl_hours": "NaN-ish string"}', encoding="utf-8")
        else:  # non-dict
            entry.write_text("[1, 2, 3]", encoding="utf-8")
        damaged += 1
    return damaged


def kill_worker_action(exit_code: int = 17) -> Callable[[], None]:
    """An action for :data:`~repro.engine.faultpoints.POOL_WORKER_START`
    that kills the worker process outright.

    ``os._exit`` skips every cleanup handler — exactly how the OOM killer
    or a SIGKILL would take a worker down — so the pool sees a broken
    process, not a tidy exception.
    """

    def kill() -> None:
        os._exit(exit_code)

    return kill


def poison_chain_memo(memo) -> int:
    """Replace every cached template in a ``ChainStructureMemo`` with a
    stale variant whose edge set no longer matches the real topology.

    A correct memo must detect the mismatch on the next lookup and
    rebuild; a memo that blindly trusts its key would bind the wrong
    rates.  Returns the number of templates poisoned.
    """
    poisoned = 0
    for key, template in list(memo._templates.items()):
        stale_edges = template.edge_keys[:-1] if template.edge_keys else ()
        memo._templates[key] = ChainTemplate(
            states=template.states,
            edge_keys=stale_edges,
            initial_state=template.initial_state,
        )
        poisoned += 1
    return poisoned


def poison_spec_cache(cache) -> int:
    """Replace every entry of a ``CompiledSpecCache`` with a compiled
    chain whose structure does not match the hash it is stored under.

    A correct cache must notice the mismatch on the next lookup (its
    per-lookup ``entry.spec_hash == key`` check), count a
    ``structure_rebuilds`` and recompile from the spec; a cache that
    blindly trusts its key would solve a two-state decoy chain instead of
    the real model.  Returns the number of entries poisoned.
    """
    decoy: CompiledChain = ModelSpec(
        name="verify-poison-decoy",
        states=("up", "down"),
        edges=(("up", "down", param("x")),),
        initial_state="up",
    ).compile()
    poisoned = 0
    for key in list(cache._chains):
        cache._chains[key] = decoy
        poisoned += 1
    return poisoned


# --------------------------------------------------------------------- #
# the drill
# --------------------------------------------------------------------- #


@contextlib.contextmanager
def _expected_rejections():
    """Mute the cache's rejection warnings while the drill deliberately
    plants garbage — the rejections are the point, not an incident."""
    logger = logging.getLogger("repro.engine.cache")
    previous = logger.level
    logger.setLevel(logging.CRITICAL)
    try:
        yield
    finally:
        logger.setLevel(previous)


def _mttdls(engine: SweepEngine, pairs, method: str = "analytic") -> List[float]:
    return [r.mttdl_hours for r in engine.evaluate_many(pairs, method=method)]


def fault_drill(
    configs: Sequence[Configuration],
    params: Optional[Parameters] = None,
    *,
    jobs: int = 4,
) -> Tuple[int, List[Violation]]:
    """Run the full fault battery; returns ``(scenarios, violations)``.

    The reference is a cold serial cache-less run; every scenario must
    reproduce it bitwise.
    """
    if params is None:
        params = Parameters.baseline()
    pairs = [(config, params) for config in configs]
    reference = _mttdls(SweepEngine(params, jobs=1), pairs)

    violations: List[Violation] = []
    checked = 0

    def compare(scenario: str, observed: List[float], extra: Dict) -> None:
        nonlocal checked
        checked += 1
        if observed == reference:
            return
        mismatches = {
            config.key: {"expected": want, "observed": got}
            for (config, _), want, got in zip(pairs, reference, observed)
            if want != got
        }
        violations.append(
            Violation(
                invariant="engine-fault-degradation",
                message=f"{scenario}: results differ from cold serial run",
                details={**extra, "mismatches": mismatches},
            )
        )

    # -- disk-cache corruption: warm the cache, damage it, re-read. ----- #
    with _expected_rejections():
        for mode in CACHE_CORRUPTION_MODES:
            tmp = tempfile.mkdtemp(prefix="repro-verify-cache-")
            try:
                cache = DiskCache(tmp, validator=point_payload_valid)
                engine = SweepEngine(params, jobs=1, cache=cache)
                engine.evaluate_many(pairs)  # warm
                corrupt_cache_dir(tmp, mode)
                compare(
                    f"cache corruption ({mode})",
                    _mttdls(engine, pairs),
                    {"mode": mode, "rejected_entries": cache.rejected},
                )
                # The damaged entries must have been overwritten with good
                # values: a third pass must be pure hits and still agree.
                hits_before = cache.hits
                compare(
                    f"cache overwrite after corruption ({mode})",
                    _mttdls(engine, pairs),
                    {"mode": mode, "hits": cache.hits - hits_before},
                )
            finally:
                shutil.rmtree(tmp, ignore_errors=True)

    # -- killed pool workers ------------------------------------------- #
    with faultpoints.injected(
        faultpoints.POOL_WORKER_START, kill_worker_action()
    ):
        observed = _mttdls(SweepEngine(params, jobs=jobs), pairs)
    compare("killed pool workers", observed, {"jobs": jobs})

    # -- poisoned compiled-spec cache ---------------------------------- #
    engine = SweepEngine(params, jobs=1)
    engine.evaluate_many(pairs)  # populate the spec cache
    poisoned = poison_spec_cache(engine._ctx.specs)
    compare(
        "poisoned compiled-spec cache",
        _mttdls(engine, pairs),
        {
            "entries_poisoned": poisoned,
            "rebuilds_detected": engine._ctx.specs.structure_rebuilds,
        },
    )
    if engine._ctx.specs.structure_rebuilds < poisoned:
        violations.append(
            Violation(
                invariant="engine-fault-degradation",
                message=(
                    "poisoned compiled-spec cache: mismatched entries were "
                    "not detected as structure rebuilds"
                ),
                details={
                    "entries_poisoned": poisoned,
                    "rebuilds_detected": engine._ctx.specs.structure_rebuilds,
                },
            )
        )

    return checked, violations


@invariant(
    "engine-fault-degradation",
    "Corrupted/truncated/schema-mismatched cache entries, killed pool "
    "workers and poisoned compiled-spec caches all degrade to correct "
    "recomputation: results stay bitwise identical to a cold serial run.",
    tags=("engine", "faults", "smoke"),
)
def check_engine_fault_degradation(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    return fault_drill(ctx.configs, ctx.base, jobs=max(2, ctx.engine.jobs))

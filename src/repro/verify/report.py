"""Machine-readable verification reports.

A :class:`VerificationReport` aggregates the registry's per-invariant
outcomes with enough run metadata (configurations, lattice size, seeds,
engine provenance) that a violation record is reproducible from the
report alone.  ``to_dict`` / ``to_json`` are the stable machine format
the CLI emits; ``format_text`` is the human rendering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..engine.result import EngineProvenance
from .registry import InvariantCheck, Violation

__all__ = ["VerificationReport", "REPORT_SCHEMA_VERSION"]

#: Bump when the report JSON layout changes.
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one full verification pass.

    Attributes:
        checks: per-invariant results, in registry order.
        configs: keys of the audited configurations.
        lattice_points: number of parameter points in the lattice.
        mc_replicas: Monte-Carlo replicas used (0 = simulation skipped).
        mc_seed: the master seed every stochastic check drew from.
        provenance: engine settings/counters for the run.
        base_params_key: :meth:`Parameters.cache_key` of the audited base
            point — the same stable hash the engine's disk cache and the
            serving layer key on, so a report can be joined against cached
            or served results without re-deriving anything.
    """

    checks: Tuple[InvariantCheck, ...]
    configs: Tuple[str, ...] = ()
    lattice_points: int = 0
    mc_replicas: int = 0
    mc_seed: int = 0
    provenance: Optional[EngineProvenance] = None
    base_params_key: Optional[str] = None

    # ------------------------------------------------------------------ #

    @property
    def violations(self) -> List[Violation]:
        return [v for check in self.checks for v in check.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_checked(self) -> int:
        return sum(check.checked for check in self.checks)

    @property
    def exit_code(self) -> int:
        """Process exit status: 0 iff every invariant held."""
        return 0 if self.ok else 1

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "ok": self.ok,
            "configurations": list(self.configs),
            "lattice_points": self.lattice_points,
            "mc_replicas": self.mc_replicas,
            "mc_seed": self.mc_seed,
            "total_checked": self.total_checked,
            "violation_count": len(self.violations),
            "base_params_key": self.base_params_key,
            "engine": self.provenance.describe() if self.provenance else None,
            "invariants": [check.to_dict() for check in self.checks],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def format_text(self) -> str:
        """Aligned human-readable rendering, one line per invariant."""
        lines = [
            f"verification: {len(self.configs)} configurations x "
            f"{self.lattice_points} lattice points"
            + (
                f", MC x{self.mc_replicas} (seed {self.mc_seed})"
                if self.mc_replicas
                else ", MC off"
            )
        ]
        width = max((len(c.name) for c in self.checks), default=0)
        for check in self.checks:
            if check.skipped:
                status = "SKIP"
            elif check.ok:
                status = "ok"
            else:
                status = f"FAIL({len(check.violations)})"
            lines.append(
                f"  {check.name:<{width}}  {status:>8}  "
                f"[{check.checked} checked, {check.seconds:.2f}s]"
            )
        for v in self.violations:
            where = f" config={v.config}" if v.config else ""
            at = f" at {dict(v.point)}" if v.point else ""
            lines.append(f"  VIOLATION {v.invariant}:{where} {v.message}{at}")
        verdict = (
            "all invariants held"
            if self.ok
            else f"{len(self.violations)} violation(s)"
        )
        lines.append(f"result: {verdict} ({self.total_checked} checks)")
        return "\n".join(lines)

"""Differential invariants for heterogeneous fleets.

:mod:`repro.fleet` generalizes the paper's uniform-brick chain along two
axes — per-cohort parameter overrides and phase-type lifetimes — and
every generalization must *collapse back* onto already-verified ground
when the new degrees of freedom are switched off:

* **homogeneous collapse** — a fleet whose cohorts are all identical is
  the paper's chain wearing a different state encoding: the merged
  single-cohort generator must be *bitwise* the uniform
  ``internal_raid_spec(t, parallel_repair=True)`` generator, and the
  multi-cohort encoding must lump onto it within float tolerance;
* **exponential collapse** — an explicit 1-stage
  :class:`~repro.fleet.phasetype.PhaseType` is just an exponential, so
  swapping one in must leave the binding environment, the spec hash and
  the MTTDL bitwise unchanged;
* **time rescaling** — the metamorphic law of
  :mod:`repro.verify.oracles` extends to fleets: scaling every physical
  rate by ``s`` scales MTTDL by exactly ``1/s``;
* **dominance** — replacing bricks with strictly worse bricks
  (:meth:`~repro.fleet.cohorts.FleetSpec.split_degraded`) must never
  raise MTTDL;
* **sparse/dense agreement** — both solver backends see the same
  scenario corpus the ``repro-scenarios`` flywheel generates and must
  agree within the corpus oracle tolerance.

All checks run on a small, fixed-seed slice of the scenario corpus, so
``repro-verify --smoke`` exercises the same generator the corpus CLI
ships.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from ..core.solvers import SolveOptions
from ..fleet.chain import FleetModel
from ..fleet.cohorts import FleetSpec
from ..fleet.phasetype import PhaseType, fit_weibull
from ..fleet.scenarios import ScenarioGenerator
from .registry import VerifyContext, Violation, invariant

__all__ = [
    "FLEET_REL_TOL",
    "FLEET_SCENARIO_COUNT",
    "FLEET_SCENARIO_SEED",
    "fleet_scenarios",
]

#: Relative tolerance for every non-bitwise fleet comparison — matches
#: the scenario corpus oracle tolerance.
FLEET_REL_TOL = 1e-9

#: The fixed-seed corpus slice the invariants audit.
FLEET_SCENARIO_SEED = 1106
FLEET_SCENARIO_COUNT = 10

#: Dense solves only below this many states (matches the corpus runner's
#: default dense cross-check limit).
_DENSE_LIMIT = 2048

#: Exact metamorphic time-rescale factor (a power of two, so parameter
#: divisions are exact in binary floating point).
_RESCALE = 8.0


def fleet_scenarios(ctx: VerifyContext) -> List[FleetSpec]:
    """The deterministic scenario slice audited by every fleet
    invariant: same generator, seed and families as the
    ``repro-scenarios`` corpus, grown from the context's base
    parameters."""
    generator = ScenarioGenerator(base=ctx.base, seed=FLEET_SCENARIO_SEED)
    return [s.fleet for s in generator.generate(FLEET_SCENARIO_COUNT)]


def _rel(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale else 0.0


# --------------------------------------------------------------------- #
# collapse laws
# --------------------------------------------------------------------- #


@invariant(
    "fleet-homogeneous-collapse",
    "A homogeneous exponential fleet is the paper's uniform chain: the "
    "merged single-cohort generator and MTTDL are bitwise the "
    "parallel-repair internal-RAID reference, and the multi-cohort "
    "state encoding lumps onto it within 1e-9.",
    tags=("fleet", "collapse", "smoke"),
)
def check_fleet_homogeneous_collapse(
    ctx: VerifyContext,
) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for fleet in fleet_scenarios(ctx):
        # Collapse the heterogeneous scenario: every cohort becomes a
        # copy of cohort 0, exponentialized so the paper chain applies.
        template = dataclasses.replace(fleet.cohorts[0], lifetime=None)
        homogeneous = fleet.with_cohorts(
            dataclasses.replace(template, name=c.name, nodes=c.nodes)
            for c in fleet.cohorts
        )
        checked += 1
        merged_model = FleetModel(homogeneous.merged())
        reference = merged_model.uniform_reference_chain()
        merged_chain = merged_model.chain()
        bitwise_generator = np.array_equal(
            merged_chain.generator_matrix(), reference.generator_matrix()
        )
        merged_mttdl = merged_chain.mean_time_to_absorption()
        reference_mttdl = reference.mean_time_to_absorption()
        lumped_mttdl = FleetModel(homogeneous).mttdl_hours()
        lumped_gap = _rel(lumped_mttdl, reference_mttdl)
        if (
            bitwise_generator
            and merged_mttdl == reference_mttdl
            and lumped_gap <= FLEET_REL_TOL
        ):
            continue
        violations.append(
            Violation(
                invariant="fleet-homogeneous-collapse",
                message="homogeneous fleet does not collapse onto the "
                "uniform paper chain",
                details={
                    "fleet": homogeneous.cache_key(),
                    "generator_bitwise_equal": bitwise_generator,
                    "merged_mttdl": merged_mttdl,
                    "reference_mttdl": reference_mttdl,
                    "lumped_mttdl": lumped_mttdl,
                    "lumped_rel_gap": lumped_gap,
                },
            )
        )
    return checked, violations


@invariant(
    "fleet-exponential-collapse",
    "An explicit 1-stage phase-type lifetime is an exponential: "
    "swapping one into any exponential cohort leaves the binding "
    "environment, the spec hash and the MTTDL bitwise unchanged.",
    tags=("fleet", "collapse", "smoke"),
)
def check_fleet_exponential_collapse(
    ctx: VerifyContext,
) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for fleet in fleet_scenarios(ctx):
        explicit = fleet.with_cohorts(
            dataclasses.replace(
                c,
                lifetime=PhaseType.exponential(
                    fleet.cohort_rates(c).node_failure_rate
                ),
            )
            if c.lifetime is None
            else c
            for c in fleet.cohorts
        )
        checked += 1
        implicit_model = FleetModel(fleet)
        explicit_model = FleetModel(explicit)
        same_env = implicit_model.env() == explicit_model.env()
        same_spec = (
            implicit_model.spec().spec_hash == explicit_model.spec().spec_hash
        )
        implicit_mttdl = implicit_model.mttdl_hours()
        explicit_mttdl = explicit_model.mttdl_hours()
        if same_env and same_spec and implicit_mttdl == explicit_mttdl:
            continue
        violations.append(
            Violation(
                invariant="fleet-exponential-collapse",
                message="1-stage phase-type cohort differs from its "
                "exponential twin",
                details={
                    "fleet": fleet.cache_key(),
                    "env_equal": same_env,
                    "spec_hash_equal": same_spec,
                    "implicit_mttdl": implicit_mttdl,
                    "explicit_mttdl": explicit_mttdl,
                },
            )
        )
    return checked, violations


# --------------------------------------------------------------------- #
# metamorphic and ordering laws
# --------------------------------------------------------------------- #


@invariant(
    "fleet-time-rescaling",
    "Scaling every physical rate of a heterogeneous fleet by s scales "
    "its MTTDL by exactly 1/s — the metamorphic law survives cohort "
    "overrides, repair delays and phase-type stage expansion.",
    tags=("fleet", "metamorphic", "smoke"),
)
def check_fleet_time_rescaling(
    ctx: VerifyContext,
) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for fleet in fleet_scenarios(ctx):
        checked += 1
        original = FleetModel(fleet).mttdl_hours()
        rescaled = FleetModel(fleet.scaled(_RESCALE)).mttdl_hours()
        gap = _rel(rescaled * _RESCALE, original)
        if gap <= FLEET_REL_TOL:
            continue
        violations.append(
            Violation(
                invariant="fleet-time-rescaling",
                message="fleet MTTDL does not rescale as 1/s",
                details={
                    "fleet": fleet.cache_key(),
                    "scale": _RESCALE,
                    "original_mttdl": original,
                    "rescaled_times_s": rescaled * _RESCALE,
                    "rel_gap": gap,
                },
            )
        )
    return checked, violations


@invariant(
    "fleet-dominance",
    "Replacing bricks with strictly worse bricks (shorter lifetimes, "
    "same repair) never raises fleet MTTDL — the coupling argument the "
    "heterogeneity analysis rests on.",
    tags=("fleet", "ordering", "smoke"),
)
def check_fleet_dominance(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for fleet in fleet_scenarios(ctx):
        donor = next(
            (i for i, c in enumerate(fleet.cohorts) if c.nodes >= 2), None
        )
        if donor is None:
            continue
        checked += 1
        degraded = fleet.split_degraded(donor, 1, 0.5)
        original = FleetModel(fleet).mttdl_hours()
        worse = FleetModel(degraded).mttdl_hours()
        if worse <= original * (1.0 + FLEET_REL_TOL):
            continue
        violations.append(
            Violation(
                invariant="fleet-dominance",
                message="degrading a brick raised fleet MTTDL",
                details={
                    "fleet": fleet.cache_key(),
                    "donor_cohort": fleet.cohorts[donor].name,
                    "original_mttdl": original,
                    "degraded_mttdl": worse,
                },
            )
        )
    return checked, violations


@invariant(
    "fleet-sparse-dense-agreement",
    "Both solver backends agree on every densely solvable fleet "
    "scenario within the corpus oracle tolerance (the generators are "
    "bitwise identical by construction; this checks the solves).",
    tags=("fleet", "solvers", "smoke"),
)
def check_fleet_sparse_dense_agreement(
    ctx: VerifyContext,
) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    for fleet in fleet_scenarios(ctx):
        model = FleetModel(fleet)
        if model.num_states > _DENSE_LIMIT:
            continue
        checked += 1
        dense = model.mttdl_hours(SolveOptions(backend="dense_gth"))
        sparse = model.mttdl_hours(SolveOptions(backend="sparse_iterative"))
        gap = _rel(dense, sparse)
        if gap <= FLEET_REL_TOL:
            continue
        violations.append(
            Violation(
                invariant="fleet-sparse-dense-agreement",
                message="solver backends disagree on a fleet scenario",
                details={
                    "fleet": fleet.cache_key(),
                    "num_states": model.num_states,
                    "dense_mttdl": dense,
                    "sparse_mttdl": sparse,
                    "rel_gap": gap,
                },
            )
        )
    return checked, violations


@invariant(
    "fleet-phase-type-certification",
    "Weibull lifetime fits inside the 3-stage moment envelope (cv^2 >= "
    "1/3) certify their first-two-moment match to 1e-9; outside it the "
    "fit reports the clamp honestly instead of certifying, and one "
    "extra stage restores an exact fit.",
    tags=("fleet", "phasetype", "smoke"),
)
def check_fleet_phase_type_certification(
    ctx: VerifyContext,
) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    mean = ctx.base.node_mttf_hours

    def flag(shape: float, fit, problem: str) -> None:
        violations.append(
            Violation(
                invariant="fleet-phase-type-certification",
                message=problem,
                details={
                    "shape": shape,
                    "method": fit.method,
                    "rel_error_mean": fit.rel_error_mean,
                    "rel_error_cv2": fit.rel_error_cv2,
                },
            )
        )

    for shape in (0.45, 0.6, 0.75, 0.9, 1.0, 1.3, 1.5, 1.7, 1.75):
        checked += 1
        fit = fit_weibull(shape, mean=mean)
        if not (
            fit.certified(FLEET_REL_TOL)
            and _rel(fit.dist.mean(), mean) <= FLEET_REL_TOL
        ):
            flag(shape, fit, "Weibull phase-type fit failed certification")
    for shape in (1.85, 1.95):
        # cv^2 < 1/3: three stages cannot match both moments.  The
        # default fit must clamp *loudly*, and max_stages=4 must fit.
        checked += 1
        clamped = fit_weibull(shape, mean=mean)
        if clamped.certified(FLEET_REL_TOL) or not clamped.method.endswith(
            "-clamped"
        ):
            flag(shape, clamped, "out-of-envelope fit certified silently")
        widened = fit_weibull(shape, mean=mean, max_stages=4)
        if not widened.certified(FLEET_REL_TOL):
            flag(shape, widened, "4-stage fit failed inside its envelope")
    return checked, violations

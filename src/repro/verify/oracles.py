"""Metamorphic and cross-method oracles.

Three independent estimators answer the same question — the analytic
chain solve, the paper's closed forms, and Gillespie-style Monte-Carlo
simulation — so any point can be triangulated:

* :func:`cross_method_check` evaluates one ``Configuration x Parameters``
  point through all three ``evaluate()`` methods via the engine and
  asserts pairwise agreement within declared tolerances (closed forms
  against their k-dependent envelope, simulation against a seeded
  confidence band).
* the **time-rescaling metamorphic relation**: scaling every physical
  rate — failures *and* repair bandwidth — by ``s`` must scale MTTDL by
  exactly ``1/s``, because the generator matrix itself scales by ``s``.
  This holds to machine precision and needs no oracle values at all.

Both are also registered as invariants, so ``repro-verify`` and the
pytest ``verify`` marker run them alongside the ordering checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..engine.sweep import SweepEngine
from ..models.configurations import Configuration
from ..models.internal_raid import InternalRaid, InternalRaidNodeModel
from ..models.parameters import Parameters
from ..sim.monte_carlo import (
    MonteCarloResult,
    accelerated_parameters,
    estimate_mttdl,
)
from .invariants import closed_form_bound
from .registry import VerifyContext, Violation, invariant

__all__ = [
    "CrossMethodReport",
    "MC_BIAS_ENVELOPES",
    "MC_SYSTEM_OVERRIDES",
    "cross_method_check",
    "mc_bias_envelope",
    "mc_reference_mttdl",
    "rescaled_parameters",
]

#: Tolerance for the exact 1/s metamorphic rescaling (pure float noise).
_RESCALE_REL_TOL = 1e-9

#: The simulation oracle's operating point: a scaled-down node set, so
#: that losses are observable within an affordable number of events per
#: replica even for the deepest configurations.
MC_SYSTEM_OVERRIDES = {"node_set_size": 16, "redundancy_set_size": 8}

#: Declared relative-bias envelopes for simulation vs chain solve, keyed
#: by (internal RAID present, NFT).  Acceleration breaks the ``mu >>
#: lambda`` assumption behind the chains' mean-field critical-fraction
#: treatment, so for deep internal-RAID configurations the simulator —
#: which enacts the exact failure combinatorics — observes losses
#: genuinely sooner than the chain predicts.  The gap is systematic
#: (seed-stable), grows with ``lambda/mu`` and t, and is a property of
#: the paper's approximations, not an implementation defect; the oracle
#: therefore allows it explicitly: agreement means
#: ``|mc - chain| <= sigmas * stderr + bias * chain``.
MC_BIAS_ENVELOPES = {
    False: {1: 0.15, 2: 0.15, 3: 0.15},
    True: {1: 0.20, 2: 0.35, 3: 0.50},
}


def mc_bias_envelope(config: Configuration) -> float:
    """The declared simulation-vs-chain relative-bias allowance for
    ``config`` at the oracle's accelerated operating point."""
    has_raid = config.internal is not InternalRaid.NONE
    return MC_BIAS_ENVELOPES[has_raid].get(config.node_fault_tolerance, 0.50)


@dataclass(frozen=True)
class CrossMethodReport:
    """Triangulation of one point through every evaluation method.

    Attributes:
        config: the configuration evaluated.
        analytic_hours: numeric chain-solve MTTDL.
        closed_form_hours: the paper's approximation.
        closed_form_rel_error: ``|approx - exact| / exact``.
        closed_form_bound: the declared envelope for this configuration.
        monte_carlo: the simulation summary, or None when simulation was
            skipped; estimated on *accelerated* parameters.
        mc_analytic_hours: the chain solve at the same accelerated
            parameters (the value the simulation must agree with).
        mc_sigmas: the agreement band used, in standard errors.
        violations: everything that disagreed; empty means the point is
            fully triangulated.
    """

    config: Configuration
    analytic_hours: float
    closed_form_hours: float
    closed_form_rel_error: float
    closed_form_bound: float
    monte_carlo: Optional[MonteCarloResult]
    mc_analytic_hours: Optional[float]
    mc_sigmas: float
    violations: Tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def rescaled_parameters(params: Parameters, scale: float) -> Parameters:
    """``params`` with every physical rate scaled by ``scale``.

    Failure rates rise (MTTFs divide by ``scale``) and every bandwidth /
    IOPS figure rises with them, so repair rates scale identically and
    the whole generator is ``scale`` times the original — the metamorphic
    transformation behind the exact ``MTTDL -> MTTDL / scale`` law.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return params.replace(
        node_mttf_hours=params.node_mttf_hours / scale,
        drive_mttf_hours=params.drive_mttf_hours / scale,
        drive_max_iops=params.drive_max_iops * scale,
        drive_sustained_bps=params.drive_sustained_bps * scale,
        link_speed_bps=params.link_speed_bps * scale,
    )


def mc_reference_mttdl(config: Configuration, params: Parameters) -> float:
    """The chain solve the simulator must agree with at ``params``.

    Heavily accelerated parameters break the ``mu >> lambda`` assumption
    behind the paper's approximate ``lambda_D`` / ``lambda_S`` extraction,
    so internal-RAID configurations are solved with ``rates_method="exact"``
    (the physical simulation makes no such approximation); no-RAID chains
    are simulation-equivalent by construction.
    """
    if config.internal is InternalRaid.NONE:
        return config.mttdl_hours(params)
    return InternalRaidNodeModel(
        params,
        config.internal,
        config.node_fault_tolerance,
        rates_method="exact",
    ).mttdl_exact()


def cross_method_check(
    config: Configuration,
    params: Optional[Parameters] = None,
    *,
    engine: Optional[SweepEngine] = None,
    closed_form_rel_tol: Optional[float] = None,
    replicas: int = 200,
    seed: int = 0,
    sigmas: float = 5.0,
    acceleration: float = 200.0,
    mc_bias_rel: Optional[float] = None,
    jobs: int = 1,
) -> CrossMethodReport:
    """Triangulate one point through analytic, closed-form and simulation.

    Args:
        config: the configuration to audit.
        params: operating point (the paper's baseline when omitted).
        engine: engine to evaluate the deterministic methods through.
        closed_form_rel_tol: override for the declared closed-form
            envelope (defaults to :func:`closed_form_bound`).
        replicas: Monte-Carlo replicas; 0 skips simulation entirely.
        seed: Monte-Carlo master seed (runs are reproducible).
        sigmas: agreement band for the simulation, in standard errors of
            the seeded estimate.
        acceleration: failure-rate scale applied before simulating (at
            the raw baseline a loss is unobservable in bounded time); the
            analytic reference is computed at the same accelerated point.
        mc_bias_rel: declared relative-bias allowance on top of the sigma
            band (defaults to :func:`mc_bias_envelope`; see
            :data:`MC_BIAS_ENVELOPES` for why a band exists at all).
        jobs: replica fan-out width for the simulation.

    Returns:
        A :class:`CrossMethodReport`; ``report.ok`` is the verdict.
    """
    if params is None:
        params = Parameters.baseline()
    if engine is None:
        engine = SweepEngine(params, jobs=jobs)
    tol = (
        closed_form_rel_tol
        if closed_form_rel_tol is not None
        else closed_form_bound(config)
    )
    analytic = engine.evaluate_many([(config, params)], method="analytic")[0]
    closed = engine.evaluate_many([(config, params)], method="closed_form")[0]
    rel = abs(closed.mttdl_hours - analytic.mttdl_hours) / analytic.mttdl_hours
    violations: List[Violation] = []
    if rel > tol:
        violations.append(
            Violation(
                invariant="cross-method-agreement",
                message=(
                    f"closed form disagrees with chain solve by {rel:.3g} "
                    f"(tolerance {tol:g})"
                ),
                config=config.key,
                details={
                    "analytic": analytic.mttdl_hours,
                    "closed_form": closed.mttdl_hours,
                    "rel_tol": tol,
                },
            )
        )

    mc: Optional[MonteCarloResult] = None
    mc_analytic: Optional[float] = None
    if replicas > 0:
        bias = mc_bias_rel if mc_bias_rel is not None else mc_bias_envelope(config)
        accelerated = accelerated_parameters(params, acceleration)
        mc_analytic = mc_reference_mttdl(config, accelerated)
        mc = estimate_mttdl(
            config, accelerated, replicas=replicas, seed=seed, jobs=jobs
        )
        band = sigmas * mc.std_error_hours + bias * mc_analytic
        if abs(mc.mean_hours - mc_analytic) > band:
            violations.append(
                Violation(
                    invariant="cross-method-agreement",
                    message=(
                        f"simulation estimate is more than {sigmas:g} "
                        f"standard errors (+{bias:.0%} declared bias) "
                        "from the chain solve"
                    ),
                    config=config.key,
                    details={
                        "mc_mean": mc.mean_hours,
                        "mc_std_error": mc.std_error_hours,
                        "mc_ci95": list(mc.ci95_hours),
                        "analytic": mc_analytic,
                        "bias_envelope": bias,
                        "replicas": replicas,
                        "seed": seed,
                        "acceleration": acceleration,
                    },
                )
            )
    return CrossMethodReport(
        config=config,
        analytic_hours=analytic.mttdl_hours,
        closed_form_hours=closed.mttdl_hours,
        closed_form_rel_error=rel,
        closed_form_bound=tol,
        monte_carlo=mc,
        mc_analytic_hours=mc_analytic,
        mc_sigmas=sigmas,
        violations=tuple(violations),
    )


# --------------------------------------------------------------------- #
# registered oracle invariants
# --------------------------------------------------------------------- #


@invariant(
    "time-rescaling-metamorphic",
    "Scaling every failure and repair rate by s rescales MTTDL by "
    "exactly 1/s (the generator scales linearly) — checked to float "
    "precision for every configuration.",
    tags=("oracle", "metamorphic", "smoke"),
)
def check_time_rescaling(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    scale = 8.0
    base_pairs = [(config, ctx.base) for config in ctx.configs]
    scaled_pairs = [
        (config, rescaled_parameters(ctx.base, scale)) for config in ctx.configs
    ]
    base_vals = ctx.engine.evaluate_many(base_pairs, method="analytic")
    scaled_vals = ctx.engine.evaluate_many(scaled_pairs, method="analytic")
    violations: List[Violation] = []
    checked = 0
    for config, base_r, scaled_r in zip(ctx.configs, base_vals, scaled_vals):
        checked += 1
        expected = base_r.mttdl_hours / scale
        observed = scaled_r.mttdl_hours
        rel = abs(observed - expected) / expected
        if rel <= _RESCALE_REL_TOL:
            continue
        violations.append(
            Violation(
                invariant="time-rescaling-metamorphic",
                message=f"rescaled MTTDL off by {rel:.3g} (expected 1/{scale:g})",
                config=config.key,
                details={
                    "base_mttdl": base_r.mttdl_hours,
                    "scaled_mttdl": observed,
                    "expected": expected,
                    "scale": scale,
                },
            )
        )
    return checked, violations


@invariant(
    "cross-method-agreement",
    "Analytic, closed-form and (when enabled) seeded Monte-Carlo "
    "estimates of the same point agree within declared tolerances.",
    tags=("oracle", "cross-method", "smoke"),
)
def check_cross_method_agreement(ctx: VerifyContext) -> Tuple[int, List[Violation]]:
    violations: List[Violation] = []
    checked = 0
    # Deterministic leg: the full lattice, straight off the shared tables.
    exact = ctx.mttdl_table("analytic")
    approx = ctx.mttdl_table("closed_form")
    for i, _ in enumerate(ctx.points):
        for config in ctx.configs:
            checked += 1
            ex = exact[(config.key, i)]
            rel = abs(approx[(config.key, i)] - ex) / ex
            if rel > closed_form_bound(config):
                violations.append(
                    Violation(
                        invariant="cross-method-agreement",
                        message=f"closed form off by {rel:.3g}",
                        config=config.key,
                        point=ctx.point_label(i),
                        details={
                            "analytic": ex,
                            "closed_form": approx[(config.key, i)],
                            "rel_tol": closed_form_bound(config),
                        },
                    )
                )
    # Stochastic leg: seeded simulation at the accelerated, scaled-down
    # operating point (losses must be observable to estimate anything).
    if ctx.mc_replicas > 0:
        sim_base = ctx.base.replace(**MC_SYSTEM_OVERRIDES)
        for config in ctx.configs:
            checked += 1
            report = cross_method_check(
                config,
                sim_base,
                engine=ctx.engine,
                replicas=ctx.mc_replicas,
                seed=ctx.mc_seed,
                sigmas=ctx.mc_sigmas,
                acceleration=ctx.mc_acceleration,
                jobs=ctx.engine.jobs,
            )
            violations.extend(
                v for v in report.violations if "simulation" in v.message
            )
    return checked, violations

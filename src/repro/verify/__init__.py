"""repro.verify — the cross-model verification subsystem.

The paper's headline claims are *orderings* — NFT 2 beats NFT 1 by
orders of magnitude, RAID 6 dominates RAID 5 dominates no-RAID, the
critical-set fractions nest — and this package turns them into enforced,
machine-checkable invariants:

* :mod:`~repro.verify.registry` — the invariant registry and the
  :class:`VerifyContext` every check runs against;
* :mod:`~repro.verify.invariants` — the paper-derived properties
  (monotonicity, dominance, ``k3 <= k2 <= 1``, generator conservation,
  closed-form error envelopes, spec-vs-legacy bitwise equivalence);
* :mod:`~repro.verify.oracles` — metamorphic and cross-method oracles
  triangulating analytic, closed-form and seeded Monte-Carlo estimates;
* :mod:`~repro.verify.faults` — engine fault injection (corrupt cache
  entries, killed pool workers, poisoned compiled-spec caches) proving
  failures degrade to recomputation, never to wrong numbers;
* :mod:`~repro.verify.fleet` — collapse, metamorphic and dominance laws
  for heterogeneous fleets (the ``fleet-*`` invariants), audited on a
  fixed-seed slice of the ``repro-scenarios`` corpus;
* :mod:`~repro.verify.lattice` — the 27-point parameter lattice the
  battery sweeps;
* :mod:`~repro.verify.report` / :mod:`~repro.verify.cli` — the
  machine-readable violations report and the ``repro-verify`` command.

Quickstart::

    from repro.verify import REGISTRY, make_context

    report = REGISTRY.run(make_context())
    assert report.ok, report.format_text()

Importing this package registers every built-in invariant.
"""

from .registry import (
    Invariant,
    InvariantCheck,
    InvariantRegistry,
    REGISTRY,
    VerifyContext,
    Violation,
    invariant,
)
from .lattice import DEFAULT_AXES, build_lattice, default_lattice, make_context
from .report import VerificationReport

# Importing these modules registers the built-in invariants.
from . import invariants as _invariants  # noqa: F401
from . import oracles as _oracles  # noqa: F401
from . import faults as _faults  # noqa: F401
from . import fleet as _fleet  # noqa: F401

from .invariants import CLOSED_FORM_REL_ERROR_BOUNDS, closed_form_bound
from .oracles import (
    CrossMethodReport,
    cross_method_check,
    mc_reference_mttdl,
    rescaled_parameters,
)
from .faults import (
    corrupt_cache_dir,
    fault_drill,
    kill_worker_action,
    poison_chain_memo,
    poison_spec_cache,
)

__all__ = [
    "CLOSED_FORM_REL_ERROR_BOUNDS",
    "CrossMethodReport",
    "DEFAULT_AXES",
    "Invariant",
    "InvariantCheck",
    "InvariantRegistry",
    "REGISTRY",
    "VerificationReport",
    "VerifyContext",
    "Violation",
    "build_lattice",
    "closed_form_bound",
    "corrupt_cache_dir",
    "cross_method_check",
    "default_lattice",
    "fault_drill",
    "invariant",
    "kill_worker_action",
    "make_context",
    "mc_reference_mttdl",
    "poison_chain_memo",
    "poison_spec_cache",
    "rescaled_parameters",
]

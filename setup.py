"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so editable
installs work on environments whose setuptools predates PEP 660 editable
wheels (offline CI images without the ``wheel`` package).
"""

from setuptools import setup

setup()
